#!/usr/bin/env python
"""Watching MB-m probes route circuits around broken links.

Section 2 of the paper: the misrouting-backtracking probe protocol "is
very resilient to static faults in the network".  This example breaks a
batch of links on an 8x8 mesh, then asks CLRP for circuits across the
damaged region and prints the paths the probes actually found -- detours,
misroutes and all -- next to what a deterministic dimension-order path
would have needed.

Run:  python examples/fault_tolerant_setup.py
"""

from repro import (
    FaultSet,
    MessageFactory,
    Network,
    NetworkConfig,
    Simulator,
    WaveConfig,
    build_topology,
    derive_fault_rng,
    format_table,
)
from repro.wormhole.routing import DimensionOrderRouting, wormhole_path_available

FAULT_FRACTION = 0.15
PAIRS = [(0, 63), (7, 56), (0, 7), (56, 63), (24, 39)]


def describe_path(topo, circuit) -> str:
    nodes = [circuit.src]
    for node, port in circuit.path:
        nodes.append(topo.neighbor(node, port))
    return " -> ".join(str(n) for n in nodes)


def main() -> None:
    config = NetworkConfig(
        dims=(8, 8),
        protocol="clrp",
        wave=WaveConfig(num_switches=2, misroute_budget=4),
    )
    topo = build_topology(config.topology, config.dims)
    faults = FaultSet(topo)
    n_failed = faults.fail_random_links(FAULT_FRACTION, derive_fault_rng(2024))
    print(f"failed {n_failed} physical links ({FAULT_FRACTION:.0%}) on an 8x8 mesh\n")

    net = Network(config, faults=faults)
    factory = MessageFactory()
    dor = DimensionOrderRouting(topo, 2)

    rows = []
    for src, dst in PAIRS:
        net.inject(factory.make(src, dst, 64, net.cycle))
        sim = Simulator(net, [])
        sim.run(20_000)
        rec = net.stats.messages[
            max(net.stats.messages)
        ]
        entry = net.interfaces[src].engine.cache.lookup(dst)
        minimal = topo.distance(src, dst)
        dor_alive = wormhole_path_available(dor, src, dst, faults)
        if entry is not None and entry.circuit is not None:
            circuit = entry.circuit
            rows.append(
                (f"{src}->{dst}", minimal, circuit.length,
                 "yes" if dor_alive else "NO", rec.mode.value)
            )
            print(f"circuit {src}->{dst}: {describe_path(topo, circuit)}")
        else:
            rows.append(
                (f"{src}->{dst}", minimal, "-",
                 "yes" if dor_alive else "NO", rec.mode.value)
            )
            print(f"circuit {src}->{dst}: no circuit (fell back)")
    print()
    print(
        format_table(
            ["pair", "minimal hops", "circuit hops", "DOR path intact",
             "message mode"],
            rows,
        )
    )
    print(
        "\nprobes detour around faults (circuit hops > minimal hops where "
        "needed);\na deterministic dimension-order path marked 'NO' would "
        "simply be unroutable."
    )


if __name__ == "__main__":
    main()
