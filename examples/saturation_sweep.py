#!/usr/bin/env python
"""Throughput/latency load sweep: where wormhole saturates, wave keeps going.

Reproduces the classic interconnect "hockey stick" curves for both
switching disciplines and prints them as aligned columns plus a crude
ASCII chart.  The wormhole curve bends at its saturation point; the
wave-switched network keeps accepting load well beyond it (the paper's
throughput claim, E2 in the benchmark harness, here at exploration
scale).

Run:  python examples/saturation_sweep.py
"""

from repro import (
    MessageFactory,
    Network,
    NetworkConfig,
    SimRandom,
    Simulator,
    UniformPattern,
    WaveConfig,
    format_table,
    uniform_workload,
)

LOADS = [0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8]
LENGTH = 64
DURATION = 3000
WARMUP = 800
NODES = 64


def measure(protocol: str, load: float) -> tuple[float, float]:
    config = NetworkConfig(
        dims=(8, 8),
        protocol=protocol,
        wave=None if protocol == "wormhole" else WaveConfig(),
    )
    net = Network(config)
    workload = uniform_workload(
        MessageFactory(),
        UniformPattern(NODES),
        num_nodes=NODES,
        offered_load=load,
        length=LENGTH,
        duration=DURATION,
        rng=SimRandom(7),
    )
    Simulator(net, workload).run(DURATION)
    throughput = net.stats.throughput_flits_per_cycle(WARMUP, DURATION) / NODES
    return throughput, net.stats.mean_network_latency()


def ascii_chart(series: dict[str, list[float]], xs: list[float], width=50) -> str:
    top = max(max(ys) for ys in series.values())
    lines = []
    markers = {"wormhole": "w", "clrp": "C"}
    for name, ys in series.items():
        m = markers[name]
        for x, y in zip(xs, ys):
            bar = "#" * max(1, int(y / top * width))
            lines.append(f"  {m} {x:4.2f} |{bar}")
        lines.append("")
    return "\n".join(lines)


def main() -> None:
    rows = []
    series = {"wormhole": [], "clrp": []}
    for load in LOADS:
        wh_tp, wh_lat = measure("wormhole", load)
        wv_tp, wv_lat = measure("clrp", load)
        series["wormhole"].append(wh_tp)
        series["clrp"].append(wv_tp)
        rows.append((load, wh_tp, wh_lat, wv_tp, wv_lat))
        print(f"load {load:4.2f}: wormhole {wh_tp:.3f} fl/n/cy, "
              f"wave {wv_tp:.3f} fl/n/cy")
    print()
    print(
        format_table(
            ["offered", "wh throughput", "wh latency",
             "wave throughput", "wave latency"],
            rows,
        )
    )
    print("\naccepted throughput (w = wormhole, C = CLRP wave):\n")
    print(ascii_chart(series, LOADS))
    sat_wh = max(series["wormhole"])
    sat_wv = max(series["clrp"])
    print(f"saturation throughput: wormhole {sat_wh:.3f}, wave {sat_wv:.3f} "
          f"({sat_wv / sat_wh:.1f}x)")

    # Where does the wormhole network melt? Re-run one saturated point and
    # draw the link heat map: dimension-order routing concentrates load on
    # the mesh centre -- the congestion circuits route around.
    from repro.analysis.viz import link_loadmap

    config = NetworkConfig(dims=(8, 8), protocol="wormhole", wave=None)
    net = Network(config)
    workload = uniform_workload(
        MessageFactory(),
        UniformPattern(NODES),
        num_nodes=NODES,
        offered_load=0.6,
        length=LENGTH,
        duration=DURATION,
        rng=SimRandom(7),
    )
    Simulator(net, workload).run(DURATION)
    print()
    print(link_loadmap(net, title="wormhole link load at offered 0.6"))


if __name__ == "__main__":
    main()
