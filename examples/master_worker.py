#!/usr/bin/env python
"""A master/worker task farm over wave switching.

One master scatters task descriptors (short messages) and workers stream
results back (long messages).  The traffic is asymmetric in exactly the
way the paper's protocols care about:

* master -> worker: short, frequent -- circuits pay off only because the
  same pairs repeat (temporal locality);
* worker -> master: long results converging on one hotspot -- the
  master-side link is the scarce resource, and wormhole switching
  serializes result worms head-of-line while circuits stream them at the
  wave clock.

The hotspot also demonstrates the *channel* limit on circuits: the master
has only a handful of links, so at most a few worker->master circuits can
exist at once -- the rest are established with the Force bit, stealing
channels from each other (watch the "victim releases" column).  Even with
that churn -- nearly every circuit is cold -- streaming results at the
wave clock demolishes the wormhole baseline, whose result worms serialize
head-of-line into the master.

Run:  python examples/master_worker.py
"""

from repro import (
    MessageFactory,
    Network,
    NetworkConfig,
    Simulator,
    WaveConfig,
    format_table,
)
from repro.traffic.workloads import master_worker_workload

MASTER = 0
TASKS_PER_WORKER = 6
TASK_FLITS = 8
RESULT_FLITS = 192
MASTER_CACHE = 8


def run(protocol: str):
    config = NetworkConfig(
        dims=(8, 8),
        protocol=protocol,
        wave=None if protocol == "wormhole" else WaveConfig(
            num_switches=2, circuit_cache_size=MASTER_CACHE
        ),
    )
    net = Network(config)
    messages = master_worker_workload(
        MessageFactory(),
        config.num_nodes,
        master=MASTER,
        tasks_per_worker=TASKS_PER_WORKER,
        task_length=TASK_FLITS,
        result_length=RESULT_FLITS,
        task_gap=40,
        turnaround=120,
    )
    result = Simulator(net, messages).run(2_000_000)
    assert result.delivered == result.injected
    stats = net.stats
    tasks = [m for m in stats.delivered_records() if m.src == MASTER]
    results = [m for m in stats.delivered_records() if m.dst == MASTER]
    makespan = max(m.delivered for m in stats.delivered_records())
    return {
        "protocol": protocol,
        "task latency": sum(m.latency for m in tasks) / len(tasks),
        "result latency": sum(m.latency for m in results) / len(results),
        "makespan": makespan,
        "forced circuits": stats.count("mode.circuit_forced"),
        "victim releases": stats.count("clrp.victim_releases_requested"),
    }


def main() -> None:
    n_workers = 63
    print(
        f"task farm: master node {MASTER}, {n_workers} workers, "
        f"{TASKS_PER_WORKER} tasks each, {RESULT_FLITS}-flit results, "
        f"master cache {MASTER_CACHE} circuits\n"
    )
    rows = []
    for protocol in ("wormhole", "clrp"):
        print(f"running {protocol} ...")
        rows.append(run(protocol))
    print()
    print(format_table(list(rows[0].keys()), [list(r.values()) for r in rows]))
    wh, clrp = rows
    print(
        f"\nresult-stream speedup: "
        f"{wh['result latency'] / clrp['result latency']:.2f}x; "
        f"makespan speedup: {wh['makespan'] / clrp['makespan']:.2f}x"
    )
    print(
        "the master's few links cap how many circuits can converge on it, "
        "so most\ncircuits are established by Force-bit steals -- and wave "
        "switching still wins\nbig, because even a cold circuit streams a "
        "192-flit result in ~50 cycles while\nwormhole result worms "
        "serialize head-of-line into the hotspot."
    )


if __name__ == "__main__":
    main()
