#!/usr/bin/env python
"""An iterative stencil solver's halo exchange, three ways.

The paper's motivating scenario: a parallel PDE solver exchanges halo
regions with the same neighbours every iteration -- perfect spatial *and*
temporal communication locality.  This example runs that exchange on an
8x8 mesh:

1. wormhole only (the baseline the paper improves on),
2. CLRP (circuits established automatically on first use, then reused),
3. CARP (the "compiler" sees the whole exchange schedule and opens
   circuits before the first iteration needs them).

Run:  python examples/stencil_carp.py
"""

from repro import (
    MessageFactory,
    Network,
    NetworkConfig,
    Simulator,
    WaveConfig,
    compile_directives,
    format_table,
    stencil_workload,
)

PHASES = 30  # solver iterations
PHASE_GAP = 2500  # cycles between iterations (compute time)
HALO_FLITS = 96  # halo region size per neighbour


def run(protocol: str):
    config = NetworkConfig(
        dims=(8, 8),
        protocol=protocol,
        wave=None if protocol == "wormhole" else WaveConfig(num_switches=4),
    )
    net = Network(config)
    messages = stencil_workload(
        MessageFactory(),
        net.topology,
        phases=PHASES,
        phase_gap=PHASE_GAP,
        length=HALO_FLITS,
    )
    if protocol == "carp":
        # max_gap must cover the solver's iteration period, or the
        # analyser sees each iteration as a separate one-message episode
        # and (correctly) refuses to open circuits for any of them.
        items, report = compile_directives(
            messages,
            min_messages=4,
            min_flits=128,
            max_gap=2 * PHASE_GAP,
            open_lead=100,
            close_lag=50,
        )
        print(
            f"  compiler: {report.episodes_circuit} circuits for "
            f"{report.messages_hinted}/{report.messages_total} messages "
            f"({report.hint_fraction:.0%} covered)"
        )
    else:
        items = messages
    result = Simulator(net, items).run(1_000_000)
    assert result.delivered == result.injected, "stencil lost messages"
    stats = net.stats
    # Phase completion time: the exchange is done when the slowest
    # message of the phase lands -- that is what gates the next iteration.
    phase_end = {}
    for rec in stats.delivered_records():
        phase = rec.created // PHASE_GAP
        phase_end[phase] = max(phase_end.get(phase, 0), rec.delivered)
    exchange_times = [
        phase_end[p] - p * PHASE_GAP for p in sorted(phase_end)
    ]
    steady = exchange_times[2:]  # skip cold-start phases
    return {
        "protocol": protocol,
        "mean latency": stats.mean_latency(),
        "exchange time (steady)": sum(steady) / len(steady),
        "worst exchange": max(exchange_times),
        "probes": stats.count("probe.launched"),
    }


def main() -> None:
    print(f"stencil: {PHASES} iterations, {HALO_FLITS}-flit halos, 8x8 mesh\n")
    rows = []
    for protocol in ("wormhole", "clrp", "carp"):
        print(f"running {protocol} ...")
        rows.append(run(protocol))
    print()
    print(
        format_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
        )
    )
    wh = rows[0]["exchange time (steady)"]
    carp = rows[2]["exchange time (steady)"]
    print(
        f"\nsteady-state halo exchange speed-up over wormhole: "
        f"{wh / rows[1]['exchange time (steady)']:.2f}x (CLRP), "
        f"{wh / carp:.2f}x (CARP)"
    )


if __name__ == "__main__":
    main()
