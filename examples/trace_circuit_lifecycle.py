#!/usr/bin/env python
"""Watch a single circuit live and die, event by event.

Attaches the protocol event log to a tiny network and engineers the most
dramatic CLRP scenario: a circuit is established, used, then *stolen* by a
Force-bit probe from another node (phase 2 of section 3.1).  Every probe
hop, acknowledgment, release request, teardown and transfer shows up in
the trace -- the paper's Figures 3-5 registers in motion.

Run:  python examples/trace_circuit_lifecycle.py
"""

from repro import (
    MessageFactory,
    Network,
    NetworkConfig,
    Simulator,
    WaveConfig,
)
from repro.sim.events import EventKind, EventLog


def drain(net, limit=20_000):
    sim = Simulator(net, [])
    sim.run(limit)


def main() -> None:
    # A 1x4 line with a single wave switch and no misrouting: the most
    # transparent possible machine -- contention is unavoidable and
    # visible.
    config = NetworkConfig(
        dims=(4,),
        protocol="clrp",
        wave=WaveConfig(num_switches=1, misroute_budget=0),
    )
    net = Network(config)
    log = EventLog()
    net.attach_event_log(log)
    factory = MessageFactory()

    print("machine:", config.describe())
    print()
    print("act 1 -- node 0 sends to node 3: a circuit is established "
          "and used\n")
    net.inject(factory.make(0, 3, 24, net.cycle))
    drain(net)

    print(log.render(log.between(0, net.cycle)))
    mark = net.cycle

    print("\nact 2 -- node 1 sends to node 3: its only channel is inside "
          "the\nestablished circuit, so phase 1 fails, phase 2 sets the "
          "Force bit,\nthe victim's source is asked to release, and the "
          "channel changes hands\n")
    net.inject(factory.make(1, 3, 24, net.cycle))
    drain(net)
    print(log.render(log.between(mark, net.cycle)))

    print("\nepilogue -- protocol counters:")
    interesting = (
        "probe.launched", "probe.launched_forced", "probe.backtracks",
        "clrp.phase2_entered", "clrp.victim_releases_requested",
        "circuit.established", "circuit.released",
    )
    for name in interesting:
        print(f"  {name:<36} {net.stats.count(name)}")

    # The theorems in miniature: everything was delivered.
    assert all(m.delivered > 0 for m in net.stats.messages.values())
    n_steals = len(log.of_kind(EventKind.RELEASE_REQUESTED))
    print(f"\nboth messages delivered; {n_steals} victim release(s) traced")


if __name__ == "__main__":
    main()
