#!/usr/bin/env python
"""Quickstart: simulate a wave-switched 8x8 mesh under uniform traffic.

Builds the hybrid network of the paper (wormhole S0 + wave-pipelined
S1..Sk), drives it with uniform random traffic under the CLRP protocol,
and prints what happened: delivery, latency, and how messages travelled
(fresh circuits, reused circuits, forced establishments, fallbacks).

Run:  python examples/quickstart.py
"""

from repro import (
    MessageFactory,
    Network,
    NetworkConfig,
    SimRandom,
    Simulator,
    UniformPattern,
    check_all_invariants,
    format_table,
    uniform_workload,
)


def main() -> None:
    config = NetworkConfig(topology="mesh", dims=(8, 8), protocol="clrp")
    print(f"machine : {config.describe()}")

    net = Network(config)
    factory = MessageFactory()
    workload = uniform_workload(
        factory,
        UniformPattern(config.num_nodes),
        num_nodes=config.num_nodes,
        offered_load=0.2,  # flits per node per cycle
        length=64,  # flits per message
        duration=5_000,  # injection window, cycles
        rng=SimRandom(seed=42),
    )
    print(f"workload: {len(workload)} messages, uniform destinations")

    sim = Simulator(net, workload, deadlock_check_interval=500)
    result = sim.run(max_cycles=100_000)

    print(f"result  : {result.summary()}")
    print()
    breakdown = net.stats.mode_breakdown()
    total = sum(breakdown.values())
    print(
        format_table(
            ["switching mode", "messages", "share"],
            [
                (mode, count, f"{count / total:.1%}")
                for mode, count in sorted(breakdown.items())
            ],
        )
    )
    print()
    hist = net.stats.latency_histogram()
    print(
        format_table(
            ["metric", "cycles"],
            [
                ("mean latency", net.stats.mean_latency()),
                ("p50 latency", hist.percentile(50)),
                ("p95 latency", hist.percentile(95)),
                ("max latency", hist.max),
            ],
        )
    )

    # Where did the cycles go, per switching mode?
    from repro.analysis.breakdown import format_breakdown

    print()
    print(format_breakdown(net.stats))

    # The theorems, checked: structure consistent, everything delivered.
    check_all_invariants(net)
    assert result.delivered == result.injected
    print("\nall messages delivered; structural invariants hold")


if __name__ == "__main__":
    main()
