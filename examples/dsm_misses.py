#!/usr/bin/env python
"""Distributed shared memory: remote-miss latency under wave switching.

The paper's opening motivation (section 1): in DSM machines "messages are
directly sent by the hardware, as a consequence of remote memory accesses
or coherence commands. Reducing the network hardware latency and
increasing network throughput is crucial to improve the performance of
DSMs."  The messages are tiny -- one-flit requests, cache-line replies --
so everything rides on circuit *reuse*, which page placement provides:
each node's misses go to a small working set of nearby home nodes.

This example simulates a miss storm on an 8x8 machine at three miss
rates and reports the metric a DSM architect cares about: the mean and
tail *round-trip* time of a miss (request out + line back).

Run:  python examples/dsm_misses.py
"""

from repro import (
    MessageFactory,
    Network,
    NetworkConfig,
    SimRandom,
    Simulator,
    WaveConfig,
    format_table,
)
from repro.traffic.workloads import dsm_workload

LINE_FLITS = 16  # a 64-byte line over 4-byte phits
HOMES = 3
MISSES = 60


def run(protocol: str, miss_gap: int):
    config = NetworkConfig(
        dims=(8, 8),
        protocol=protocol,
        wave=None if protocol == "wormhole" else WaveConfig(num_switches=4),
    )
    net = Network(config)
    msgs = dsm_workload(
        MessageFactory(),
        net.topology,
        misses_per_node=MISSES,
        request_length=1,
        line_length=LINE_FLITS,
        home_window=HOMES,
        miss_gap=miss_gap,
        memory_latency=30,
        rng=SimRandom(11),
    )
    result = Simulator(net, msgs).run(2_000_000)
    assert result.delivered == result.injected
    # Miss round trip = request latency + memory + reply latency; requests
    # and replies alternate in the stream (request = 1 flit).
    records = sorted(net.stats.delivered_records(), key=lambda r: r.msg_id)
    rtts = []
    for req, reply in zip(records[0::2], records[1::2]):
        assert req.length == 1 and reply.length == LINE_FLITS
        rtts.append(req.latency + 30 + reply.latency)
    rtts.sort()
    hits = net.stats.count("mode.circuit_hit")
    return {
        "mean rtt": sum(rtts) / len(rtts),
        "p95 rtt": rtts[int(len(rtts) * 0.95)],
        "hit rate": hits / len(net.stats.messages) if protocol != "wormhole" else 0.0,
    }


def main() -> None:
    print(f"DSM miss storm: {MISSES} misses/node, {LINE_FLITS}-flit lines, "
          f"{HOMES}-home working sets, 8x8 machine\n")
    rows = []
    for miss_gap in (40, 16, 8):
        wh = run("wormhole", miss_gap)
        wv = run("clrp", miss_gap)
        rows.append((
            f"1/{miss_gap}",
            wh["mean rtt"], wh["p95 rtt"],
            wv["mean rtt"], wv["p95 rtt"],
            f"{wv['hit rate']:.0%}",
            wh["mean rtt"] / wv["mean rtt"],
        ))
        print(f"miss rate 1/{miss_gap}: wormhole {wh['mean rtt']:.0f}, "
              f"wave {wv['mean rtt']:.0f} cycles mean rtt")
    print()
    print(format_table(
        ["miss rate", "wh mean", "wh p95", "wave mean", "wave p95",
         "wave hit rate", "speedup"],
        rows,
    ))
    print(
        "\nat low miss rates both are fine; as the miss rate climbs the "
        "wormhole\nplane saturates while reused circuits keep the line "
        "round trip flat --\nthe DSM case from the paper's introduction."
    )


if __name__ == "__main__":
    main()
