"""Protocol event tracing.

When enabled, the wave plane and protocol engines emit a structured event
per protocol action -- probe hops, reservations, backtracks, victim
requests, acks, teardowns, transfers -- giving a complete, replayable
story of every circuit's life.  Disabled (the default) it is a handful of
``if`` checks per event site, so simulations pay nothing for it.

Usage::

    net = Network(config)
    log = EventLog()
    net.attach_event_log(log)
    ... run ...
    for ev in log.for_circuit(circuit_id):
        print(ev)

Events are plain tuples wrapped in :class:`Event` for cheap creation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable


class EventKind(Enum):
    PROBE_LAUNCH = "probe_launch"
    PROBE_HOP = "probe_hop"
    PROBE_BACKTRACK = "probe_backtrack"
    PROBE_WAIT = "probe_wait"
    PROBE_FAIL = "probe_fail"
    CIRCUIT_RESERVED = "circuit_reserved"  # probe reached the destination
    ACK_HOP = "ack_hop"
    CIRCUIT_ESTABLISHED = "circuit_established"
    RELEASE_REQUESTED = "release_requested"
    TEARDOWN_START = "teardown_start"
    CIRCUIT_RELEASED = "circuit_released"
    TRANSFER_START = "transfer_start"
    TRANSFER_DELIVERED = "transfer_delivered"
    TRANSFER_COMPLETE = "transfer_complete"
    PHASE_CHANGE = "phase_change"  # CLRP entered phase 2 / 3
    CACHE_EVICT = "cache_evict"
    BUFFER_REALLOC = "buffer_realloc"
    # Dynamic faults (FaultSchedule): subject is the node of the dead
    # link for link events, the message id for worm drops, the circuit id
    # for fault teardowns / setup aborts.
    LINK_KILLED = "link_killed"
    LINK_HEALED = "link_healed"
    WORM_DROPPED = "worm_dropped"
    CIRCUIT_FAULT_TEARDOWN = "circuit_fault_teardown"
    PROBE_FAULT_ABORT = "probe_fault_abort"
    # Wormhole data-plane progress (subject = msg_id): emitted when a
    # worm's head / tail flit crosses a link, so a trace shows where each
    # worm is without recording every body flit.
    WORM_HEAD_ADVANCE = "worm_head_advance"
    WORM_TAIL_ADVANCE = "worm_tail_advance"
    # Reliability layer (subject = msg_id).
    RETRANSMIT = "retransmit"


@dataclass(frozen=True)
class Event:
    """One protocol event.

    ``subject`` is the circuit id for circuit-lifecycle events, the probe
    id for probe events (its circuit id rides in ``detail['circuit']``),
    or the message id for transfer events.
    """

    cycle: int
    kind: EventKind
    node: int
    subject: int
    detail: dict

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        return (
            f"[{self.cycle:>6}] {self.kind.value:<20} node={self.node:<3} "
            f"#{self.subject} {extra}"
        )


class EventLog:
    """Append-only event sink with simple query helpers."""

    def __init__(self, capacity: int | None = None) -> None:
        self.events: list[Event] = []
        self.capacity = capacity
        self.dropped = 0

    def emit(self, cycle: int, kind: EventKind, node: int, subject: int,
             **detail) -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(Event(cycle, kind, node, subject, detail))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        return [e for e in self.events if e.kind is kind]

    def for_circuit(self, circuit_id: int) -> list[Event]:
        """Every event touching one circuit, in time order."""
        out = []
        for e in self.events:
            if e.kind in (
                EventKind.PROBE_LAUNCH,
                EventKind.PROBE_HOP,
                EventKind.PROBE_BACKTRACK,
                EventKind.PROBE_WAIT,
                EventKind.PROBE_FAIL,
            ):
                if e.detail.get("circuit") == circuit_id:
                    out.append(e)
            elif e.subject == circuit_id and e.kind in (
                EventKind.CIRCUIT_RESERVED,
                EventKind.ACK_HOP,
                EventKind.CIRCUIT_ESTABLISHED,
                EventKind.RELEASE_REQUESTED,
                EventKind.TEARDOWN_START,
                EventKind.CIRCUIT_RELEASED,
                EventKind.TRANSFER_START,
            ):
                out.append(e)
        return out

    def between(self, start: int, end: int) -> list[Event]:
        return [e for e in self.events if start <= e.cycle < end]

    def render(self, events: Iterable[Event] | None = None) -> str:
        """Human-readable multi-line rendering."""
        src = self.events if events is None else list(events)
        return "\n".join(str(e) for e in src)
