"""Configuration dataclasses for networks, wormhole routers and wave switching.

Every tunable the paper mentions is a field here:

* number of wave-pipelined switches per node ``k`` (Fig. 2, S1..Sk),
* number of wormhole virtual channels ``w`` (Fig. 2, S0),
* the misroute budget ``m`` of the MB-m probe protocol,
* the wave-pipelining clock ratio (the paper's Spice simulations found
  "up to four times higher" than a wormhole router's clock),
* the channel-narrowing factor from splitting physical channels,
* the end-to-end window of the circuit flow-control protocol,
* circuit-cache capacity and replacement policy.

Configs validate on construction (``__post_init__``) so an experiment that
would silently simulate the wrong machine fails loudly instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Literal

from repro.errors import ConfigError

TopologyName = Literal["mesh", "torus", "hypercube", "fullmesh", "min"]
RoutingName = Literal["dor", "adaptive"]
ReplacementPolicyName = Literal["lru", "lfu", "fifo", "random"]
ProtocolName = Literal["clrp", "carp", "wormhole"]
# Stepping-core implementations (all bit-identical; see DESIGN.md §9):
#   reference  -- the original O(num_nodes) loop, the executable spec;
#   active     -- active-set registries, O(active components) per cycle;
#   vectorized -- struct-of-arrays wormhole data path over flat channel
#                 state, batched per cycle.
BackendName = Literal["active", "reference", "vectorized"]
# Section 3.1's simplification menu for CLRP:
#   standard        -- phase 1 tries all k switches, then phase 2 all k;
#   eager_force     -- phase 1 tries only the Initial Switch before forcing;
#   single_switch   -- both phases try only the Initial Switch;
#   immediate_force -- skip phase 1 entirely (first probe carries Force).
CLRPVariantName = Literal[
    "standard", "eager_force", "single_switch", "immediate_force"
]


class SwitchingMode(Enum):
    """How a message actually travelled, recorded per message for analysis.

    The CLRP description in section 3.1 of the paper induces exactly these
    outcomes; CARP and the wormhole-only baseline use a subset.
    """

    CIRCUIT_HIT = "circuit_hit"  # reused a pre-established circuit
    CIRCUIT_NEW = "circuit_new"  # phase 1: circuit set up with Force=0
    CIRCUIT_FORCED = "circuit_forced"  # phase 2: circuit set up with Force=1
    WORMHOLE_FALLBACK = "wormhole_fallback"  # phase 3 fallback through S0
    WORMHOLE = "wormhole"  # sent through S0 by design (baseline / CARP)
    DROPPED = "dropped"  # undeliverable: static faults cut every S0 path


@dataclass(frozen=True)
class WormholeConfig:
    """Parameters of the S0 wormhole subsystem (Fig. 1 / Fig. 2).

    Attributes:
        vcs: virtual channels per physical channel dedicated to wormhole
            switching -- the paper's ``w``.  Must cover the deadlock classes
            required by the topology/routing pair (2 for torus DOR).
        buffer_depth: flit buffer depth per virtual channel.
        routing: ``"dor"`` for deterministic dimension-order routing or
            ``"adaptive"`` for Duato-style minimal adaptive routing with
            dimension-order escape channels.
        router_delay: extra pipeline cycles charged to header routing at
            each hop (the paper notes routing delay bounds the base clock).
    """

    vcs: int = 2
    buffer_depth: int = 4
    routing: RoutingName = "dor"
    router_delay: int = 1

    def __post_init__(self) -> None:
        if self.vcs < 1:
            raise ConfigError(f"wormhole vcs must be >= 1, got {self.vcs}")
        if self.buffer_depth < 1:
            raise ConfigError(
                f"wormhole buffer_depth must be >= 1, got {self.buffer_depth}"
            )
        if self.routing not in ("dor", "adaptive"):
            raise ConfigError(f"unknown routing {self.routing!r}")
        if self.router_delay < 0:
            raise ConfigError(f"router_delay must be >= 0, got {self.router_delay}")


@dataclass(frozen=True)
class WaveConfig:
    """Parameters of the wave-pipelined circuit subsystem (S1..Sk, Fig. 2).

    Attributes:
        num_switches: the paper's ``k`` -- wave-pipelined crossbars per node,
            each with its own physical channel slice and control channel.
        misroute_budget: ``m`` of the MB-m probe protocol.
        wave_clock_ratio: wave clock / base clock.  The paper's Spice
            studies support "up to four times higher"; default 4.0.
        channel_width_factor: fraction of a full physical channel's width
            available to one circuit channel.  Splitting a channel across
            ``k`` wave switches narrows each slice; 1.0 models the
            multi-chip design (one full-width switch per chip, T3D-style).
        window: end-to-end windowing protocol window, in flits.  Must be
            deep enough to cover the ack round trip or circuits stall.
        wire_delay: base-clock cycles for a flit wavefront to cross one
            hop of an established circuit (synchronizer + wire).
        setup_hop_delay: base-clock cycles per probe/ack/control-flit hop
            on the control channels.
        circuit_cache_size: entries in each node's Circuit Cache (Fig. 5).
        replacement: policy used by CLRP when the cache is full and when
            phase 2 must pick a victim circuit.
        max_setup_retries: how many times CARP retries the full
            all-switches search before giving up on a directive.
        clrp_variant: which of section 3.1's protocol simplifications to
            run -- "standard" (both phases sweep all switches),
            "eager_force" (phase 1 tries only the Initial Switch),
            "single_switch" (both phases try only the Initial Switch) or
            "immediate_force" (phase 1 skipped; the first probe carries
            the Force bit).  "The optimal protocol depends on the number
            of physical switches per node, and on the applications" --
            benchmark E8e compares them.
    """

    num_switches: int = 2
    misroute_budget: int = 2
    wave_clock_ratio: float = 4.0
    channel_width_factor: float = 1.0
    window: int = 256
    wire_delay: int = 1
    setup_hop_delay: int = 1
    circuit_cache_size: int = 8
    replacement: ReplacementPolicyName = "lru"
    max_setup_retries: int = 1
    clrp_variant: CLRPVariantName = "standard"
    # End-point message buffers (section 2): when a circuit is
    # established, buffers are allocated at both ends and reused by every
    # message on the circuit.  CARP knows the longest message of the set;
    # CLRP allocates ``default_buffer_flits`` and pays
    # ``buffer_realloc_penalty`` cycles of messaging-layer software cost
    # whenever a longer message forces re-allocation.
    model_buffers: bool = False
    default_buffer_flits: int = 64
    buffer_realloc_penalty: int = 200

    def __post_init__(self) -> None:
        if self.num_switches < 1:
            raise ConfigError(f"num_switches must be >= 1, got {self.num_switches}")
        if self.misroute_budget < 0:
            raise ConfigError(
                f"misroute_budget must be >= 0, got {self.misroute_budget}"
            )
        if self.wave_clock_ratio <= 0:
            raise ConfigError(
                f"wave_clock_ratio must be > 0, got {self.wave_clock_ratio}"
            )
        if not 0 < self.channel_width_factor <= 1.0:
            raise ConfigError(
                "channel_width_factor must be in (0, 1], got "
                f"{self.channel_width_factor}"
            )
        if self.window < 1:
            raise ConfigError(f"window must be >= 1, got {self.window}")
        if self.wire_delay < 1:
            raise ConfigError(f"wire_delay must be >= 1, got {self.wire_delay}")
        if self.setup_hop_delay < 1:
            raise ConfigError(
                f"setup_hop_delay must be >= 1, got {self.setup_hop_delay}"
            )
        if self.circuit_cache_size < 1:
            raise ConfigError(
                f"circuit_cache_size must be >= 1, got {self.circuit_cache_size}"
            )
        if self.replacement not in ("lru", "lfu", "fifo", "random"):
            raise ConfigError(f"unknown replacement policy {self.replacement!r}")
        if self.max_setup_retries < 0:
            raise ConfigError(
                f"max_setup_retries must be >= 0, got {self.max_setup_retries}"
            )
        if self.clrp_variant not in (
            "standard", "eager_force", "single_switch", "immediate_force"
        ):
            raise ConfigError(f"unknown clrp_variant {self.clrp_variant!r}")
        if self.default_buffer_flits < 1:
            raise ConfigError(
                f"default_buffer_flits must be >= 1, got "
                f"{self.default_buffer_flits}"
            )
        if self.buffer_realloc_penalty < 0:
            raise ConfigError(
                f"buffer_realloc_penalty must be >= 0, got "
                f"{self.buffer_realloc_penalty}"
            )

    @property
    def flits_per_cycle(self) -> float:
        """Circuit streaming rate in flits per *base* cycle.

        A circuit transfers at the wave clock over a (possibly narrowed)
        channel, so the effective rate relative to a full-width wormhole
        channel is ``wave_clock_ratio * channel_width_factor``.
        """
        return self.wave_clock_ratio * self.channel_width_factor


@dataclass(frozen=True)
class ReliabilityConfig:
    """End-to-end delivery guarantees at the network interfaces.

    When attached to a :class:`NetworkConfig`, every injected message is
    tracked at its source NI until acknowledged by the destination NI;
    on timeout it is retransmitted with capped exponential backoff, and
    after ``max_retries`` retransmissions it is reported as a
    :class:`~repro.sim.stats.DeliveryFailure` -- so under dynamic faults
    no message is ever *silently* lost.

    Attributes:
        timeout: cycles from (re)transmission to the first retry.
        backoff: multiplier applied to the timeout after each retry.
        max_timeout: cap on the backed-off timeout, which bounds the time
            to the next retransmission (this is what lets the progress
            monitor treat "blocked on fault recovery" as live).
        max_retries: retransmissions allowed before declaring failure
            (total send attempts = ``max_retries + 1``).
        ack_delay_per_hop: modelled latency of the contention-free ack
            path, cycles per hop of source-destination distance.
    """

    timeout: int = 600
    backoff: int = 2
    max_timeout: int = 4800
    max_retries: int = 6
    ack_delay_per_hop: int = 1

    def __post_init__(self) -> None:
        if self.timeout < 1:
            raise ConfigError(f"timeout must be >= 1, got {self.timeout}")
        if self.backoff < 1:
            raise ConfigError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_timeout < self.timeout:
            raise ConfigError(
                f"max_timeout ({self.max_timeout}) must be >= timeout "
                f"({self.timeout})"
            )
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.ack_delay_per_hop < 0:
            raise ConfigError(
                f"ack_delay_per_hop must be >= 0, got {self.ack_delay_per_hop}"
            )


@dataclass(frozen=True)
class NetworkConfig:
    """Complete description of one simulated machine.

    Attributes:
        topology: one of ``mesh`` / ``torus`` / ``hypercube`` /
            ``fullmesh`` / ``min``.
        dims: radix per dimension, e.g. ``(8, 8)`` for an 8x8 mesh.  For a
            hypercube use ``(2,) * n``; for a fullmesh ``(num_nodes,)``;
            for a ``min`` (k-ary n-fly butterfly) ``(k,) * n``.
        protocol: the switching protocol under test: ``"clrp"``,
            ``"carp"`` or ``"wormhole"`` (baseline: every message uses S0).
        wormhole: S0 parameters.
        wave: S1..Sk parameters; may be ``None`` only for the wormhole
            baseline.
        reliability: end-to-end ack/retransmit parameters; ``None`` (the
            default) disables the reliability layer entirely, preserving
            the raw protocol behaviour.
        seed: master RNG seed -- every stochastic decision in a run derives
            from it, making runs exactly reproducible.
        backend: stepping-core implementation ``Network.step`` binds to.
            All three produce bit-identical results (enforced by
            ``tests/integration/test_cycle_exact.py``); they differ only
            in wall-clock speed.  ``"active"`` (default) steps registered
            components only; ``"vectorized"`` additionally runs the
            wormhole data path over struct-of-arrays channel state;
            ``"reference"`` is the plain O(num_nodes) executable spec.
    """

    topology: TopologyName = "mesh"
    dims: tuple[int, ...] = (8, 8)
    protocol: ProtocolName = "clrp"
    wormhole: WormholeConfig = field(default_factory=WormholeConfig)
    wave: WaveConfig | None = field(default_factory=WaveConfig)
    seed: int = 0
    reliability: ReliabilityConfig | None = None
    backend: BackendName = "active"

    def __post_init__(self) -> None:
        if self.topology not in ("mesh", "torus", "hypercube", "fullmesh", "min"):
            raise ConfigError(f"unknown topology {self.topology!r}")
        if self.backend not in ("active", "reference", "vectorized"):
            raise ConfigError(f"unknown backend {self.backend!r}")
        if not self.dims:
            raise ConfigError("dims must be non-empty")
        if any(d < 2 for d in self.dims):
            raise ConfigError(f"every dimension must have radix >= 2, got {self.dims}")
        if self.topology == "hypercube" and any(d != 2 for d in self.dims):
            raise ConfigError("hypercube requires radix 2 in every dimension")
        if self.topology == "fullmesh" and len(self.dims) != 1:
            raise ConfigError(
                f"fullmesh takes a single dimension (the node count), "
                f"got {self.dims}"
            )
        if self.topology == "min" and len(set(self.dims)) != 1:
            raise ConfigError(
                f"min (k-ary n-fly) needs one radix for every stage, "
                f"got {self.dims}"
            )
        if self.protocol not in ("clrp", "carp", "wormhole"):
            raise ConfigError(f"unknown protocol {self.protocol!r}")
        if self.protocol != "wormhole" and self.wave is None:
            raise ConfigError(f"protocol {self.protocol!r} requires a WaveConfig")
        if self.topology == "torus" and any(d > 2 for d in self.dims):
            # Dateline deadlock avoidance for torus DOR needs two VC classes.
            if self.wormhole.vcs < 2:
                raise ConfigError(
                    "torus dimension-order routing needs >= 2 virtual "
                    f"channels for dateline classes, got {self.wormhole.vcs}"
                )

    @property
    def num_nodes(self) -> int:
        """Number of message *endpoints* (workloads size themselves by this).

        Equals the product of ``dims``: all nodes on the Cartesian family
        and fullmesh; the terminal count on a ``min``, whose internal
        switch nodes never source or sink messages.
        """
        n = 1
        for d in self.dims:
            n *= d
        return n

    def describe(self) -> str:
        """One-line human-readable summary used in reports and logs."""
        shape = "x".join(str(d) for d in self.dims)
        parts = [
            f"{shape} {self.topology}",
            f"protocol={self.protocol}",
            f"w={self.wormhole.vcs} vcs ({self.wormhole.routing})",
        ]
        if self.wave is not None:
            parts.append(
                f"k={self.wave.num_switches} wave switches "
                f"(ratio {self.wave.wave_clock_ratio:g}, m={self.wave.misroute_budget})"
            )
        return ", ".join(parts)
