"""Simulation kernel: configuration, RNG, statistics and the cycle engine.

The whole reproduction is a *cycle-driven* simulation clocked at the
wormhole router frequency (the paper's "base clock").  Wave-pipelined
circuits run at a configurable multiple of this clock; they are advanced
with per-cycle flit accumulators so the single global loop stays simple.

Public surface:

* :class:`~repro.sim.config.WormholeConfig`,
  :class:`~repro.sim.config.WaveConfig`,
  :class:`~repro.sim.config.NetworkConfig` -- declarative configuration.
* :class:`~repro.sim.rng.SimRandom` -- deterministic seeded randomness.
* :class:`~repro.sim.stats.StatsCollector`,
  :class:`~repro.sim.stats.Histogram` -- measurement.
* :class:`~repro.sim.engine.Simulator` -- the run loop with progress and
  deadlock hooks.
"""

from repro.sim.config import (
    NetworkConfig,
    ReliabilityConfig,
    ReplacementPolicyName,
    RoutingName,
    SwitchingMode,
    TopologyName,
    WaveConfig,
    WormholeConfig,
)
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.events import Event, EventKind, EventLog
from repro.sim.rng import SimRandom
from repro.sim.stats import Histogram, MessageRecord, StatsCollector, TimeSeries

__all__ = [
    "Event",
    "EventKind",
    "EventLog",
    "Histogram",
    "MessageRecord",
    "NetworkConfig",
    "ReliabilityConfig",
    "ReplacementPolicyName",
    "RoutingName",
    "SimRandom",
    "SimulationResult",
    "Simulator",
    "StatsCollector",
    "SwitchingMode",
    "TimeSeries",
    "TopologyName",
    "WaveConfig",
    "WormholeConfig",
]
