"""Deterministic randomness for simulations.

A single master seed fans out into *named streams* so that adding a new
consumer of randomness (say, a new traffic pattern) does not perturb the
random decisions of existing consumers.  This is the standard trick for
keeping large simulation studies reproducible while the code evolves.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(master: int, name: str) -> int:
    """Derive a stream seed from the master seed and a stream name.

    Uses BLAKE2 rather than ``hash()`` because the latter is salted per
    process and would break cross-run reproducibility.
    """
    digest = hashlib.blake2b(
        f"{master}:{name}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class SimRandom:
    """A named-stream random source built on :class:`random.Random`.

    Example:
        >>> rng = SimRandom(seed=42)
        >>> traffic = rng.stream("traffic")
        >>> arbiter = rng.stream("arbiter")
        >>> isinstance(traffic.random(), float)
        True

    The ``traffic`` stream yields the same sequence regardless of how many
    draws the ``arbiter`` stream makes.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream with the given name."""
        got = self._streams.get(name)
        if got is None:
            got = random.Random(_derive_seed(self.seed, name))
            self._streams[name] = got
        return got

    # Convenience pass-throughs on an implicit "default" stream. ---------

    def random(self) -> float:
        return self.stream("default").random()

    def randint(self, a: int, b: int) -> int:
        return self.stream("default").randint(a, b)

    def choice(self, seq: Sequence[T]) -> T:
        return self.stream("default").choice(seq)

    def shuffle(self, seq: list) -> None:
        self.stream("default").shuffle(seq)

    def fork(self, name: str) -> "SimRandom":
        """Derive an independent child :class:`SimRandom`.

        Useful when a subsystem wants to manage its own named streams
        without colliding with the parent's namespace.
        """
        return SimRandom(_derive_seed(self.seed, f"fork:{name}"))
