"""Measurement infrastructure: counters, histograms, time series, message log.

Everything the benchmark harness reports flows through
:class:`StatsCollector`.  Message-level records keep the raw material for
latency distributions; counters keep protocol-event tallies (probe
backtracks, forced teardowns, phase outcomes, ...) that the CLRP/CARP
analyses in the paper reason about qualitatively.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable

from repro.sim.config import SwitchingMode


@dataclass
class MessageRecord:
    """Lifetime record of one message, written as it moves through the sim.

    Times are base-clock cycles.  ``created`` is when the workload produced
    the message, ``injected`` when its first flit (or probe) entered the
    network, ``delivered`` when its last flit reached the destination NI.
    ``mode`` records which switching path it ultimately took.
    """

    msg_id: int
    src: int
    dst: int
    length: int
    created: int
    injected: int = -1
    delivered: int = -1
    mode: SwitchingMode | None = None
    hops: int = 0
    setup_cycles: int = 0  # cycles spent establishing a circuit (if any)
    probe_hops: int = 0  # total control-flit hops charged to this message

    @property
    def latency(self) -> int:
        """End-to-end latency (creation to delivery), -1 if undelivered."""
        if self.delivered < 0:
            return -1
        return self.delivered - self.created

    @property
    def network_latency(self) -> int:
        """Injection-to-delivery latency, excluding source queueing."""
        if self.delivered < 0 or self.injected < 0:
            return -1
        return self.delivered - self.injected


@dataclass(frozen=True)
class LossRecord:
    """Structured record of payload lost to a dynamic fault.

    Emitted when a dead link severs an in-flight transfer: wormhole flits
    dropped (at the fault or drained via a poisoned route) or a wave
    transfer cut before its tail reached the destination.  The reliability
    layer turns these into retransmissions; without it they are the
    ground truth for "what the fault destroyed".
    """

    cycle: int
    msg_id: int
    node: int
    reason: str  # e.g. "link_down", "no_route", "circuit_severed"
    flits: int = 0


@dataclass(frozen=True)
class DeliveryFailure:
    """A message the reliability layer gave up on.

    Produced only when the retransmit budget is exhausted; every injected
    message ends as exactly one of delivered or DeliveryFailure when the
    reliability layer is on -- never silently lost.
    """

    msg_id: int
    src: int
    dst: int
    attempts: int  # total send attempts, including the original
    cycle: int
    reason: str


class Histogram:
    """A fixed-bin histogram with running mean/min/max.

    Bins are uniform over ``[lo, hi)`` with overflow/underflow buckets, which
    is all that latency distributions here need, and keeps per-sample cost
    to a couple of integer ops.
    """

    def __init__(self, lo: float, hi: float, bins: int = 64) -> None:
        if hi <= lo:
            raise ValueError(f"need hi > lo, got [{lo}, {hi})")
        if bins < 1:
            raise ValueError(f"need bins >= 1, got {bins}")
        self.lo = lo
        self.hi = hi
        self.bins = bins
        self._width = (hi - lo) / bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.n = 0
        self.total = 0.0
        # Welford running mean / sum of squared deviations: numerically
        # stable for large-offset samples where sum-of-squares minus
        # mean-squared cancels catastrophically.
        self._mean = 0.0
        self._m2 = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf

    def add(self, value: float) -> None:
        self.n += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < self.lo:
            self.underflow += 1
        elif value >= self.hi:
            self.overflow += 1
        else:
            # Roundoff in the division can land a value one ULP below
            # ``hi`` on index ``bins``; clamp to the top bin.
            idx = int((value - self.lo) / self._width)
            if idx >= self.bins:
                idx = self.bins - 1
            self.counts[idx] += 1

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else math.nan

    @property
    def variance(self) -> float:
        if self.n < 2:
            return math.nan
        return self._m2 / self.n

    @property
    def stddev(self) -> float:
        v = self.variance
        return math.sqrt(v) if not math.isnan(v) else math.nan

    def percentile(self, q: float) -> float:
        """Approximate percentile from bin midpoints (q in [0, 100]).

        The exact running ``min``/``max`` anchor the edges: ``q = 0`` is
        the minimum and ``q = 100`` the maximum, regardless of binning.
        A target falling in the underflow bucket reports ``lo`` (the
        bucket's upper bound); one falling in the overflow bucket reports
        the midpoint of ``[hi, max]``, the only interval the bucket is
        known to span -- not a silent ``max``.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.n == 0:
            return math.nan
        if q == 0:
            return self.min
        if q == 100:
            return self.max
        target = self.n * q / 100.0
        seen = self.underflow
        if seen >= target and self.underflow:
            return self.lo
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target and c:
                return self.lo + (i + 0.5) * self._width
        if self.overflow:
            # Target sits among overflow samples, known to lie in [hi, max].
            return (self.hi + self.max) / 2.0
        return self.max  # pragma: no cover - float-roundoff fallback


class TimeSeries:
    """Windowed samples of a scalar over simulated time.

    ``record(cycle, value)`` appends; used for accepted-throughput traces
    and saturation detection in the load sweeps.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: list[int] = []
        self.values: list[float] = []

    def record(self, cycle: int, value: float) -> None:
        self.times.append(cycle)
        self.values.append(value)

    def mean_after(self, cycle: int) -> float:
        """Mean of samples at or after ``cycle`` (warmup exclusion).

        ``record`` appends in non-decreasing cycle order, so the window
        start is a binary search, not a full rescan -- this is called
        once per sweep point by saturation detection.
        """
        start = bisect_left(self.times, cycle)
        if start >= len(self.values):
            return math.nan
        vals = self.values[start:]
        return sum(vals) / len(vals)

    def __len__(self) -> int:
        return len(self.times)


@dataclass
class StatsCollector:
    """Central sink for everything a run measures.

    Counters are created on first use; prefer dotted names grouped by
    subsystem (``clrp.phase1_success``, ``probe.backtracks``,
    ``wormhole.flits_moved``...).
    """

    counters: dict[str, int] = field(default_factory=dict)
    messages: dict[int, MessageRecord] = field(default_factory=dict)
    series: dict[str, TimeSeries] = field(default_factory=dict)
    losses: list[LossRecord] = field(default_factory=list)
    delivery_failures: list[DeliveryFailure] = field(default_factory=list)
    # Undelivered-message count, maintained incrementally so the livelock
    # error path and per-window probes never scan the full message log.
    outstanding: int = 0

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def record_loss(self, record: LossRecord) -> None:
        self.losses.append(record)
        self.bump(f"loss.{record.reason}")

    def record_delivery_failure(self, failure: DeliveryFailure) -> None:
        self.delivery_failures.append(failure)
        self.bump("reliability.delivery_failures")

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def new_message(self, record: MessageRecord) -> MessageRecord:
        existing = self.messages.get(record.msg_id)
        if existing is not None:
            # Re-registration (reliability retransmit re-injects the same
            # msg_id): the message is already accounted for; incrementing
            # ``outstanding`` again would leave it nonzero forever.
            return existing
        self.messages[record.msg_id] = record
        if record.delivered < 0:
            self.outstanding += 1
        return record

    def mark_delivered(self, msg_id: int, cycle: int) -> MessageRecord:
        """Record delivery; the only sanctioned way to set ``delivered``."""
        record = self.messages[msg_id]
        if record.delivered < 0:
            self.outstanding -= 1
        record.delivered = cycle
        return record

    def get_series(self, name: str) -> TimeSeries:
        got = self.series.get(name)
        if got is None:
            got = TimeSeries(name)
            self.series[name] = got
        return got

    # Aggregations used by the analysis layer. ---------------------------

    def delivered_records(self) -> list[MessageRecord]:
        return [m for m in self.messages.values() if m.delivered >= 0]

    def undelivered_records(self) -> list[MessageRecord]:
        return [m for m in self.messages.values() if m.delivered < 0]

    def latency_histogram(
        self, hi: float | None = None, bins: int = 64
    ) -> Histogram:
        delivered = self.delivered_records()
        if not delivered:
            return Histogram(0.0, 1.0, 1)
        top = hi if hi is not None else max(m.latency for m in delivered) + 1.0
        h = Histogram(0.0, max(top, 1.0), bins)
        h.extend(float(m.latency) for m in delivered)
        return h

    def mean_latency(self) -> float:
        delivered = self.delivered_records()
        if not delivered:
            return math.nan
        return sum(m.latency for m in delivered) / len(delivered)

    def mean_network_latency(self) -> float:
        delivered = self.delivered_records()
        if not delivered:
            return math.nan
        return sum(m.network_latency for m in delivered) / len(delivered)

    def throughput_flits_per_cycle(self, start: int, end: int) -> float:
        """Accepted throughput: delivered payload flits per cycle in window."""
        if end <= start:
            return math.nan
        flits = sum(
            m.length
            for m in self.messages.values()
            if start <= m.delivered < end
        )
        return flits / (end - start)

    def mode_breakdown(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for m in self.messages.values():
            if m.mode is not None:
                key = m.mode.value
                out[key] = out.get(key, 0) + 1
        return out
