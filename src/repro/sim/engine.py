"""The simulation run loop.

:class:`Simulator` drives a network object cycle by cycle, feeding it
messages from a workload, and optionally running the deadlock detector and
livelock (progress) monitor from :mod:`repro.verify`.

The engine is deliberately thin: all switching semantics live in the
network; all traffic semantics live in the workload.  The engine only owns
*time* and *stopping conditions*, which keeps it reusable across every
experiment in ``benchmarks/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.errors import LivelockError, SimulationError
from repro.sim.stats import StatsCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.network.message import Message
    from repro.network.network import Network


@dataclass
class SimulationResult:
    """Outcome of one :meth:`Simulator.run` call."""

    cycles: int
    stats: StatsCollector
    completed: bool  # True iff workload exhausted and network drained
    injected: int = 0
    delivered: int = 0
    config_summary: str = ""

    @property
    def undelivered(self) -> int:
        return self.injected - self.delivered

    def summary(self) -> str:
        state = "drained" if self.completed else "cut off"
        return (
            f"{self.cycles} cycles ({state}): {self.delivered}/{self.injected}"
            f" messages delivered, mean latency "
            f"{self.stats.mean_latency():.1f} cycles"
        )


class Simulator:
    """Cycle-driven driver for a :class:`~repro.network.network.Network`.

    Args:
        network: the machine under test.
        workload: an iterable of :class:`~repro.network.message.Message`
            objects ordered by non-decreasing ``created`` time.  ``None``
            means the caller injects messages manually before/between runs.
        deadlock_check_interval: if > 0, run the wait-for-graph cycle check
            every that many cycles (raises
            :class:`~repro.errors.DeadlockError` on a cycle).
        progress_timeout: if > 0, raise
            :class:`~repro.errors.LivelockError` when the network performs
            no work for that many consecutive cycles while messages are
            outstanding.  This is the executable form of "every message
            reaches its destination in finite time".
        on_cycle: optional callback invoked after every simulated cycle,
            for custom probes in tests and benches.
        sampler: optional metric sampler (duck-typed to
            :class:`~repro.observe.metrics.NetworkSampler`): after each
            stepped cycle ``sampler.maybe_sample(net)`` runs, and idle
            fast-forward jumps are capped at ``sampler.next_due`` so
            cadence samples land on their exact cycles.  Unlike
            ``on_cycle`` it does not disable fast-forward.
        fast_forward: when True (the default), an idle network with the
            next workload message still in the future jumps straight to
            that message's creation cycle instead of spinning through
            empty cycles.  Cycle-exact: the skipped cycles would each
            have performed zero work.  Disabled automatically while an
            ``on_cycle`` callback is set (the callback must see every
            cycle).
    """

    def __init__(
        self,
        network: "Network",
        workload: Iterable["Message"] | None = None,
        *,
        deadlock_check_interval: int = 0,
        progress_timeout: int = 0,
        on_cycle: Callable[["Network"], None] | None = None,
        fast_forward: bool = True,
        sampler=None,
    ) -> None:
        self.network = network
        self._pending: Iterator["Message"] | None = (
            iter(workload) if workload is not None else None
        )
        self._next_msg: "Message | None" = None
        self.deadlock_check_interval = deadlock_check_interval
        self.progress_timeout = progress_timeout
        self.on_cycle = on_cycle
        self.fast_forward = fast_forward
        self.sampler = sampler
        self._finished = False
        self._last_progress_cycle = 0
        self._last_work_counter = -1

    # ------------------------------------------------------------------

    def _pump_workload(self) -> bool:
        """Inject all messages whose creation time has arrived.

        Returns True while the workload may still produce messages.
        """
        if self._pending is None:
            return False
        cycle = self.network.cycle
        while True:
            if self._next_msg is None:
                try:
                    self._next_msg = next(self._pending)
                except StopIteration:
                    self._pending = None
                    return False
            if self._next_msg.created > cycle:
                return True
            self.network.inject(self._next_msg)
            self._next_msg = None

    def _check_progress(self) -> None:
        counter = self.network.work_counter
        # Waiting out a retransmission timeout is recovery, not livelock:
        # the reliability layer guarantees bounded work (a retransmit or a
        # DeliveryFailure) once the timer fires, so keep the stall anchor
        # moving.  getattr: engine tests drive stub networks.
        recovery = getattr(self.network, "recovery_pending", None)
        if (
            counter != self._last_work_counter
            or self.network.is_idle()
            or (recovery is not None and recovery())
        ):
            # An idle network is not *stalled* -- keep the timer anchored
            # at the end of the idle gap, so work that starts after a gap
            # (or a fast-forward jump) gets a full timeout window instead
            # of inheriting a stale pre-gap marker.  This also holds
            # across run() slices, which share these markers.
            self._last_work_counter = counter
            self._last_progress_cycle = self.network.cycle
            return
        stalled_for = self.network.cycle - self._last_progress_cycle
        if stalled_for >= self.progress_timeout:
            raise LivelockError(
                f"no work performed for {stalled_for} cycles with "
                f"{self.network.outstanding_messages()} messages outstanding "
                f"at cycle {self.network.cycle}"
            )

    # ------------------------------------------------------------------

    def run(self, max_cycles: int) -> SimulationResult:
        """Advance the network up to ``max_cycles`` cycles.

        Stops early once the workload is exhausted and the network has
        drained.  May be called repeatedly to continue a run in slices.
        """
        if max_cycles < 0:
            raise SimulationError(f"max_cycles must be >= 0, got {max_cycles}")
        if self._finished:
            raise SimulationError("simulation already drained; create a new one")

        net = self.network
        deadline = net.cycle + max_cycles
        more_traffic = True
        while net.cycle < deadline:
            more_traffic = self._pump_workload()
            if not more_traffic and net.is_idle():
                self._finished = True
                break
            if (
                self.fast_forward
                and self.on_cycle is None
                and more_traffic
                and self._next_msg is not None
                and net.is_idle()
            ):
                # Idle gap: every skipped cycle would perform zero work
                # (stepping an idle network only advances the clock), so
                # jumping to the next message's creation cycle -- capped at
                # the deadline -- is cycle-exact.  Periodic deadlock checks
                # on an idle network are no-ops and skip safely too.
                target = min(self._next_msg.created, deadline)
                # A scheduled fault event must be stepped through at its
                # exact cycle: injection pumps *before* net.step(), so a
                # jump past the event would let new messages see stale
                # fault state.  getattr: bench stubs are not Networks.
                sched = getattr(net, "fault_schedule", None)
                if sched is not None:
                    nxt = sched.next_event_cycle()
                    if nxt is not None:
                        target = min(target, nxt)
                # Likewise a pending metric sample: stop the jump at its
                # due cycle so the sample sees that exact instant.
                if self.sampler is not None:
                    target = min(target, self.sampler.next_due)
                if target > net.cycle:
                    net.cycle = target
                    self._last_progress_cycle = target
                    self._last_work_counter = net.work_counter
                    if self.sampler is not None:
                        self.sampler.maybe_sample(net)
                    continue
            net.step()
            if self.sampler is not None:
                self.sampler.maybe_sample(net)
            if (
                self.deadlock_check_interval
                and net.cycle % self.deadlock_check_interval == 0
            ):
                net.check_deadlock()
            if self.progress_timeout:
                self._check_progress()
            if self.on_cycle is not None:
                # Probes may read per-router state directly; give the
                # vectorized backend a chance to refresh the object views
                # first.  getattr: engine tests drive stub networks.
                materialize = getattr(net, "materialize_views", None)
                if materialize is not None:
                    materialize()
                self.on_cycle(net)
        else:
            # Deadline hit; a fully drained idle network still counts done.
            if not self._pump_workload() and net.is_idle():
                self._finished = True

        # Leave router objects fresh for post-run inspection (end-of-run
        # invariant audits, tests) regardless of the stepping backend.
        materialize = getattr(net, "materialize_views", None)
        if materialize is not None:
            materialize()
        stats = net.stats
        return SimulationResult(
            cycles=net.cycle,
            stats=stats,
            completed=self._finished,
            injected=len(stats.messages),
            delivered=len(stats.delivered_records()),
            config_summary=net.config.describe(),
        )
