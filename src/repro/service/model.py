"""Service-side envelopes around JobSpecs.

The cache-key stability contract: everything the *service* needs to
know about a submission -- who submitted it (tenant), how urgent it is
(priority), when it arrived (submitted_at) -- is metadata about the
*request*, not the *simulation*.  It therefore lives on
:class:`SubmittedJob`, the envelope, and never on
:class:`~repro.orchestrate.spec.JobSpec` itself.  Adding or changing
envelope fields can never move a spec's content key
(:meth:`JobSpec.key`), so results computed before the service existed
stay valid cache hits forever (guarded by
``tests/orchestrate/test_spec.py::TestServiceEnvelopeKeyStability``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.orchestrate.spec import JobSpec

# Job lifecycle: queued -> running -> ok | failed; cached resolves at
# submission time, cancelled while still queued.
STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_CACHED = "cached"
STATUS_CANCELLED = "cancelled"

TERMINAL_STATUSES = frozenset(
    {STATUS_OK, STATUS_FAILED, STATUS_CACHED, STATUS_CANCELLED}
)


class _IdCounter:
    """Monotonic id source that journal resume can fast-forward.

    Restoring journaled jobs pins their original ids; the counter must
    then start *past* the highest restored id so fresh submissions on
    the resumed server never collide with replayed ones.
    """

    def __init__(self) -> None:
        self.n = 0

    def next(self) -> int:
        self.n += 1
        return self.n

    def advance_past(self, n: int) -> None:
        self.n = max(self.n, n)


_job_ids = _IdCounter()
_campaign_ids = _IdCounter()


def _id_suffix(ident: str) -> int:
    """Numeric tail of a ``j-000042`` / ``c-0007`` style id (0 if none)."""
    _, _, tail = ident.rpartition("-")
    return int(tail) if tail.isdigit() else 0


def advance_ids(job_ids: list[str] = (), campaign_ids: list[str] = ()) -> None:
    """Fast-forward the id counters past every restored id."""
    for ident in job_ids:
        _job_ids.advance_past(_id_suffix(ident))
    for ident in campaign_ids:
        _campaign_ids.advance_past(_id_suffix(ident))


@dataclass
class SubmittedJob:
    """One spec in flight through the service, plus request metadata."""

    spec: JobSpec
    tenant: str = "default"
    priority: int = 0
    campaign_id: str = ""
    campaign: str = ""
    submitted_at: float = field(default_factory=time.time)
    job_id: str = field(default_factory=lambda: f"j-{_job_ids.next():06d}")
    seq: int = 0  # FIFO tiebreak within (tenant, priority)

    status: str = STATUS_QUEUED
    from_cache: bool = False
    coalesced_with: str | None = None  # primary job_id running our spec
    metrics: dict | None = None
    failure: dict | None = None
    elapsed_s: float = 0.0
    attempts: int = 0
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def key(self) -> str:
        return self.spec.key()

    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def as_dict(self, *, with_spec: bool = True) -> dict:
        data = {
            "id": self.job_id,
            "key": self.key,
            "label": self.spec.label,
            "tenant": self.tenant,
            "priority": self.priority,
            "campaign_id": self.campaign_id,
            "campaign": self.campaign,
            "submitted_at": self.submitted_at,
            "status": self.status,
            "from_cache": self.from_cache,
            "coalesced_with": self.coalesced_with,
            "metrics": self.metrics,
            "failure": self.failure,
            "elapsed_s": self.elapsed_s,
            "attempts": self.attempts,
        }
        if with_spec:
            data["spec"] = self.spec.to_dict()
        return data


@dataclass
class CampaignState:
    """Server-side bookkeeping for one submitted campaign."""

    name: str
    tenant: str = "default"
    priority: int = 0
    campaign_id: str = field(
        default_factory=lambda: f"c-{_campaign_ids.next():04d}"
    )
    created_at: float = field(default_factory=time.time)
    jobs: list[SubmittedJob] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    cancelled: bool = False

    def counts(self) -> dict[str, int]:
        out = {
            STATUS_QUEUED: 0,
            STATUS_RUNNING: 0,
            STATUS_OK: 0,
            STATUS_FAILED: 0,
            STATUS_CACHED: 0,
            STATUS_CANCELLED: 0,
        }
        for job in self.jobs:
            out[job.status] += 1
        return out

    @property
    def done(self) -> bool:
        return all(job.done for job in self.jobs)

    @property
    def status(self) -> str:
        if self.cancelled:
            return "cancelled"
        if not self.done:
            return "running"
        if any(job.status == STATUS_FAILED for job in self.jobs):
            return "failed"
        return "done"

    def as_dict(self) -> dict:
        return {
            "id": self.campaign_id,
            "name": self.name,
            "tenant": self.tenant,
            "priority": self.priority,
            "created_at": self.created_at,
            "status": self.status,
            "jobs": len(self.jobs),
            "counts": self.counts(),
        }
