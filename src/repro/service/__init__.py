"""Simulation-as-a-service: the async job server over the orchestrator.

The service wraps the existing JobSpec / worker / ResultStore machinery
behind a small REST API so long-running, multi-tenant campaign traffic
gets submission, status, streaming, cancellation and resume without
one-shot ``repro batch`` invocations:

* :mod:`.model` -- submission envelopes (:class:`SubmittedJob`,
  :class:`CampaignState`).  Service-only metadata (tenant, priority,
  submitted_at) lives **here**, never on :class:`JobSpec`, so content
  keys -- and therefore every existing result store -- stay stable.
* :mod:`.scheduler` -- :class:`FairScheduler`: per-tenant round-robin
  with in-flight caps and token-bucket rate limits, priority ordering
  within a tenant.  A million-job tenant cannot starve others.
* :mod:`.state` -- :class:`ServiceState`: dedup against the result
  store (warm-cache hits never execute), in-flight coalescing of
  identical specs across campaigns/tenants, per-campaign event logs.
* :mod:`.journal` -- :class:`CampaignJournal`: the durable write-ahead
  journal that lets ``repro serve --resume`` rebuild queued/in-flight
  work after a crash (results themselves live in the store).
* :mod:`.server` -- the asyncio HTTP server (stdlib only) exposing the
  REST + JSONL-streaming API, and :class:`ServiceThread` for embedding
  a live server in tests and benchmarks.
* :mod:`.chaos` -- the scripted kill-and-resume chaos harness behind
  ``repro chaos-serve`` and the service chaos integration tests.

The typed fluent client lives in :mod:`repro.client`.
"""

from repro.service.journal import CampaignJournal, default_journal_path
from repro.service.model import (
    CampaignState,
    SubmittedJob,
    TERMINAL_STATUSES,
)
from repro.service.scheduler import FairScheduler, TenantQuota
from repro.service.server import ServiceConfig, ServiceThread, run_service
from repro.service.state import ServiceState

__all__ = [
    "CampaignJournal",
    "CampaignState",
    "FairScheduler",
    "ServiceConfig",
    "ServiceState",
    "ServiceThread",
    "SubmittedJob",
    "TenantQuota",
    "TERMINAL_STATUSES",
    "default_journal_path",
    "run_service",
]
