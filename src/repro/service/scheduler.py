"""Fair multi-tenant job scheduling: priority without starvation.

Policy, in order:

* **Across tenants: round-robin.**  Each :meth:`FairScheduler.acquire`
  serves the least-recently-served tenant that has a runnable job, so a
  tenant with a million queued jobs gets exactly one turn per rotation
  -- it cannot starve a tenant with three jobs.
* **Per tenant: quotas.**  A :class:`TenantQuota` caps in-flight jobs
  (``max_inflight``) and submission-to-execution rate (token bucket:
  ``rate`` jobs/second refill up to ``burst``).  A tenant at its cap or
  out of tokens is skipped; :meth:`FairScheduler.next_ready_in` tells
  the server's pump how long until a token frees up.
* **Within a tenant: priority.**  Higher ``priority`` first, then FIFO
  (submission ``seq``) -- so one tenant's urgent campaign overtakes its
  own backlog but nobody else's.

The scheduler is plain synchronous data (heaps + a rotation deque);
the asyncio server drives it from one task, and the unit tests drive
it directly with a fake clock.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass

from repro.service.model import SubmittedJob


@dataclass(frozen=True)
class TenantQuota:
    """Execution limits for one tenant.

    Attributes:
        max_inflight: concurrent running jobs; None = unlimited.
        rate: token-bucket refill in jobs/second; None = unlimited.
        burst: bucket capacity (ignored without ``rate``).
    """

    max_inflight: int | None = None
    rate: float | None = None
    burst: int = 1


class _TenantLane:
    def __init__(self, quota: TenantQuota, now: float) -> None:
        self.quota = quota
        self.heap: list[tuple[int, int, SubmittedJob]] = []
        self.inflight = 0
        self.tokens = float(quota.burst if quota.rate else 1)
        self.refilled_at = now

    def push(self, job: SubmittedJob) -> None:
        heapq.heappush(self.heap, (-job.priority, job.seq, job))

    def refill(self, now: float) -> None:
        if self.quota.rate is None:
            return
        self.tokens = min(
            float(self.quota.burst),
            self.tokens + (now - self.refilled_at) * self.quota.rate,
        )
        self.refilled_at = now

    def gate(self, now: float) -> str | None:
        """Why this lane cannot run a job right now (None = it can)."""
        if not self.heap:
            return "empty"
        if (
            self.quota.max_inflight is not None
            and self.inflight >= self.quota.max_inflight
        ):
            return "inflight"
        self.refill(now)
        if self.quota.rate is not None and self.tokens < 1.0:
            return "rate"
        return None

    def seconds_until_token(self, now: float) -> float:
        self.refill(now)
        if self.quota.rate is None or self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.quota.rate


class FairScheduler:
    """Round-robin across tenants, quota-gated, priority within each."""

    def __init__(
        self,
        *,
        default_quota: TenantQuota | None = None,
        quotas: dict[str, TenantQuota] | None = None,
    ) -> None:
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self._lanes: dict[str, _TenantLane] = {}
        self._rotation: deque[str] = deque()
        self._seq = 0

    def _lane(self, tenant: str, now: float) -> _TenantLane:
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = _TenantLane(
                self.quotas.get(tenant, self.default_quota), now
            )
            self._lanes[tenant] = lane
        return lane

    def add(self, job: SubmittedJob, now: float | None = None) -> None:
        now = time.monotonic() if now is None else now
        job.seq = self._seq = self._seq + 1
        lane = self._lane(job.tenant, now)
        if not lane.heap and job.tenant not in self._rotation:
            self._rotation.append(job.tenant)
        lane.push(job)

    def pending(self) -> int:
        return sum(len(lane.heap) for lane in self._lanes.values())

    def inflight(self) -> int:
        return sum(lane.inflight for lane in self._lanes.values())

    def acquire(self, now: float | None = None) -> SubmittedJob | None:
        """Next runnable job under the fairness policy, or None.

        The successful tenant moves to the back of the rotation; gated
        tenants keep their turn order.
        """
        now = time.monotonic() if now is None else now
        for _ in range(len(self._rotation)):
            tenant = self._rotation[0]
            lane = self._lanes[tenant]
            if not lane.heap:
                # Lane drained since it was queued; retire its slot.
                self._rotation.popleft()
                continue
            if lane.gate(now) is not None:
                self._rotation.rotate(-1)
                continue
            self._rotation.rotate(-1)
            _, _, job = heapq.heappop(lane.heap)
            lane.inflight += 1
            if lane.quota.rate is not None:
                lane.tokens -= 1.0
            return job
        return None

    def release(self, tenant: str) -> None:
        """A job of this tenant finished; frees an in-flight slot."""
        lane = self._lanes.get(tenant)
        if lane is not None and lane.inflight > 0:
            lane.inflight -= 1

    def next_ready_in(self, now: float | None = None) -> float | None:
        """Seconds until a rate-gated lane could run, None if nothing
        is waiting on a token (either no pending work, or the gates are
        in-flight caps which clear via :meth:`release`)."""
        now = time.monotonic() if now is None else now
        waits = []
        for lane in self._lanes.values():
            if lane.gate(now) == "rate":
                waits.append(lane.seconds_until_token(now))
        return min(waits) if waits else None

    def drop(self, predicate) -> list[SubmittedJob]:
        """Remove queued jobs matching ``predicate(job)`` (cancellation).

        Running jobs are untouched -- the service lets them finish and
        records their results (they are useful cache entries anyway).
        """
        dropped: list[SubmittedJob] = []
        for lane in self._lanes.values():
            keep, gone = [], []
            for item in lane.heap:
                (gone if predicate(item[2]) else keep).append(item)
            if gone:
                lane.heap = keep
                heapq.heapify(lane.heap)
                dropped.extend(item[2] for item in gone)
        return dropped
