"""The asyncio HTTP job server (stdlib only).

A deliberately small HTTP/1.1 implementation over ``asyncio.start_server``
-- request line + headers + Content-Length body in, JSON out, one
request per connection (``Connection: close``) so streaming responses
can simply write JSONL until EOF.  No external web framework: the
container bakes in only the standard toolchain, and the API surface is
a dozen routes.

REST surface (see docs/SERVICE.md for the full contract)::

    GET  /health                        liveness + version
    GET  /api/store                     backend stats, dedup counters
    POST /api/campaigns                 submit a campaign document/specs
    GET  /api/campaigns                 list campaigns
    GET  /api/campaigns/<id>            status + counts
    GET  /api/campaigns/<id>/jobs       job summaries (filterable)
    GET  /api/campaigns/<id>/results    JSONL: one record per job
    GET  /api/campaigns/<id>/stream     JSONL: live completion events
    POST /api/campaigns/<id>/cancel     cancel queued work
    POST /api/jobs                      submit one spec
    GET  /api/jobs                      query jobs across campaigns
    GET  /api/jobs/<id>                 one job, with spec + metrics

Execution rides :func:`repro.orchestrate.runner.execute_job` in a
process pool (thread pool or inline for tests), gated by the
:class:`~repro.service.scheduler.FairScheduler` so the pool only ever
holds jobs fairness already admitted.  Results are bit-identical to
``repro batch`` because both paths run the same ``execute_job`` on the
same specs.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import multiprocessing
import threading
import time
import urllib.parse

from repro.errors import ConfigError
from repro.observe.logbook import get_logger
from repro.orchestrate.campaign import parse_campaign
from repro.orchestrate.pool import (
    FAILURE_CRASH,
    FAILURE_EXCEPTION,
    FAILURE_TIMEOUT,
)
from repro.orchestrate.runner import execute_job
from repro.orchestrate.spec import JobSpec
from repro.orchestrate.store import BaseResultStore, open_store
from repro.service.journal import CampaignJournal, default_journal_path
from repro.service.model import CampaignState
from repro.service.scheduler import FairScheduler, TenantQuota
from repro.service.state import ServiceState

logger = get_logger("service")

API_VERSION = 1
MAX_BODY_BYTES = 256 << 20  # campaign documents can be large; specs are not
MAX_HEADER_BYTES = 64 << 10
TENANT_HEADER = "x-repro-tenant"


class ServiceConfig:
    """Server wiring: where to listen, how to execute, how to fair-share."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8642,
        store: str | BaseResultStore = "sqlite:repro-store",
        workers: int = 2,
        executor: str = "process",
        max_inflight_per_tenant: int | None = None,
        rate: float | None = None,
        burst: int = 4,
        journal: str | bool | None = None,
        resume: bool = False,
        job_timeout_s: float | None = None,
        retries: int = 1,
        drain_timeout_s: float = 30.0,
    ) -> None:
        if executor not in ("process", "thread"):
            raise ConfigError(
                f"executor must be 'process' or 'thread', got {executor!r}"
            )
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.store = store
        self.workers = workers
        self.executor = executor
        # journal: None = derive a path beside the store, a string names
        # the path explicitly, False disables durability entirely.
        self.journal = journal
        self.resume = resume
        self.job_timeout_s = job_timeout_s
        self.retries = retries
        self.drain_timeout_s = drain_timeout_s
        self.quota = TenantQuota(
            max_inflight=max_inflight_per_tenant, rate=rate, burst=burst
        )


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error"}


class JobServer:
    """One service instance: HTTP front, scheduler pump, executor."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        store = config.store
        if not isinstance(store, BaseResultStore):
            store = open_store(store)
        journal = None
        if config.journal is not False:
            if config.journal in (None, True):
                journal = CampaignJournal(default_journal_path(store))
            else:
                journal = CampaignJournal(config.journal)
        self.state = ServiceState(
            store, FairScheduler(default_quota=config.quota),
            journal=journal,
        )
        self._server: asyncio.AbstractServer | None = None
        self._pump_task: asyncio.Task | None = None
        self._running = 0
        self._executor: concurrent.futures.Executor | None = None
        self._executor_generation = 0
        self._job_tasks: set[asyncio.Task] = set()
        # Worker-death re-admissions per job, *this server life* only.
        # job.attempts counts every execution start across restarts (it
        # is journaled), so it cannot double as the crash-retry budget:
        # a job that happened to be running at each of N server crashes
        # would arrive with attempts=N and get no retry at its first
        # real worker death.
        self._crash_requeues: dict[str, int] = {}
        self._stopping = False

    # -- lifecycle ------------------------------------------------------

    def _make_executor(self) -> None:
        if self.config.executor == "process":
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.config.workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        else:
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="repro-job",
            )

    def _rebuild_executor(self, generation: int, *, reason: str) -> None:
        """Replace a broken/wedged executor with a fresh one.

        Worker death poisons a ``ProcessPoolExecutor`` for every future
        on it, and a timed-out job leaves a zombie worker computing a
        result nobody wants; both recover by killing the old pool and
        starting clean.  The generation counter makes concurrent failure
        paths rebuild exactly once: a job task that observed generation
        N only rebuilds if no other task already has.
        """
        if generation != self._executor_generation or self._stopping:
            return
        self._executor_generation += 1
        old = self._executor
        self._make_executor()
        logger.warning("rebuilding %s executor (generation %d): %s",
                       self.config.executor, self._executor_generation,
                       reason)
        if old is None:
            return
        # Kill lingering worker processes first (shutdown alone would
        # wait on — or leak — a worker stuck mid-job).  Thread executors
        # have no _processes and threads cannot be killed; their zombie
        # finishes in the background and the result is discarded.
        for proc in list(getattr(old, "_processes", {}).values()):
            try:
                proc.kill()
            except (OSError, AttributeError):  # pragma: no cover
                pass
        old.shutdown(wait=False, cancel_futures=True)

    async def start(self) -> None:
        self._make_executor()
        if self.config.resume:
            self.state.restore()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._pump_task = asyncio.ensure_future(self._pump())
        logger.info("service listening on %s:%d (workers=%d, %s executor, "
                    "store=%s)", self.config.host, self.port,
                    self.config.workers, self.config.executor,
                    self.state.store.describe()["path"])

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def stop(self, *, drain: bool | None = None) -> None:
        """Shut down; by default *drain* first (finish running jobs).

        Graceful drain: stop accepting connections and admitting queued
        work, then wait up to ``drain_timeout_s`` for in-flight jobs to
        finish and record.  Queued jobs need no special handling -- they
        were journaled at submission and a ``--resume`` restart picks
        them up.  ``drain=False`` (or a zero timeout) is the old abrupt
        path for tests that simulate a crash.
        """
        if drain is None:
            drain = self.config.drain_timeout_s > 0
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
        drained = True
        if self._job_tasks:
            if drain:
                running = [t for t in self._job_tasks if not t.done()]
                if running:
                    logger.info("draining %d running job(s) (up to %gs)",
                                len(running), self.config.drain_timeout_s)
                    done, pending = await asyncio.wait(
                        running, timeout=self.config.drain_timeout_s
                    )
                    drained = not pending
                    for task in pending:
                        task.cancel()
            else:
                drained = False
                for task in self._job_tasks:
                    task.cancel()
        if self.state.journal is not None:
            self.state.journal.append(
                {"op": "drain", "pending": self.state.scheduler.pending()}
            )
        if self._executor is not None:
            # After a clean drain the workers are idle and exit promptly;
            # otherwise don't wait on wedged/zombie workers.
            self._executor.shutdown(wait=drained, cancel_futures=True)
        self.state.store.close()

    # -- execution pump -------------------------------------------------

    async def _pump(self) -> None:
        """Feed admitted jobs to the executor, one slot per worker.

        The scheduler -- not the executor queue -- holds the backlog, so
        fairness and priority apply at the moment a worker frees up, not
        at submission time.
        """
        loop = asyncio.get_running_loop()
        while True:
            self.state.work_available.clear()
            job = None
            if self._running < self.config.workers:
                job = self.state.scheduler.acquire()
            if job is None:
                delay = self.state.scheduler.next_ready_in()
                try:
                    await asyncio.wait_for(
                        self.state.work_available.wait(), timeout=delay
                    )
                except asyncio.TimeoutError:
                    pass
                continue
            self.state.mark_running(job)
            self._running += 1
            # Strong reference until done: the loop itself only weakly
            # references tasks, and a collected job task strands its
            # scheduler slot forever.
            task = loop.create_task(self._run_job(job))
            self._job_tasks.add(task)
            task.add_done_callback(self._job_tasks.discard)

    async def _run_job(self, job) -> None:
        """Execute one admitted job, surviving worker death and timeouts.

        * A worker process dying mid-job (``BrokenExecutor``) rebuilds
          the pool and re-admits the job, up to ``config.retries``
          worker-death requeues per job -- parity with the crash-retry
          budget in :mod:`repro.orchestrate.pool`, which the service
          path previously bypassed.  The budget counts *crashes*, not
          ``job.attempts``: attempts also grow across server-restart
          resumes, which must not eat into it.
        * A job exceeding ``config.job_timeout_s`` records a ``timeout``
          failure and the pool is rebuilt so its zombie worker dies too.
        """
        loop = asyncio.get_running_loop()
        generation = self._executor_generation
        start = time.perf_counter()
        timeout = self.config.job_timeout_s
        try:
            future = loop.run_in_executor(
                self._executor, execute_job, job.spec
            )
            if timeout is not None:
                metrics = await asyncio.wait_for(future, timeout=timeout)
            else:
                metrics = await future
            failure = None
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            raise
        except asyncio.TimeoutError as exc:
            metrics = None
            if timeout is None:
                # Not wait_for: the job itself raised a TimeoutError.
                failure = {
                    "kind": FAILURE_EXCEPTION,
                    "message": f"{type(exc).__name__}: {exc}",
                }
            else:
                self._rebuild_executor(
                    generation,
                    reason=f"job {job.job_id} exceeded {timeout:g}s timeout",
                )
                failure = {
                    "kind": FAILURE_TIMEOUT,
                    "message": f"exceeded per-job timeout of {timeout:g}s",
                }
        except concurrent.futures.BrokenExecutor as exc:
            # Worker process died under the job (OOM kill, segfault,
            # SIGKILL).  Rebuild the poisoned pool, then either re-admit
            # the orphan (bounded budget) or record an honest crash.
            self._rebuild_executor(
                generation, reason=f"worker death under {job.job_id}: {exc}"
            )
            self._running -= 1
            if self._stopping:
                return
            crashes = self._crash_requeues.get(job.job_id, 0) + 1
            if crashes <= self.config.retries:
                self._crash_requeues[job.job_id] = crashes
                logger.warning(
                    "re-admitting %s after worker death "
                    "(crash %d/%d, attempt %d)",
                    job.job_id, crashes, self.config.retries,
                    job.attempts,
                )
                self.state.requeue(
                    job, reason=f"worker died: {type(exc).__name__}"
                )
                return
            self.state.finish(
                job,
                metrics=None,
                failure={
                    "kind": FAILURE_CRASH,
                    "message": (
                        f"worker died ({type(exc).__name__}: {exc}) "
                        f"after {job.attempts} attempt(s)"
                    ),
                },
                elapsed_s=time.perf_counter() - start,
            )
            return
        except BaseException as exc:
            metrics = None
            failure = {
                "kind": FAILURE_EXCEPTION,
                "message": f"{type(exc).__name__}: {exc}",
            }
        elapsed = time.perf_counter() - start
        self._running -= 1
        self._crash_requeues.pop(job.job_id, None)
        self.state.finish(
            job, metrics=metrics, failure=failure, elapsed_s=elapsed
        )

    # -- HTTP plumbing --------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                method, path, query, headers, body = await _read_request(
                    reader
                )
            except _HttpError as exc:
                await _send_json(
                    writer, {"error": str(exc)}, status=exc.status
                )
                return
            try:
                await self._route(
                    method, path, query, headers, body, writer
                )
            except _HttpError as exc:
                await _send_json(
                    writer, {"error": str(exc)}, status=exc.status
                )
            except ConfigError as exc:
                await _send_json(writer, {"error": str(exc)}, status=400)
            except Exception as exc:  # pragma: no cover - defensive
                logger.error("internal error handling %s %s: %s",
                             method, path, exc)
                await _send_json(
                    writer, {"error": f"internal error: {exc}"}, status=500
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _route(
        self, method, path, query, headers, body, writer
    ) -> None:
        parts = [p for p in path.split("/") if p]
        if path == "/health" and method == "GET":
            await _send_json(writer, {
                "status": "ok",
                "api_version": API_VERSION,
                "uptime_s": round(time.time() - self.state.started_at, 3),
            })
            return
        if path == "/api/store" and method == "GET":
            await _send_json(writer, self.state.describe())
            return
        if parts[:2] == ["api", "campaigns"]:
            await self._route_campaigns(
                method, parts[2:], query, headers, body, writer
            )
            return
        if parts[:2] == ["api", "jobs"]:
            await self._route_jobs(
                method, parts[2:], query, headers, body, writer
            )
            return
        raise _HttpError(404, f"no such route: {method} {path}")

    # -- campaign routes ------------------------------------------------

    async def _route_campaigns(
        self, method, rest, query, headers, body, writer
    ) -> None:
        if not rest:
            if method == "POST":
                campaign = self._submit(body or {}, headers)
                await _send_json(writer, campaign.as_dict())
            elif method == "GET":
                await _send_json(writer, {
                    "campaigns": [
                        c.as_dict() for c in self.state.campaigns.values()
                    ]
                })
            else:
                raise _HttpError(405, f"{method} not allowed here")
            return
        campaign = self.state.find_campaign(rest[0])
        if campaign is None:
            raise _HttpError(404, f"no such campaign: {rest[0]}")
        sub = rest[1] if len(rest) > 1 else None
        if sub is None and method == "GET":
            await _send_json(writer, campaign.as_dict())
        elif sub == "cancel" and method == "POST":
            cancelled = self.state.cancel_campaign(campaign)
            await _send_json(writer, {
                "id": campaign.campaign_id,
                "cancelled": cancelled,
                "status": campaign.status,
            })
        elif sub == "jobs" and method == "GET":
            jobs = self.state.list_jobs(
                campaign_id=campaign.campaign_id,
                status=query.get("status"),
            )
            await _send_json(writer, {
                "jobs": [j.as_dict(with_spec=False) for j in jobs]
            })
        elif sub == "results" and method == "GET":
            async def dump():
                for job in campaign.jobs:
                    yield job.as_dict()
            await _send_jsonl(writer, dump())
        elif sub == "stream" and method == "GET":
            try:
                since = int(query.get("since", 0) or 0)
            except ValueError:
                raise _HttpError(400, f"bad since cursor: {query['since']!r}")
            await _send_jsonl(
                writer, self.state.stream_events(campaign, since=since)
            )
        else:
            raise _HttpError(404, f"no such campaign route: {sub}")

    def _submit(self, body: dict, headers: dict) -> CampaignState:
        """Common submission path for documents and raw spec lists."""
        if not isinstance(body, dict):
            raise _HttpError(400, "submission body must be a JSON object")
        tenant = str(
            body.get("tenant")
            or headers.get(TENANT_HEADER)
            or "default"
        )
        priority = int(body.get("priority", 0))
        if "document" in body:
            name, specs = parse_campaign(body["document"])
        elif "specs" in body:
            specs = [JobSpec.from_dict(d) for d in body["specs"]]
            name = str(body.get("name", f"specs-{len(specs)}"))
        else:
            raise _HttpError(
                400, "submission needs 'document' (campaign) or 'specs'"
            )
        if not specs:
            raise _HttpError(400, "submission contains no jobs")
        campaign = self.state.submit(
            name, specs, tenant=tenant, priority=priority
        )
        logger.info(
            "campaign %s (%s): %d job(s) from tenant %s, %d cached, "
            "%d coalesced",
            campaign.campaign_id, name, len(specs), tenant,
            campaign.counts()["cached"],
            sum(1 for j in campaign.jobs if j.coalesced_with),
        )
        return campaign

    # -- job routes -----------------------------------------------------

    async def _route_jobs(
        self, method, rest, query, headers, body, writer
    ) -> None:
        if not rest:
            if method == "POST":
                body = body or {}
                if "spec" not in body:
                    raise _HttpError(400, "job submission needs 'spec'")
                spec = JobSpec.from_dict(body["spec"])
                campaign = self._submit(
                    {
                        "specs": [body["spec"]],
                        "name": body.get("name", spec.label or spec.key()),
                        "tenant": body.get("tenant"),
                        "priority": body.get("priority", 0),
                    },
                    headers,
                )
                await _send_json(
                    writer, campaign.jobs[0].as_dict(with_spec=False)
                )
            elif method == "GET":
                campaign_id = query.get("campaign")
                if campaign_id is not None:
                    found = self.state.find_campaign(campaign_id)
                    campaign_id = found.campaign_id if found else "<none>"
                jobs = self.state.list_jobs(
                    campaign_id=campaign_id,
                    tenant=query.get("tenant"),
                    status=query.get("status"),
                )
                await _send_json(writer, {
                    "jobs": [j.as_dict(with_spec=False) for j in jobs]
                })
            else:
                raise _HttpError(405, f"{method} not allowed here")
            return
        job = self.state.jobs.get(rest[0])
        if job is None or rest[1:]:
            raise _HttpError(404, f"no such job: {'/'.join(rest)}")
        if method != "GET":
            raise _HttpError(405, f"{method} not allowed here")
        await _send_json(writer, job.as_dict())


# -- wire helpers -------------------------------------------------------


async def _read_request(reader):
    """Parse one HTTP request: (method, path, query, headers, json_body)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError:
        raise _HttpError(413, "request head too large")
    except asyncio.IncompleteReadError:
        raise _HttpError(400, "truncated request")
    if len(head) > MAX_HEADER_BYTES:
        raise _HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise _HttpError(400, f"malformed request line: {lines[0]!r}")
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    parsed = urllib.parse.urlsplit(target)
    query = {
        k: v[0]
        for k, v in urllib.parse.parse_qs(parsed.query).items()
    }
    body = None
    length = int(headers.get("content-length", 0) or 0)
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"body of {length} bytes exceeds limit")
    if length:
        raw = await reader.readexactly(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}")
    return method.upper(), parsed.path, query, headers, body


def _head(status: int, content_type: str, extra: str = "") -> bytes:
    reason = _REASONS.get(status, "?")
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Connection: close\r\n{extra}\r\n"
    ).encode("latin-1")


async def _send_json(writer, obj, status: int = 200) -> None:
    payload = (json.dumps(obj) + "\n").encode()
    writer.write(
        _head(status, "application/json",
              f"Content-Length: {len(payload)}\r\n")
    )
    writer.write(payload)
    await writer.drain()


async def _send_jsonl(writer, events) -> None:
    """Stream an async iterator of dicts as JSON Lines until it ends.

    No Content-Length: the client reads lines until the connection
    closes, which is what makes live campaign streaming work over
    plain ``http.client``.
    """
    writer.write(_head(200, "application/jsonl"))
    await writer.drain()
    async for event in events:
        writer.write((json.dumps(event) + "\n").encode())
        await writer.drain()


# -- embedding and CLI entrypoints --------------------------------------


def run_service(config: ServiceConfig) -> None:
    """Run a server in the foreground until interrupted (``repro serve``).

    SIGTERM/SIGINT trigger a *graceful drain*: stop accepting, let
    running jobs finish and record (bounded by ``drain_timeout_s``),
    journal the rest for a later ``--resume``.  A second signal -- or a
    SIGKILL -- is the crash case the journal exists for.
    """
    import signal

    async def main() -> None:
        server = JobServer(config)
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-POSIX loop; KeyboardInterrupt still works
        try:
            await stop.wait()
            logger.info("signal received; draining")
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    logger.info("service stopped")


class ServiceThread:
    """A live server on a background thread, for tests and benchmarks.

    ::

        with ServiceThread(ServiceConfig(port=0, executor="thread")) as url:
            Session(url).submit_campaign(...)
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.server: JobServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._drain: bool | None = None

    def start(self) -> str:
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):  # pragma: no cover
            raise RuntimeError("service thread failed to start in 30s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error}"
            )
        assert self.server is not None
        return self.server.url

    def _main(self) -> None:
        async def body() -> None:
            self.server = JobServer(self.config)
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self._stop.wait()
            await self.server.stop(drain=self._drain)

        asyncio.run(body())

    def stop(self, *, drain: bool | None = None) -> None:
        """Stop the server; ``drain=False`` simulates an unclean death
        (running jobs abandoned, queued work left to the journal)."""
        self._drain = drain
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout=30)

    @property
    def url(self) -> str:
        assert self.server is not None
        return self.server.url

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
