"""Scripted kill-and-resume chaos harness for the job service.

The network layer proves its delivery guarantee under injected link
faults (``repro chaos``); this module applies the same discipline to
the *orchestration* tier.  :func:`run_chaos_scenario` drives a real
``repro serve`` subprocess through a scripted crash schedule:

1. submit a campaign, then **SIGKILL the server mid-queue** (work
   accepted but mostly unexecuted);
2. restart with ``--resume``, wait for execution to begin, then
   **SIGKILL mid-execution** (jobs running, some possibly mid-record);
3. restart with ``--resume`` again and **SIGKILL one worker process
   mid-job** (exercising executor-rebuild + bounded re-admission);
4. let the campaign finish, then **SIGTERM** for a graceful drain.

Throughout, a single client streams completion events with the
``?since=`` reconnect cursor across every restart.  The scenario then
asserts the service-tier analogue of "delivered or reported, never
silent":

* every job resolves exactly once (no lost work, no duplicate events);
* the result store holds exactly one record per spec key (no double
  executions -- re-admitted work that already recorded resolves from
  cache);
* final metrics are bit-identical to a serial ``run_jobs`` of the same
  specs.

Used by ``repro chaos-serve`` (dev command + CI chaos smoke) and
``tests/integration/test_service_chaos.py``.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.errors import ConfigError
from repro.observe.logbook import get_logger
from repro.orchestrate.campaign import parse_campaign
from repro.orchestrate.pool import run_jobs
from repro.orchestrate.store import ResultStore

logger = get_logger("service")


class ChaosFailure(AssertionError):
    """A chaos invariant did not hold."""


def chaos_campaign_doc(
    *, jobs: int = 8, duration: int = 10_000, load: float = 0.3
) -> dict:
    """A campaign sized so kills land mid-queue and mid-execution.

    The defaults give ~0.5-1s per job: long enough that SIGKILLs land
    while work is genuinely queued/running, short enough for CI.
    """
    return {
        "name": "chaos-serve",
        "defaults": {
            "topology": "mesh",
            "dims": "4x4",
            "max_cycles": 60_000,
            "workload": {"kind": "uniform", "load": load,
                         "length": 16, "duration": duration},
        },
        "grid": {"seed": list(range(jobs))},
    }


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def child_pids(pid: int) -> list[int]:
    """Direct children of a process (Linux /proc; no psutil in the image)."""
    kids: list[int] = []
    task_dir = Path(f"/proc/{pid}/task")
    try:
        for task in task_dir.iterdir():
            children = task / "children"
            try:
                kids.extend(
                    int(c) for c in children.read_text().split()
                )
            except (OSError, ValueError):  # pragma: no cover
                continue
    except OSError:
        pass
    return sorted(set(kids))


class ServerProcess:
    """One ``repro serve`` subprocess the harness can kill and restart."""

    def __init__(self, *, port: int, store: Path, journal: Path,
                 workdir: Path, workers: int = 2, retries: int = 2,
                 resume: bool = False, log_name: str = "serve.log") -> None:
        self.port = port
        self.url = f"http://127.0.0.1:{port}"
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--store", str(store),
            "--journal", str(journal),
            "--workers", str(workers),
            "--retries", str(retries),
        ]
        if resume:
            argv.append("--resume")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        self._log = (workdir / log_name).open("ab")
        self.proc = subprocess.Popen(
            argv, stdout=self._log, stderr=subprocess.STDOUT, env=env,
            cwd=workdir,
        )

    def wait_healthy(self, timeout_s: float = 30.0) -> None:
        from repro.client import Session

        deadline = time.monotonic() + timeout_s
        session = Session(self.url, retries=0)
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise ChaosFailure(
                    f"server exited with {self.proc.returncode} before "
                    f"becoming healthy"
                )
            try:
                session.health()
                return
            except Exception:
                time.sleep(0.05)
        raise ChaosFailure(f"server not healthy within {timeout_s:g}s")

    def sigkill(self) -> None:
        # Pool workers are forked children: they survive their parent's
        # SIGKILL and keep holding the inherited listening socket, which
        # would block the restarted server's bind().  A real crash takes
        # the whole tree down, so emulate that faithfully.
        orphans = child_pids(self.proc.pid)
        self.proc.kill()
        self.proc.wait(timeout=10)
        for pid in orphans:
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:  # pragma: no cover - already gone
                pass
        self._log.close()

    def sigterm(self, timeout_s: float = 30.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        code = self.proc.wait(timeout=timeout_s)
        self._log.close()
        return code

    def kill_one_worker(self) -> int | None:
        """SIGKILL one executor worker process; returns its pid."""
        for pid in child_pids(self.proc.pid):
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:  # pragma: no cover - worker exited first
                continue
            return pid
        return None


def _wait_port_free(port: int, timeout_s: float = 15.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        with socket.socket() as sock:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                sock.bind(("127.0.0.1", port))
                return
            except OSError:
                time.sleep(0.05)
    raise ChaosFailure(f"port {port} still bound {timeout_s:g}s after kill")


def _canonical(metrics: dict | None) -> str:
    return json.dumps(metrics, sort_keys=True)


def run_chaos_scenario(
    workdir,
    *,
    jobs: int = 8,
    duration: int = 10_000,
    port: int | None = None,
    kill_worker: bool = True,
    timeout_s: float = 180.0,
) -> dict:
    """Run the scripted kill-and-resume scenario; returns a report dict.

    Raises :class:`ChaosFailure` if any exactly-once / bit-identity
    invariant does not hold.
    """
    from repro.client import Session

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    port = port or free_port()
    store_path = workdir / "chaos-results.jsonl"
    journal_path = workdir / "chaos-journal.jsonl"
    doc = chaos_campaign_doc(jobs=jobs, duration=duration)
    _, specs = parse_campaign(doc)

    # Ground truth: the same specs through the serial orchestrator path.
    serial_store = ResultStore(workdir / "serial-results.jsonl")
    serial = {
        spec.key(): outcome.metrics
        for spec, outcome in zip(
            specs, run_jobs(specs, jobs=1, store=serial_store)
        )
    }

    report: dict = {"jobs": len(specs), "phases": [], "port": port}

    def server(resume: bool, log_name: str) -> ServerProcess:
        _wait_port_free(port)
        srv = ServerProcess(
            port=port, store=store_path, journal=journal_path,
            workdir=workdir, resume=resume, log_name=log_name,
        )
        srv.wait_healthy()
        return srv

    def wait_for(session: Session, campaign_id: str, predicate,
                 what: str, deadline: float) -> dict:
        while time.monotonic() < deadline:
            counts = session.get_campaign(campaign_id).data["counts"]
            if predicate(counts):
                return counts
            time.sleep(0.05)
        raise ChaosFailure(f"timed out waiting for {what}")

    deadline = time.monotonic() + timeout_s
    session = Session(f"http://127.0.0.1:{port}", tenant="chaos")

    # -- phase 1: submit, then kill mid-queue ---------------------------
    srv = server(resume=False, log_name="serve-1.log")
    campaign = session.submit_campaign(doc)
    cid = campaign.id
    srv.sigkill()
    report["phases"].append({"phase": "kill-mid-queue", "campaign": cid})

    # -- phase 2: resume; kill again once execution is underway ---------
    srv = server(resume=True, log_name="serve-2.log")
    # One logical stream across every remaining restart: the collector
    # rides the ?since= cursor and must see each job event exactly once.
    events: list = []
    stream_error: list[BaseException] = []

    def collect() -> None:
        try:
            for event in session.get_campaign(cid).stream():
                events.append(event)
        except BaseException as exc:  # surfaced by the main thread
            stream_error.append(exc)

    collector = threading.Thread(target=collect, daemon=True)
    collector.start()
    counts = wait_for(
        session, cid,
        lambda c: c["running"] + c["ok"] + c["cached"] > 0,
        "execution to begin after first resume", deadline,
    )
    srv.sigkill()
    report["phases"].append({"phase": "kill-mid-execution",
                             "counts_at_kill": counts})

    # -- phase 3: resume; kill one worker process mid-job ---------------
    srv = server(resume=True, log_name="serve-3.log")
    if kill_worker:
        wait_for(session, cid, lambda c: c["running"] > 0,
                 "a running job to target its worker", deadline)
        victim = srv.kill_one_worker()
        report["phases"].append({"phase": "kill-worker", "pid": victim})

    # -- completion -----------------------------------------------------
    collector.join(timeout=max(1.0, deadline - time.monotonic()))
    if collector.is_alive():
        raise ChaosFailure("event stream never reached a terminal event")
    if stream_error:
        raise ChaosFailure(
            f"client stream failed: {stream_error[0]!r}"
        ) from stream_error[0]

    final = session.get_campaign(cid).data
    graceful_exit = srv.sigterm()
    report["graceful_exit_code"] = graceful_exit

    # -- invariants -----------------------------------------------------
    job_events = [e for e in events if e.event == "job"]
    seqs = [e.seq for e in job_events]
    ids = [e.id for e in job_events]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise ChaosFailure(f"duplicate job events for {dupes}")
    if sorted(seqs) != list(range(len(specs))):
        raise ChaosFailure(
            f"event seq gap/duplicate: got {sorted(seqs)}"
        )
    if len(job_events) != len(specs):
        raise ChaosFailure(
            f"expected {len(specs)} job events, saw {len(job_events)}"
        )
    counts = final["counts"]
    if counts["ok"] + counts["cached"] != len(specs) or counts["failed"]:
        raise ChaosFailure(f"campaign did not fully succeed: {counts}")

    # Store: exactly one record per key (no lost, no double executions).
    lines_per_key: dict[str, int] = {}
    with store_path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn by a kill; invisible to dedup too
            lines_per_key[record["key"]] = (
                lines_per_key.get(record["key"], 0) + 1
            )
    if set(lines_per_key) != set(serial):
        raise ChaosFailure(
            f"store keys diverge from serial ground truth: "
            f"{set(lines_per_key) ^ set(serial)}"
        )
    doubles = {k: n for k, n in lines_per_key.items() if n != 1}
    if doubles:
        raise ChaosFailure(f"double-recorded executions: {doubles}")

    # Bit-identity with the serial path.
    final_store = ResultStore(store_path)
    for key, metrics in serial.items():
        got = final_store.get(key)
        if got is None or _canonical(got["metrics"]) != _canonical(metrics):
            raise ChaosFailure(f"metrics diverged from serial for {key}")

    report["events"] = len(job_events)
    report["counts"] = counts
    report["records"] = len(lines_per_key)
    report["ok"] = True
    logger.info(
        "chaos scenario ok: %d job(s) exactly once across 2 server kills"
        "%s, metrics bit-identical to serial",
        len(specs), " + 1 worker kill" if kill_worker else "",
    )
    return report


def cli_chaos_serve(args) -> int:
    """Back ``repro chaos-serve``: run the scenario, log the verdict."""
    import tempfile

    if args.workdir:
        workdir = Path(args.workdir)
    else:
        workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-serve-"))
    try:
        report = run_chaos_scenario(
            workdir,
            jobs=args.jobs,
            duration=args.duration,
            port=args.port,
            kill_worker=not args.no_worker_kill,
            timeout_s=args.timeout,
        )
    except ChaosFailure as exc:
        raise ConfigError(f"chaos scenario FAILED: {exc}")
    return 0 if report.get("ok") else 1
