"""Durable write-ahead journal for service campaign/job state.

The result store already makes *results* survive a server crash; this
journal makes the *work* survive.  Every submission, execution attempt,
requeue and terminal transition is appended as one JSON line **before**
the corresponding in-memory mutation becomes externally visible, so a
server restarted with ``repro serve --resume`` can rebuild exactly the
campaigns, job envelopes and per-campaign event logs that were live at
the moment of the crash and re-queue whatever had not finished.

Design points, mirroring the store's semantics
(:mod:`repro.orchestrate.store`):

* **Append-only JSONL, torn-tail tolerant.**  One ``write()`` per op;
  a line torn by a crash mid-append is skipped on load and the journal
  stays usable.  The op stream is self-describing (``op`` field), so
  unknown ops from a newer server version are ignored, not fatal.
* **Results never live here.**  A ``finish`` op records *that* a job
  resolved and how (status, attempts, elapsed, failure); the metrics
  payload is re-read from the result store on resume by content key.
  The journal therefore stays small and the store remains the single
  source of truth for simulation output.
* **Idempotent resume.**  A job whose execution recorded to the store
  but whose ``finish`` op was lost to the crash simply re-enters the
  submission gates on resume and resolves as ``cached`` -- content
  keys make re-admission safe, never a double execution.
* **Compaction on resume.**  After a successful replay the journal is
  atomically rewritten to its snapshot form (campaign / job / terminal
  finish ops only), so repeated crash/resume cycles cannot grow the
  file without bound.

Op vocabulary (all dicts carry ``"op"``)::

    campaign  {campaign_id, name, tenant, priority, created_at}
    cancel    {campaign_id}
    job       {job_id, campaign_id, spec, tenant, priority, submitted_at}
    run       {job_id, attempt}                      execution started
    requeue   {job_id, attempt, reason}              worker died; re-admitted
    finish    {job_id, status, from_cache, elapsed_s, attempts,
               failure, coalesced_with, finished_at} terminal transition
    drain     {pending}                              graceful shutdown marker
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.orchestrate.store import BaseResultStore

OP_CAMPAIGN = "campaign"
OP_CANCEL = "cancel"
OP_JOB = "job"
OP_RUN = "run"
OP_REQUEUE = "requeue"
OP_FINISH = "finish"
OP_DRAIN = "drain"


class CampaignJournal:
    """Append-only JSONL write-ahead journal with atomic compaction."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.appended = 0

    def append(self, op: dict) -> None:
        """Durably append one op (one line, flushed) before returning."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Like the JSONL store: one small O_APPEND write lands atomically
        # on POSIX, so concurrent appends interleave whole lines and a
        # crash can only tear the final line.
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(op) + "\n")
            fh.flush()
        self.appended += 1

    def load(self) -> list[dict]:
        """Every intact op in append order; torn/garbage lines skipped."""
        if not self.path.exists():
            return []
        ops: list[dict] = []
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    op = json.loads(line)
                except json.JSONDecodeError:
                    # Torn tail (crash mid-append) or interleaved write:
                    # every intact line is independent, skip and go on.
                    continue
                if isinstance(op, dict) and isinstance(op.get("op"), str):
                    ops.append(op)
        return ops

    def rewrite(self, ops: list[dict]) -> None:
        """Atomically replace the journal with a compacted op stream.

        Temp file + rename, exactly like the store's ``compact``: a
        crash mid-rewrite leaves the original journal intact.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".compact-tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            for op in ops:
                fh.write(json.dumps(op) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(self.path)

    def describe(self) -> dict:
        size = self.path.stat().st_size if self.path.exists() else 0
        return {"path": str(self.path), "bytes": size}


def default_journal_path(store: BaseResultStore) -> Path:
    """Where the journal lives when the operator names only a store.

    Sqlite stores are directories, so the journal joins ``index.db``
    at the root; a JSONL store gets a ``.journal`` sibling.
    """
    path = Path(store.describe()["path"])
    if store.describe()["backend"] == "sqlite":
        return path / "journal.jsonl"
    return path.with_name(path.name + ".journal")
