"""In-memory service state: dedup, coalescing, events, cancellation.

One :class:`ServiceState` instance lives on the server's event loop.
Submission resolves every spec through three gates, cheapest first:

1. **Store dedup** -- the spec's content key already has a successful
   record (from any tenant, any campaign, any prior run): the job
   resolves as ``cached`` instantly, no execution, no queueing.
2. **In-flight coalescing** -- the same key is already queued or
   running for someone else: the new job becomes a *follower* of that
   primary and resolves with the primary's result.  A thousand tenants
   submitting the same sweep costs one execution.
3. **Queue** -- genuinely new work enters the
   :class:`~repro.service.scheduler.FairScheduler`.

Completion records through the pluggable result store (so restarts
resume via gate 1) and appends a JSONL-able event to the owning
campaign's log; streams (`GET .../stream`) replay the log then wait on
the shared condition for more.

Durability: every mutation that must survive a crash (submission,
execution start, requeue after a worker death, terminal transition,
cancellation) is journaled through an attached
:class:`~repro.service.journal.CampaignJournal` *before* it becomes
externally visible; :meth:`ServiceState.restore` replays the journal on
``repro serve --resume`` so queued and in-flight work is re-queued and
terminal jobs reappear with their events in the original order (which
is what makes client ``?since=`` stream reconnects exactly-once across
a restart).
"""

from __future__ import annotations

import asyncio
import time

from repro.observe.export import observe_headline
from repro.observe.logbook import get_logger
from repro.orchestrate.spec import JobSpec
from repro.orchestrate.store import BaseResultStore
from repro.service.journal import (
    OP_CAMPAIGN,
    OP_CANCEL,
    OP_FINISH,
    OP_JOB,
    OP_REQUEUE,
    OP_RUN,
    CampaignJournal,
)
from repro.service.model import (
    STATUS_CACHED,
    STATUS_CANCELLED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_QUEUED,
    STATUS_RUNNING,
    CampaignState,
    SubmittedJob,
    advance_ids,
)
from repro.service.scheduler import FairScheduler

logger = get_logger("service")


class ServiceState:
    """Everything the HTTP layer and the executor pump share."""

    def __init__(
        self,
        store: BaseResultStore,
        scheduler: FairScheduler,
        *,
        journal: CampaignJournal | None = None,
    ) -> None:
        self.store = store
        self.scheduler = scheduler
        self.journal = journal
        self.campaigns: dict[str, CampaignState] = {}
        self.jobs: dict[str, SubmittedJob] = {}
        self._primaries: dict[str, SubmittedJob] = {}  # key -> in-flight
        self._followers: dict[str, list[SubmittedJob]] = {}
        self.started_at = time.time()
        # Pump wake-up (new work) and stream wake-up (new events).
        self.work_available = asyncio.Event()
        self.events_cond = asyncio.Condition()
        # Notify tasks ride the loop; the loop holds only weak refs to
        # tasks, so they are retained here until done or a GC pass could
        # collect one before it runs and strand a waiting stream.
        self._notify_tasks: set[asyncio.Task] = set()
        # Counters for /api/store and the dedup benchmark.
        self.executed = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.restored = 0  # jobs re-queued by the last restore()

    def _journal(self, op: dict) -> None:
        if self.journal is not None:
            self.journal.append(op)

    # -- submission -----------------------------------------------------

    def submit(
        self,
        name: str,
        specs: list[JobSpec],
        *,
        tenant: str = "default",
        priority: int = 0,
    ) -> CampaignState:
        """Register a campaign: resolve dedup, queue the remainder."""
        campaign = CampaignState(name=name, tenant=tenant, priority=priority)
        self.campaigns[campaign.campaign_id] = campaign
        self._journal({
            "op": OP_CAMPAIGN,
            "campaign_id": campaign.campaign_id,
            "name": name,
            "tenant": tenant,
            "priority": priority,
            "created_at": campaign.created_at,
        })
        for spec in specs:
            job = SubmittedJob(
                spec=spec,
                tenant=tenant,
                priority=priority,
                campaign_id=campaign.campaign_id,
                campaign=name,
            )
            campaign.jobs.append(job)
            self.jobs[job.job_id] = job
            self._journal({
                "op": OP_JOB,
                "job_id": job.job_id,
                "campaign_id": campaign.campaign_id,
                "spec": spec.to_dict(),
                "tenant": tenant,
                "priority": priority,
                "submitted_at": job.submitted_at,
            })
            self._admit(job)
        self.work_available.set()
        self._notify_streams()
        return campaign

    def _admit(self, job: SubmittedJob) -> None:
        """Run one job through the three submission gates."""
        key = job.key
        metrics = self.store.cached_metrics(key)
        if metrics is not None:
            job.status = STATUS_CACHED
            job.from_cache = True
            job.metrics = metrics
            job.finished_at = time.time()
            self.cache_hits += 1
            self._journal_finish(job)
            self._append_event(self.campaigns[job.campaign_id], job)
            return
        primary = self._primaries.get(key)
        if primary is not None:
            job.coalesced_with = primary.job_id
            self._followers.setdefault(key, []).append(job)
            self.coalesced += 1
            return
        self._primaries[key] = job
        self.scheduler.add(job)

    # -- execution lifecycle (driven by the server pump) ---------------

    def mark_running(self, job: SubmittedJob) -> None:
        job.status = STATUS_RUNNING
        job.started_at = time.time()
        job.attempts += 1
        self._journal({
            "op": OP_RUN, "job_id": job.job_id, "attempt": job.attempts,
        })

    def requeue(self, job: SubmittedJob, *, reason: str) -> None:
        """Re-admit a job whose worker died before producing a result.

        The in-flight slot is released, the attempt already charged by
        :meth:`mark_running` stays on the envelope (so the retry budget
        and the recorded ``attempts`` are honest), and the job re-enters
        the scheduler.
        """
        self.scheduler.release(job.tenant)
        job.status = STATUS_QUEUED
        job.started_at = None
        self._journal({
            "op": OP_REQUEUE,
            "job_id": job.job_id,
            "attempt": job.attempts,
            "reason": reason,
        })
        self.scheduler.add(job)
        self.work_available.set()
        self._notify_streams()

    def finish(
        self,
        job: SubmittedJob,
        *,
        metrics: dict | None,
        failure: dict | None,
        elapsed_s: float,
        attempts: int | None = None,
    ) -> None:
        """Resolve a primary job and every follower coalesced onto it."""
        job.status = STATUS_OK if failure is None else STATUS_FAILED
        job.metrics = metrics
        job.failure = failure
        job.elapsed_s = elapsed_s
        job.attempts = attempts if attempts is not None else (job.attempts or 1)
        job.finished_at = time.time()
        self.executed += 1
        self.scheduler.release(job.tenant)
        self.store.record(
            job.key,
            spec_dict=job.spec.to_dict(),
            status=job.status,
            metrics=metrics,
            failure=failure,
            elapsed_s=elapsed_s,
            attempts=job.attempts,
            campaign=job.campaign,
        )
        self._primaries.pop(job.key, None)
        self._journal_finish(job)
        self._append_event(self.campaigns[job.campaign_id], job)
        for follower in self._followers.pop(job.key, []):
            if follower.status == STATUS_CANCELLED:
                continue
            follower.status = job.status
            follower.metrics = metrics
            follower.failure = failure
            follower.from_cache = failure is None
            follower.finished_at = job.finished_at
            self._journal_finish(follower)
            self._append_event(
                self.campaigns[follower.campaign_id], follower
            )
        self.work_available.set()
        self._notify_streams()

    # -- cancellation ---------------------------------------------------

    def cancel_campaign(self, campaign: CampaignState) -> int:
        """Cancel queued work; running jobs finish (and cache) normally."""
        campaign.cancelled = True
        self._journal({"op": OP_CANCEL, "campaign_id": campaign.campaign_id})
        cid = campaign.campaign_id
        dropped = self.scheduler.drop(lambda j: j.campaign_id == cid)
        for job in dropped:
            self._primaries.pop(job.key, None)
            # The primary is gone: promote the first follower, if any.
            followers = self._followers.pop(job.key, [])
            live = [f for f in followers if f.status != STATUS_CANCELLED]
            if live:
                head, rest = live[0], live[1:]
                head.coalesced_with = None
                self._primaries[head.key] = head
                self.scheduler.add(head)
                if rest:
                    self._followers[head.key] = rest
                    for f in rest:
                        f.coalesced_with = head.job_id
        cancelled = list(dropped)
        dropped_ids = {job.job_id for job in dropped}
        for job in campaign.jobs:
            if job.status == STATUS_QUEUED and job.job_id not in dropped_ids:
                # Queued followers of another campaign's primary.
                cancelled.append(job)
        for job in cancelled:
            job.status = STATUS_CANCELLED
            job.finished_at = time.time()
            self._journal_finish(job)
            self._append_event(campaign, job)
        self._notify_streams()
        return len(cancelled)

    # -- events and queries ---------------------------------------------

    def _journal_finish(self, job: SubmittedJob) -> None:
        self._journal({
            "op": OP_FINISH,
            "job_id": job.job_id,
            "status": job.status,
            "from_cache": job.from_cache,
            "elapsed_s": job.elapsed_s,
            "attempts": job.attempts,
            "failure": job.failure,
            "coalesced_with": job.coalesced_with,
            "finished_at": job.finished_at,
        })

    def _append_event(self, campaign: CampaignState, job: SubmittedJob) -> None:
        event = {
            "event": "job",
            "seq": len(campaign.events),
            "id": job.job_id,
            "key": job.key,
            "label": job.spec.label,
            "status": job.status,
            "from_cache": job.from_cache,
            "elapsed_s": job.elapsed_s,
            "metrics": job.metrics,
            "failure": job.failure,
        }
        observe = (job.metrics or {}).get("observe")
        if observe:
            event["observe"] = observe_headline(observe)
        campaign.events.append(event)

    def _notify_streams(self) -> None:
        async def notify() -> None:
            async with self.events_cond:
                self.events_cond.notify_all()

        # Mutators stay synchronous (no await mid-bookkeeping); the
        # notify rides the loop as its own task.  Without a running
        # loop (direct unit-test use) there are no streams to wake.
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return
        task = loop.create_task(notify())
        self._notify_tasks.add(task)
        task.add_done_callback(self._notify_tasks.discard)

    async def stream_events(self, campaign: CampaignState, since: int = 0):
        """Yield the campaign's events: replay from ``since``, then live.

        ``since`` is the reconnect cursor: a client that saw events
        ``0..n-1`` before losing its connection asks for ``since=n`` and
        receives each remaining event exactly once.
        """
        cursor = max(0, since)
        while True:
            while cursor < len(campaign.events):
                yield campaign.events[cursor]
                cursor += 1
            if campaign.done:
                yield {
                    "event": "end",
                    "status": campaign.status,
                    "counts": campaign.counts(),
                }
                return
            async with self.events_cond:
                # Re-check under the condition: an event appended since
                # the unlocked check must not strand this stream.
                if cursor >= len(campaign.events) and not campaign.done:
                    await self.events_cond.wait()

    def find_campaign(self, ident: str) -> CampaignState | None:
        got = self.campaigns.get(ident)
        if got is not None:
            return got
        # By name: the *newest* match wins (dict preserves insertion ==
        # creation order), so resubmitting under a reused name never
        # pins queries to a stale campaign.
        found = None
        for campaign in self.campaigns.values():
            if campaign.name == ident:
                found = campaign
        return found

    def list_jobs(
        self,
        *,
        campaign_id: str | None = None,
        tenant: str | None = None,
        status: str | None = None,
    ) -> list[SubmittedJob]:
        out = []
        for job in self.jobs.values():
            if campaign_id is not None and job.campaign_id != campaign_id:
                continue
            if tenant is not None and job.tenant != tenant:
                continue
            if status is not None and job.status != status:
                continue
            out.append(job)
        return out

    def describe(self) -> dict:
        out = {
            "uptime_s": round(time.time() - self.started_at, 3),
            "campaigns": len(self.campaigns),
            "jobs": len(self.jobs),
            "pending": self.scheduler.pending(),
            "inflight": self.scheduler.inflight(),
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "restored": self.restored,
            "store": self.store.describe(),
        }
        if self.journal is not None:
            out["journal"] = self.journal.describe()
        return out

    # -- crash recovery -------------------------------------------------

    def restore(self) -> dict:
        """Rebuild state from the attached journal (``serve --resume``).

        Three phases:

        1. Replay the op stream: recreate campaigns and job envelopes
           with their original ids, then apply terminal transitions *in
           journal order* so every campaign's event log comes back with
           the same events at the same ``seq`` numbers clients already
           saw -- that is what makes ``?since=`` reconnects exactly-once
           across the restart.
        2. Atomically compact the journal to the rebuilt snapshot
           (repeated crash/resume cycles cannot grow it unboundedly).
        3. Re-admit every non-terminal job through the submission gates:
           work that recorded to the store before the crash but lost its
           ``finish`` op resolves as ``cached`` (no double execution);
           genuinely unfinished work -- queued or mid-execution at the
           crash -- re-queues and re-executes (safe: results are
           content-keyed and recording is idempotent).
        """
        if self.journal is None:
            return {"campaigns": 0, "jobs": 0, "requeued": 0, "finished": 0}
        ops = self.journal.load()
        pending: list[SubmittedJob] = []
        finished = 0
        for op in ops:
            kind = op["op"]
            if kind == OP_CAMPAIGN:
                campaign = CampaignState(
                    name=op["name"],
                    tenant=op.get("tenant", "default"),
                    priority=op.get("priority", 0),
                    campaign_id=op["campaign_id"],
                    created_at=op.get("created_at", time.time()),
                )
                self.campaigns[campaign.campaign_id] = campaign
            elif kind == OP_CANCEL:
                campaign = self.campaigns.get(op["campaign_id"])
                if campaign is not None:
                    campaign.cancelled = True
            elif kind == OP_JOB:
                campaign = self.campaigns.get(op["campaign_id"])
                if campaign is None:
                    continue
                job = SubmittedJob(
                    spec=JobSpec.from_dict(op["spec"]),
                    tenant=op.get("tenant", "default"),
                    priority=op.get("priority", 0),
                    campaign_id=campaign.campaign_id,
                    campaign=campaign.name,
                    submitted_at=op.get("submitted_at", time.time()),
                    job_id=op["job_id"],
                )
                campaign.jobs.append(job)
                self.jobs[job.job_id] = job
            elif kind in (OP_RUN, OP_REQUEUE):
                job = self.jobs.get(op["job_id"])
                if job is not None:
                    job.attempts = max(job.attempts, op.get("attempt", 0))
            elif kind == OP_FINISH:
                job = self.jobs.get(op["job_id"])
                if job is None or job.done:
                    continue
                self._restore_finish(job, op)
                finished += 1
            # Unknown ops (newer server version): ignored, not fatal.
        advance_ids(list(self.jobs), list(self.campaigns))
        self.journal.rewrite(list(self.snapshot_ops()))
        for campaign in self.campaigns.values():
            for job in campaign.jobs:
                if job.done:
                    continue
                if campaign.cancelled:
                    # The cancel op covers jobs whose cancelled-finish
                    # line was lost to the crash mid-cancellation.
                    job.status = STATUS_CANCELLED
                    job.finished_at = time.time()
                    self._journal_finish(job)
                    self._append_event(campaign, job)
                    continue
                job.status = STATUS_QUEUED
                pending.append(job)
        for job in pending:
            self._admit(job)
        self.restored = sum(
            1 for job in pending if job.status in (STATUS_QUEUED, STATUS_RUNNING)
        )
        if self.campaigns:
            logger.info(
                "resume: %d campaign(s), %d job(s) restored -- "
                "%d already finished, %d re-queued, %d resolved from cache",
                len(self.campaigns), len(self.jobs), finished,
                self.restored, len(pending) - self.restored,
            )
        self.work_available.set()
        return {
            "campaigns": len(self.campaigns),
            "jobs": len(self.jobs),
            "requeued": self.restored,
            "finished": finished,
        }

    def _restore_finish(self, job: SubmittedJob, op: dict) -> None:
        """Apply a journaled terminal transition during replay."""
        job.status = op["status"]
        job.from_cache = bool(op.get("from_cache"))
        job.elapsed_s = op.get("elapsed_s", 0.0)
        job.attempts = max(job.attempts, op.get("attempts", 0))
        job.failure = op.get("failure")
        job.coalesced_with = op.get("coalesced_with")
        job.finished_at = op.get("finished_at")
        if job.status in (STATUS_OK, STATUS_CACHED) and job.failure is None:
            # Metrics live in the store, keyed by content: the journal
            # only records *that* the job resolved.
            record = self.store.get(job.key)
            if record is not None:
                job.metrics = record.get("metrics")
        self._append_event(self.campaigns[job.campaign_id], job)

    def snapshot_ops(self):
        """The compacted op stream equivalent to the current state.

        Campaign and job ops first (structure), then finish ops in
        per-campaign event order (history) -- replaying this snapshot
        rebuilds identical event logs.
        """
        for campaign in self.campaigns.values():
            yield {
                "op": OP_CAMPAIGN,
                "campaign_id": campaign.campaign_id,
                "name": campaign.name,
                "tenant": campaign.tenant,
                "priority": campaign.priority,
                "created_at": campaign.created_at,
            }
            if campaign.cancelled:
                yield {"op": OP_CANCEL, "campaign_id": campaign.campaign_id}
            for job in campaign.jobs:
                yield {
                    "op": OP_JOB,
                    "job_id": job.job_id,
                    "campaign_id": campaign.campaign_id,
                    "spec": job.spec.to_dict(),
                    "tenant": job.tenant,
                    "priority": job.priority,
                    "submitted_at": job.submitted_at,
                }
        for campaign in self.campaigns.values():
            for event in campaign.events:
                job = self.jobs.get(event["id"])
                if job is not None and job.done:
                    yield {
                        "op": OP_FINISH,
                        "job_id": job.job_id,
                        "status": job.status,
                        "from_cache": job.from_cache,
                        "elapsed_s": job.elapsed_s,
                        "attempts": job.attempts,
                        "failure": job.failure,
                        "coalesced_with": job.coalesced_with,
                        "finished_at": job.finished_at,
                    }
