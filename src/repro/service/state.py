"""In-memory service state: dedup, coalescing, events, cancellation.

One :class:`ServiceState` instance lives on the server's event loop.
Submission resolves every spec through three gates, cheapest first:

1. **Store dedup** -- the spec's content key already has a successful
   record (from any tenant, any campaign, any prior run): the job
   resolves as ``cached`` instantly, no execution, no queueing.
2. **In-flight coalescing** -- the same key is already queued or
   running for someone else: the new job becomes a *follower* of that
   primary and resolves with the primary's result.  A thousand tenants
   submitting the same sweep costs one execution.
3. **Queue** -- genuinely new work enters the
   :class:`~repro.service.scheduler.FairScheduler`.

Completion records through the pluggable result store (so restarts
resume via gate 1) and appends a JSONL-able event to the owning
campaign's log; streams (`GET .../stream`) replay the log then wait on
the shared condition for more.
"""

from __future__ import annotations

import asyncio
import time

from repro.observe.export import observe_headline
from repro.orchestrate.spec import JobSpec
from repro.orchestrate.store import BaseResultStore
from repro.service.model import (
    STATUS_CACHED,
    STATUS_CANCELLED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_QUEUED,
    STATUS_RUNNING,
    CampaignState,
    SubmittedJob,
)
from repro.service.scheduler import FairScheduler


class ServiceState:
    """Everything the HTTP layer and the executor pump share."""

    def __init__(
        self, store: BaseResultStore, scheduler: FairScheduler
    ) -> None:
        self.store = store
        self.scheduler = scheduler
        self.campaigns: dict[str, CampaignState] = {}
        self.jobs: dict[str, SubmittedJob] = {}
        self._primaries: dict[str, SubmittedJob] = {}  # key -> in-flight
        self._followers: dict[str, list[SubmittedJob]] = {}
        self.started_at = time.time()
        # Pump wake-up (new work) and stream wake-up (new events).
        self.work_available = asyncio.Event()
        self.events_cond = asyncio.Condition()
        # Counters for /api/store and the dedup benchmark.
        self.executed = 0
        self.cache_hits = 0
        self.coalesced = 0

    # -- submission -----------------------------------------------------

    def submit(
        self,
        name: str,
        specs: list[JobSpec],
        *,
        tenant: str = "default",
        priority: int = 0,
    ) -> CampaignState:
        """Register a campaign: resolve dedup, queue the remainder."""
        campaign = CampaignState(name=name, tenant=tenant, priority=priority)
        self.campaigns[campaign.campaign_id] = campaign
        resolved: list[SubmittedJob] = []
        for spec in specs:
            job = SubmittedJob(
                spec=spec,
                tenant=tenant,
                priority=priority,
                campaign_id=campaign.campaign_id,
                campaign=name,
            )
            campaign.jobs.append(job)
            self.jobs[job.job_id] = job
            key = job.key
            metrics = self.store.cached_metrics(key)
            if metrics is not None:
                job.status = STATUS_CACHED
                job.from_cache = True
                job.metrics = metrics
                self.cache_hits += 1
                resolved.append(job)
                continue
            primary = self._primaries.get(key)
            if primary is not None:
                job.coalesced_with = primary.job_id
                self._followers.setdefault(key, []).append(job)
                self.coalesced += 1
                continue
            self._primaries[key] = job
            self.scheduler.add(job)
        for job in resolved:
            self._append_event(campaign, job)
        self.work_available.set()
        self._notify_streams()
        return campaign

    # -- execution lifecycle (driven by the server pump) ---------------

    def mark_running(self, job: SubmittedJob) -> None:
        job.status = STATUS_RUNNING
        job.started_at = time.time()

    def finish(
        self,
        job: SubmittedJob,
        *,
        metrics: dict | None,
        failure: dict | None,
        elapsed_s: float,
    ) -> None:
        """Resolve a primary job and every follower coalesced onto it."""
        job.status = STATUS_OK if failure is None else STATUS_FAILED
        job.metrics = metrics
        job.failure = failure
        job.elapsed_s = elapsed_s
        job.attempts = 1
        job.finished_at = time.time()
        self.executed += 1
        self.scheduler.release(job.tenant)
        self.store.record(
            job.key,
            spec_dict=job.spec.to_dict(),
            status=job.status,
            metrics=metrics,
            failure=failure,
            elapsed_s=elapsed_s,
            attempts=1,
            campaign=job.campaign,
        )
        self._primaries.pop(job.key, None)
        self._append_event(self.campaigns[job.campaign_id], job)
        for follower in self._followers.pop(job.key, []):
            if follower.status == STATUS_CANCELLED:
                continue
            follower.status = job.status
            follower.metrics = metrics
            follower.failure = failure
            follower.from_cache = failure is None
            follower.finished_at = job.finished_at
            self._append_event(
                self.campaigns[follower.campaign_id], follower
            )
        self.work_available.set()
        self._notify_streams()

    # -- cancellation ---------------------------------------------------

    def cancel_campaign(self, campaign: CampaignState) -> int:
        """Cancel queued work; running jobs finish (and cache) normally."""
        campaign.cancelled = True
        cid = campaign.campaign_id
        dropped = self.scheduler.drop(lambda j: j.campaign_id == cid)
        for job in dropped:
            self._primaries.pop(job.key, None)
            # The primary is gone: promote the first follower, if any.
            followers = self._followers.pop(job.key, [])
            live = [f for f in followers if f.status != STATUS_CANCELLED]
            if live:
                head, rest = live[0], live[1:]
                head.coalesced_with = None
                self._primaries[head.key] = head
                self.scheduler.add(head)
                if rest:
                    self._followers[head.key] = rest
                    for f in rest:
                        f.coalesced_with = head.job_id
        cancelled = list(dropped)
        dropped_ids = {job.job_id for job in dropped}
        for job in campaign.jobs:
            if job.status == STATUS_QUEUED and job.job_id not in dropped_ids:
                # Queued followers of another campaign's primary.
                cancelled.append(job)
        for job in cancelled:
            job.status = STATUS_CANCELLED
            job.finished_at = time.time()
            self._append_event(campaign, job)
        self._notify_streams()
        return len(cancelled)

    # -- events and queries ---------------------------------------------

    def _append_event(self, campaign: CampaignState, job: SubmittedJob) -> None:
        event = {
            "event": "job",
            "seq": len(campaign.events),
            "id": job.job_id,
            "key": job.key,
            "label": job.spec.label,
            "status": job.status,
            "from_cache": job.from_cache,
            "elapsed_s": job.elapsed_s,
            "metrics": job.metrics,
            "failure": job.failure,
        }
        observe = (job.metrics or {}).get("observe")
        if observe:
            event["observe"] = observe_headline(observe)
        campaign.events.append(event)

    def _notify_streams(self) -> None:
        async def notify() -> None:
            async with self.events_cond:
                self.events_cond.notify_all()

        # Mutators stay synchronous (no await mid-bookkeeping); the
        # notify rides the loop as its own task.  Without a running
        # loop (direct unit-test use) there are no streams to wake.
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return
        loop.create_task(notify())

    async def stream_events(self, campaign: CampaignState):
        """Yield the campaign's events: replay, then live until done."""
        cursor = 0
        while True:
            while cursor < len(campaign.events):
                yield campaign.events[cursor]
                cursor += 1
            if campaign.done:
                yield {
                    "event": "end",
                    "status": campaign.status,
                    "counts": campaign.counts(),
                }
                return
            async with self.events_cond:
                # Re-check under the condition: an event appended since
                # the unlocked check must not strand this stream.
                if cursor >= len(campaign.events) and not campaign.done:
                    await self.events_cond.wait()

    def find_campaign(self, ident: str) -> CampaignState | None:
        got = self.campaigns.get(ident)
        if got is not None:
            return got
        for campaign in self.campaigns.values():
            if campaign.name == ident:
                return campaign
        return None

    def list_jobs(
        self,
        *,
        campaign_id: str | None = None,
        tenant: str | None = None,
        status: str | None = None,
    ) -> list[SubmittedJob]:
        out = []
        for job in self.jobs.values():
            if campaign_id is not None and job.campaign_id != campaign_id:
                continue
            if tenant is not None and job.tenant != tenant:
                continue
            if status is not None and job.status != status:
                continue
            out.append(job)
        return out

    def describe(self) -> dict:
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "campaigns": len(self.campaigns),
            "jobs": len(self.jobs),
            "pending": self.scheduler.pending(),
            "inflight": self.scheduler.inflight(),
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "store": self.store.describe(),
        }
