"""Routing probes (Fig. 4) and the MB-m misrouting-backtracking search.

A probe is a single control flit that walks the control channels of one
wave switch ``Si``, reserving the (control channel, data channel) pair at
each hop.  The MB-m protocol (Gaughan & Yalamanchili [12]) governs the
walk:

* *profitable* links (on a minimal path to the destination) are preferred;
* up to ``m`` *misroutes* over non-minimal links are allowed;
* when no acceptable link is free the probe **backtracks**, releasing the
  last reservation and recording the searched link in the previous node's
  History Store so the same path is never searched twice;
* a probe with the **Force** bit set (CLRP phase 2) does not backtrack on
  channels held by *established* circuits -- it selects a victim and waits
  for its release; it still backtracks when every requested channel
  belongs to a circuit *being established* (waiting there would create the
  cyclic channel dependencies Theorem 1 rules out).

The walk logic lives here as pure decision methods; the
:class:`~repro.circuits.plane.WavePlane` supplies channel state and moves
probes in simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

from repro.errors import ProtocolError
from repro.sim.events import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.circuits.plane import WavePlane


class ProbeStatus(Enum):
    SEARCHING = "searching"
    WAITING = "waiting"  # Force probe waiting on a victim circuit release
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class Probe:
    """One routing probe (Fig. 4) plus its search bookkeeping.

    The paper's fields map as: Header bit -- implicit in the type;
    Backtrack bit -- :attr:`backtracking`; Misroute -- :attr:`misroutes`;
    Force -- :attr:`force`; the Xi-offset fields -- derivable from
    :attr:`at_node` and :attr:`dst`.
    """

    probe_id: int
    circuit_id: int
    src: int
    dst: int
    switch: int
    force: bool
    max_misroutes: int
    at_node: int = -1
    misroutes: int = 0
    backtracking: bool = False
    status: ProbeStatus = ProbeStatus.SEARCHING
    ready_at: int = 0
    # Channels whose circuits we have already asked to be released, so a
    # waiting probe does not flood duplicate release requests.
    requested_releases: set[int] = field(default_factory=set)
    # Nodes where this probe wrote History Store entries, so finishing the
    # probe clears only those units instead of sweeping every node.
    history_nodes: set[int] = field(default_factory=set)
    # Statistics.
    hops: int = 0
    backtracks: int = 0
    waits: int = 0

    def __post_init__(self) -> None:
        if self.at_node < 0:
            self.at_node = self.src

    # ------------------------------------------------------------------

    def step(self, plane: "WavePlane", cycle: int) -> None:
        """Perform one decision at the current node.

        Called by the plane when ``ready_at <= cycle``.  Mutates probe and
        channel state through ``plane``.
        """
        if self.status in (ProbeStatus.SUCCEEDED, ProbeStatus.FAILED):
            raise ProtocolError(f"stepping finished probe {self.probe_id}")

        if self.at_node == self.dst:
            plane.probe_reached_destination(self, cycle)
            return

        unit = plane.units[self.at_node]
        topo = plane.topology
        minimal = set(topo.minimal_ports(self.at_node, self.dst))

        # The port leading straight back over the hop we arrived on: a
        # misroute there is a pure U-turn -- if the search below this node
        # is exhausted the *backtrack* primitive handles it (releasing the
        # reservation and recording history), so U-turn misroutes only
        # burn budget and lengthen circuits.
        back_port = None
        path = plane.table.get(self.circuit_id).path
        if path:
            prev_node, prev_port = path[-1]
            # None on unidirectional links (no back-link to U-turn onto).
            back_port = topo.return_port(prev_node, prev_port)

        # Candidate output links in preference order: profitable first,
        # then misroutes if budget remains.  History-searched and faulty
        # links are never candidates.
        profitable: list[int] = []
        misroute: list[int] = []
        for port in topo.connected_ports(self.at_node):
            if unit.searched(self.probe_id, port):
                continue
            if plane.channel_faulty(self.at_node, port, self.switch):
                continue
            if port in minimal:
                profitable.append(port)
            elif self.misroutes < self.max_misroutes and port != back_port:
                misroute.append(port)

        free_choice = plane.first_free(self.at_node, self.switch, profitable, self)
        took_misroute = False
        if free_choice is None:
            free_choice = plane.first_free(self.at_node, self.switch, misroute, self)
            took_misroute = free_choice is not None

        if free_choice is not None:
            if took_misroute:
                self.misroutes += 1
                plane.stats.bump("probe.misroutes")
            self.backtracking = False
            plane.advance_probe(self, free_choice, cycle)
            return

        if self.force:
            victims = plane.victim_candidates(
                self.at_node, self.switch, profitable + misroute, self
            )
            if victims:
                self._wait_on_victims(plane, victims, cycle)
                return
            # Every requested channel belongs to a circuit being
            # established: the probe must backtrack even with Force set
            # (waiting would close a cyclic channel dependency).
            plane.stats.bump("probe.force_backtracks")

        self._backtrack(plane, cycle)

    # ------------------------------------------------------------------

    def _wait_on_victims(
        self, plane: "WavePlane", victims: list[tuple[int, int]], cycle: int
    ) -> None:
        """Request release of victim circuits and wait for a channel.

        ``victims`` holds ``(port, circuit_id)`` for requested channels
        owned by *established* circuits (Ack Returned set).
        """
        if self.status is not ProbeStatus.WAITING:
            self.status = ProbeStatus.WAITING
            self.waits += 1
            plane.stats.bump("probe.waits")
            if plane.log is not None:
                plane.log.emit(cycle, EventKind.PROBE_WAIT, self.at_node,
                               self.probe_id, circuit=self.circuit_id,
                               victims=len(victims))
        for _port, circuit_id in victims:
            if circuit_id in self.requested_releases:
                continue
            self.requested_releases.add(circuit_id)
            plane.initiate_victim_release(self, circuit_id, cycle)
            # One victim at a time is enough to guarantee progress; asking
            # for more would evict working circuits needlessly.
            break
        # Doze: the plane wakes this probe the moment its claimed channel
        # is released (wake_claimant), so polling sparsely costs nothing
        # on the success path and saves a full candidate scan per cycle.
        self.ready_at = cycle + 8

    def _backtrack(self, plane: "WavePlane", cycle: int) -> None:
        self.status = ProbeStatus.SEARCHING
        circuit = plane.table.get(self.circuit_id)
        if not circuit.path:
            # At the source with nothing left to search: the probe failed.
            plane.probe_failed(self, cycle)
            return
        prev_node, port = circuit.path[-1]
        plane.retreat_probe(self, prev_node, port, cycle)
        self.backtracking = True
        self.backtracks += 1
        plane.stats.bump("probe.backtracks")
