"""The wave plane: probes, control flits and transfers advancing in time.

:class:`WavePlane` owns the per-node PCS control units, the circuit table,
all in-flight probes / control flits / wave transfers, and the small
amount of arbitration glue between them (channel *claims*, which make the
Theorem-3 progress argument concrete: a channel freed for a waiting Force
probe is held for that probe rather than racing it against newcomers).

The plane is deliberately ignorant of *policy*: which circuits to request,
when to force, when to tear down -- all of that lives in the CLRP/CARP
engines (:mod:`repro.core`), which the plane calls back into.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol

from repro.circuits.circuit import Circuit, CircuitState, CircuitTable
from repro.circuits.control import ControlFlit, ControlFlitKind
from repro.circuits.pcs_unit import ChannelStatus, PCSControlUnit
from repro.circuits.probe import Probe, ProbeStatus
from repro.circuits.wave import WaveTransfer
from repro.errors import ProtocolError
from repro.sim.config import WaveConfig
from repro.sim.events import EventKind, EventLog
from repro.sim.stats import LossRecord, StatsCollector
from repro.topology.base import Topology
from repro.topology.faults import FaultSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.message import Message


class CircuitOwnerEngine(Protocol):
    """Callbacks a protocol engine must provide to the plane."""

    def circuit_established(self, circuit: Circuit, cycle: int) -> None: ...

    def probe_failed(self, probe: Probe, circuit: Circuit, cycle: int) -> None: ...

    def release_requested(self, circuit: Circuit, cycle: int) -> None: ...

    def circuit_released(self, circuit: Circuit, cycle: int) -> None: ...

    def transfer_completed(self, transfer: WaveTransfer, cycle: int) -> None: ...

    def circuit_fault(self, circuit: Circuit, cycle: int) -> None: ...


ChannelKey = tuple[int, int, int]  # (node, out_port, switch)


class WavePlane:
    """Control and data plane for the wave-switched subsystem S1..Sk."""

    def __init__(
        self,
        topology: Topology,
        config: WaveConfig,
        stats: StatsCollector,
        faults: FaultSet | None = None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.stats = stats
        self.faults = faults
        self.units: list[PCSControlUnit] = [
            PCSControlUnit(n, topology.num_ports, config.num_switches)
            for n in range(topology.num_nodes)
        ]
        self.table = CircuitTable()
        self.probes: list[Probe] = []
        self.control_flits: list[ControlFlit] = []
        self.transfers: list[WaveTransfer] = []
        self._next_probe_id = 1
        self._probes_by_id: dict[int, Probe] = {}
        # Channel claims: freed-channel priority for waiting Force probes.
        self.claims: dict[ChannelKey, int] = {}
        self._probe_claims: dict[int, set[ChannelKey]] = {}
        # Engine per node, registered by the network after construction.
        self.engines: list[CircuitOwnerEngine | None] = [None] * topology.num_nodes
        # Message delivery callback, set by the network.
        self.deliver_message: Callable[["Message", int], None] | None = None
        self.work_done = 0  # incremented by every state-changing event
        # Optional protocol event trace (repro.sim.events).
        self.log: EventLog | None = None
        # Persistent flits-streamed tally per channel.  Circuits can be
        # torn down (CLRP replacement, fault recovery) and eventually
        # pruned from the table; utilization must not lose their traffic.
        self.streamed_by_channel: dict[ChannelKey, int] = {}

    # -- registration -----------------------------------------------------

    def register_engine(self, node: int, engine: CircuitOwnerEngine) -> None:
        self.engines[node] = engine

    def _engine(self, node: int) -> CircuitOwnerEngine:
        engine = self.engines[node]
        if engine is None:
            raise ProtocolError(f"no protocol engine registered for node {node}")
        return engine

    # -- queries used by probes --------------------------------------------

    def channel_faulty(self, node: int, port: int, switch: int) -> bool:
        if self.units[node].status(port, switch) is ChannelStatus.FAULTY:
            return True
        return self.faults is not None and self.faults.is_faulty(node, port)

    def first_free(
        self, node: int, switch: int, ports: list[int], probe: Probe | None = None
    ) -> int | None:
        """First FREE candidate channel, honouring claims.

        A channel claimed for some waiting probe is invisible to everyone
        else, so a victim teardown cannot be raced by a newcomer.
        """
        unit = self.units[node]
        pid = probe.probe_id if probe is not None else None
        for port in ports:
            if unit.status(port, switch) is not ChannelStatus.FREE:
                continue
            claimant = self.claims.get((node, port, switch))
            if claimant is not None and claimant != pid:
                continue
            return port
        return None

    def victim_candidates(
        self, node: int, switch: int, ports: list[int], probe: Probe
    ) -> list[tuple[int, int]]:
        """Requested channels owned by *established* circuits.

        "Established" is judged exactly as the paper says: by the Ack
        Returned bit of the local PCS control unit, not by any global view.
        Channels claimed by *another* waiting probe are skipped; the
        requester's own claims stay visible so a waiting probe keeps
        waiting (its release is already in flight) instead of backtracking.
        """
        unit = self.units[node]
        out = []
        for port in ports:
            if unit.status(port, switch) is not ChannelStatus.RESERVED:
                continue
            if not unit.ack_returned(port, switch):
                continue
            claimant = self.claims.get((node, port, switch))
            owner = unit.owner(port, switch)
            if owner is None:
                continue
            if claimant is not None and claimant != probe.probe_id:
                continue
            out.append((port, owner))
        return out

    # -- probe lifecycle ----------------------------------------------------

    def launch_probe(
        self,
        src: int,
        dst: int,
        switch: int,
        *,
        force: bool,
        cycle: int,
    ) -> tuple[Circuit, Probe]:
        """Create a fresh circuit attempt and send its probe.

        Each attempt gets a new circuit id: reservations of an abandoned
        attempt are fully unwound by backtracking, so ids are never reused.
        """
        if src == dst:
            raise ProtocolError("circuits to self are meaningless")
        if not 0 <= switch < self.config.num_switches:
            raise ProtocolError(f"switch {switch} out of range")
        circuit = self.table.create(src, dst, switch)
        probe = Probe(
            probe_id=self._next_probe_id,
            circuit_id=circuit.circuit_id,
            src=src,
            dst=dst,
            switch=switch,
            force=force,
            max_misroutes=self.config.misroute_budget,
            ready_at=cycle + 1,
        )
        self._next_probe_id += 1
        self.probes.append(probe)
        self._probes_by_id[probe.probe_id] = probe
        if self.log is not None:
            self.log.emit(cycle, EventKind.PROBE_LAUNCH, src, probe.probe_id,
                          circuit=circuit.circuit_id, dst=dst, switch=switch,
                          force=force)
        self.stats.bump("probe.launched")
        if force:
            self.stats.bump("probe.launched_forced")
        return circuit, probe

    def advance_probe(self, probe: Probe, port: int, cycle: int) -> None:
        """Reserve the chosen channel and move the probe one hop forward."""
        node = probe.at_node
        unit = self.units[node]
        unit.reserve(port, probe.switch, probe.circuit_id)
        self._drop_claim(probe, (node, port, probe.switch))
        circuit = self.table.get(probe.circuit_id)
        # Record the through-mapping at this node (None in_key at source).
        in_key = None
        if circuit.path:
            prev_node, prev_port = circuit.path[-1]
            in_port = self.topology.reverse_port(prev_node, prev_port)
            in_key = (in_port, probe.switch)
        unit.map_through(in_key, (port, probe.switch))
        circuit.path.append((node, port))
        nxt = self.topology.neighbor(node, port)
        assert nxt is not None
        probe.at_node = nxt
        probe.ready_at = cycle + self.config.setup_hop_delay
        probe.hops += 1
        probe.status = ProbeStatus.SEARCHING
        if self.log is not None:
            self.log.emit(cycle, EventKind.PROBE_HOP, node, probe.probe_id,
                          circuit=probe.circuit_id, port=port, to=nxt)
        self.stats.bump("probe.hops")
        self.work_done += 1

    def retreat_probe(
        self, probe: Probe, prev_node: int, port: int, cycle: int
    ) -> None:
        """Backtrack one hop: release the reservation, record the search."""
        unit = self.units[prev_node]
        unit.unmap_through((port, probe.switch))
        unit.release(port, probe.switch, probe.circuit_id)
        unit.record_search(probe.probe_id, port)
        probe.history_nodes.add(prev_node)
        circuit = self.table.get(probe.circuit_id)
        circuit.path.pop()
        probe.at_node = prev_node
        probe.ready_at = cycle + self.config.setup_hop_delay
        if self.log is not None:
            self.log.emit(cycle, EventKind.PROBE_BACKTRACK, prev_node,
                          probe.probe_id, circuit=probe.circuit_id, port=port)
        self.work_done += 1

    def probe_reached_destination(self, probe: Probe, cycle: int) -> None:
        """The whole path is reserved; return the acknowledgment."""
        circuit = self.table.get(probe.circuit_id)
        if not circuit.path:
            raise ProtocolError("probe reached destination with empty path")
        probe.status = ProbeStatus.SUCCEEDED
        if self.log is not None:
            self.log.emit(cycle, EventKind.CIRCUIT_RESERVED, probe.at_node,
                          circuit.circuit_id, hops=len(circuit.path))
        self._finish_probe(probe)
        self.control_flits.append(
            ControlFlit(
                kind=ControlFlitKind.ACK,
                circuit_id=circuit.circuit_id,
                hop_index=len(circuit.path) - 1,
                ready_at=cycle + self.config.setup_hop_delay,
            )
        )
        self.stats.bump("probe.succeeded")
        self.work_done += 1

    def probe_failed(self, probe: Probe, cycle: int) -> None:
        circuit = self.table.get(probe.circuit_id)
        if circuit.path:
            raise ProtocolError(
                f"probe {probe.probe_id} failed with reservations outstanding"
            )
        probe.status = ProbeStatus.FAILED
        circuit.state = CircuitState.DEAD
        if self.log is not None:
            self.log.emit(cycle, EventKind.PROBE_FAIL, probe.at_node,
                          probe.probe_id, circuit=circuit.circuit_id,
                          force=probe.force)
        self._finish_probe(probe)
        self.stats.bump("probe.failed")
        self._engine(probe.src).probe_failed(probe, circuit, cycle)
        self.work_done += 1

    def _finish_probe(self, probe: Probe) -> None:
        # Identity filter: dataclass ``remove`` would compare every field.
        self.probes = [p for p in self.probes if p is not probe]
        self._probes_by_id.pop(probe.probe_id, None)
        for key in self._probe_claims.pop(probe.probe_id, ()):
            self.claims.pop(key, None)
        for node in probe.history_nodes:
            self.units[node].clear_history(probe.probe_id)
        probe.history_nodes.clear()

    def _drop_claim(self, probe: Probe, key: ChannelKey) -> None:
        if self.claims.get(key) == probe.probe_id:
            del self.claims[key]
            self._probe_claims.get(probe.probe_id, set()).discard(key)

    def _wake_claimant(self, node: int, port: int, switch: int,
                       cycle: int) -> None:
        """A channel was freed: wake the probe that claimed it (dozing
        waiters poll sparsely; this keeps their grab latency at one
        cycle)."""
        claimant = self.claims.get((node, port, switch))
        if claimant is None:
            return
        probe = self._probes_by_id.get(claimant)
        if probe is not None and probe.ready_at > cycle + 1:
            probe.ready_at = cycle + 1

    # -- victim release ------------------------------------------------------

    def initiate_victim_release(
        self, probe: Probe, circuit_id: int, cycle: int
    ) -> None:
        """A blocked Force probe asks for a victim circuit's release.

        Claims the requested channel at the probe's node so the eventual
        teardown benefits the requester, then either asks the local engine
        (victim starts here) or sends a RELEASE_REQ control flit towards
        the victim's source along the reverse control path.
        """
        victim = self.table.get(circuit_id)
        node = probe.at_node
        # Claim the victim's channel at this node for the waiting probe.
        for hop_node, hop_port in victim.path:
            if hop_node == node:
                key = (hop_node, hop_port, victim.switch)
                self.claims[key] = probe.probe_id
                self._probe_claims.setdefault(probe.probe_id, set()).add(key)
                break
        if self.log is not None:
            self.log.emit(cycle, EventKind.RELEASE_REQUESTED, node,
                          circuit_id, requester=probe.probe_id)
        self.stats.bump("clrp.victim_releases_requested")
        if victim.src == node:
            self._engine(node).release_requested(victim, cycle)
            self.work_done += 1
            return
        # Remote: walk backwards from this node's hop towards the source.
        hop_index = None
        for i, (hop_node, _port) in enumerate(victim.path):
            if hop_node == node:
                hop_index = i - 1
                break
        if hop_index is None:
            raise ProtocolError(
                f"victim circuit {circuit_id} does not cross node {node}"
            )
        self.control_flits.append(
            ControlFlit(
                kind=ControlFlitKind.RELEASE_REQ,
                circuit_id=circuit_id,
                hop_index=hop_index,
                ready_at=cycle + self.config.setup_hop_delay,
                requester_probe=probe.probe_id,
            )
        )
        self.work_done += 1

    def start_teardown(self, circuit: Circuit, cycle: int) -> None:
        """Source-initiated teardown: a control flit frees hops in order."""
        if circuit.state is not CircuitState.ESTABLISHED:
            raise ProtocolError(
                f"teardown of circuit {circuit.circuit_id} in state "
                f"{circuit.state.value}"
            )
        if circuit.in_use:
            raise ProtocolError(
                f"teardown of in-use circuit {circuit.circuit_id}; the "
                "In-use bit protects messages in transit"
            )
        circuit.state = CircuitState.RELEASING
        if self.log is not None:
            self.log.emit(cycle, EventKind.TEARDOWN_START, circuit.src,
                          circuit.circuit_id)
        self.control_flits.append(
            ControlFlit(
                kind=ControlFlitKind.TEARDOWN,
                circuit_id=circuit.circuit_id,
                hop_index=0,
                ready_at=cycle + self.config.setup_hop_delay,
            )
        )
        self.stats.bump("circuit.teardowns")
        self.work_done += 1

    # -- dynamic faults ------------------------------------------------------

    def on_link_killed(self, node: int, port: int, cycle: int) -> None:
        """React to the directed link ``(node, port)`` dying mid-run.

        Every circuit holding a reservation on the link is handled by
        state: ESTABLISHED circuits are torn down end-to-end (the
        reservations on the surviving prefix would otherwise leak
        forever), SETTING_UP attempts are aborted so the retried probe
        searches around the fault exactly as it would around a busy
        channel, and RELEASING circuits are left alone -- their teardown
        flit performs register bookkeeping only, which works across the
        dead link.
        """
        unit = self.units[node]
        for switch in range(self.config.num_switches):
            if unit.status(port, switch) is not ChannelStatus.RESERVED:
                continue
            owner = unit.owner(port, switch)
            if owner is None:
                continue
            circuit = self.table.get(owner)
            if circuit.state is CircuitState.ESTABLISHED:
                self.fault_teardown(circuit, cycle)
            elif circuit.state is CircuitState.SETTING_UP:
                self._abort_setup(circuit, cycle)

    def fault_teardown(self, circuit: Circuit, cycle: int) -> None:
        """Tear down an established circuit severed by a link fault.

        Unlike :meth:`start_teardown` this may interrupt an in-flight
        transfer: wavefronts past the break are lost (recorded as a
        :class:`~repro.sim.stats.LossRecord` unless the tail had already
        reached the destination), and the source engine is notified via
        ``circuit_fault`` so its cache entry stops accepting traffic.
        The actual release still walks hop by hop as a TEARDOWN control
        flit -- register bookkeeping works across the dead link.
        """
        if circuit.state is not CircuitState.ESTABLISHED:
            return
        severed = [
            t for t in self.transfers if t.circuit is circuit and not t.done
        ]
        if severed:
            severed_ids = set(map(id, severed))
            self.transfers = [
                t for t in self.transfers if id(t) not in severed_ids
            ]
        for transfer in severed:
            message = transfer.message
            if (
                not message.delivery_notified
                and transfer.delivered_at >= 0
                and cycle >= transfer.delivered_at
            ):
                # The tail already reached the destination; only the
                # window acks were still draining.  Deliver, don't lose.
                message.delivery_notified = True
                if self.deliver_message is not None:
                    self.deliver_message(message, transfer.delivered_at)
            if message.delivery_notified:
                self.stats.bump("wave.transfers_cut_after_delivery")
            else:
                self.stats.bump("wave.transfers_severed")
                self.stats.record_loss(
                    LossRecord(
                        cycle=cycle,
                        msg_id=message.msg_id,
                        node=circuit.src,
                        reason="circuit_severed",
                        flits=message.length,
                    )
                )
        circuit.in_use = False
        circuit.state = CircuitState.RELEASING
        if self.log is not None:
            self.log.emit(cycle, EventKind.CIRCUIT_FAULT_TEARDOWN,
                          circuit.src, circuit.circuit_id,
                          severed=len(severed))
        self.control_flits.append(
            ControlFlit(
                kind=ControlFlitKind.TEARDOWN,
                circuit_id=circuit.circuit_id,
                hop_index=circuit.released_upto,
                ready_at=cycle + self.config.setup_hop_delay,
            )
        )
        self.stats.bump("circuit.fault_teardowns")
        self._engine(circuit.src).circuit_fault(circuit, cycle)
        self.work_done += 1

    def _abort_setup(self, circuit: Circuit, cycle: int) -> None:
        """Abort a SETTING_UP attempt whose reserved path hit a dead link.

        All outstanding reservations unwind immediately (pure register
        bookkeeping) and the source engine gets the standard
        ``probe_failed`` callback, so its retry policy -- next switch,
        Force, wormhole fallback -- applies unchanged; the retried probe
        then treats the dead link as busy and searches around it.  Covers
        both a live probe and the ack-in-flight window (probe already
        finished, circuit not yet established).
        """
        probe = next(
            (p for p in self.probes if p.circuit_id == circuit.circuit_id),
            None,
        )
        for hop_node, hop_port in reversed(circuit.path):
            unit = self.units[hop_node]
            unit.unmap_through((hop_port, circuit.switch))
            unit.release(hop_port, circuit.switch, circuit.circuit_id)
            self._wake_claimant(hop_node, hop_port, circuit.switch, cycle)
        circuit.path.clear()
        # Drop any control flit of this attempt (the in-flight ack, or a
        # release request some probe aimed at it -- the circuit is dying).
        self.control_flits = [
            f for f in self.control_flits if f.circuit_id != circuit.circuit_id
        ]
        if self.log is not None:
            self.log.emit(cycle, EventKind.PROBE_FAULT_ABORT, circuit.src,
                          circuit.circuit_id)
        self.stats.bump("probe.fault_aborts")
        if probe is not None:
            self.probe_failed(probe, cycle)
            return
        # Probe already succeeded; the ack we just removed will never
        # arrive.  Report failure through a synthetic probe record.
        circuit.state = CircuitState.DEAD
        ghost = Probe(
            probe_id=-1,
            circuit_id=circuit.circuit_id,
            src=circuit.src,
            dst=circuit.dst,
            switch=circuit.switch,
            force=False,
            max_misroutes=0,
        )
        ghost.status = ProbeStatus.FAILED
        self.stats.bump("probe.failed")
        self._engine(circuit.src).probe_failed(ghost, circuit, cycle)
        self.work_done += 1

    # -- transfers ------------------------------------------------------------

    def start_transfer(
        self, circuit: Circuit, message: "Message", cycle: int
    ) -> WaveTransfer:
        if circuit.state is not CircuitState.ESTABLISHED:
            raise ProtocolError(
                f"transfer on circuit {circuit.circuit_id} in state "
                f"{circuit.state.value}"
            )
        if circuit.in_use:
            raise ProtocolError(
                f"circuit {circuit.circuit_id} already in use; messages "
                "must serialize on the In-use bit"
            )
        circuit.in_use = True
        transfer = WaveTransfer(
            message=message,
            circuit=circuit,
            rate=self.config.flits_per_cycle,
            window=self.config.window,
            pipe_delay=circuit.length * self.config.wire_delay,
            start_cycle=cycle,
        )
        self.transfers.append(transfer)
        if self.log is not None:
            self.log.emit(cycle, EventKind.TRANSFER_START, circuit.src,
                          circuit.circuit_id, msg=message.msg_id,
                          flits=message.length)
        self.stats.bump("wave.transfers_started")
        self.work_done += 1
        return transfer

    # -- per-cycle advancement ---------------------------------------------

    def step(self, cycle: int) -> None:
        self._step_control_flits(cycle)
        self._step_probes(cycle)
        self._step_transfers(cycle)

    def _step_probes(self, cycle: int) -> None:
        if not self.probes:
            return
        # Snapshot: a probe finishing mutates self.probes; a finished
        # probe's status flips, so no membership re-scan is needed.
        for probe in tuple(self.probes):
            if probe.ready_at <= cycle and probe.status in (
                ProbeStatus.SEARCHING, ProbeStatus.WAITING
            ):
                probe.step(self, cycle)

    def _step_control_flits(self, cycle: int) -> None:
        hop_delay = self.config.setup_hop_delay
        finished: list[ControlFlit] = []
        for flit in list(self.control_flits):
            if flit.ready_at > cycle:
                continue
            circuit = self.table.get(flit.circuit_id)
            if flit.kind is ControlFlitKind.ACK:
                node, port = circuit.path[flit.hop_index]
                self.units[node].set_ack_returned(port, circuit.switch,
                                                  circuit.circuit_id)
                flit.hop_index -= 1
                flit.ready_at = cycle + hop_delay
                self.work_done += 1
                if flit.hop_index < 0:
                    circuit.state = CircuitState.ESTABLISHED
                    circuit.established_at = cycle
                    finished.append(flit)
                    if self.log is not None:
                        self.log.emit(cycle, EventKind.CIRCUIT_ESTABLISHED,
                                      circuit.src, circuit.circuit_id,
                                      dst=circuit.dst, hops=circuit.length)
                    self.stats.bump("circuit.established")
                    self._engine(circuit.src).circuit_established(circuit, cycle)
            elif flit.kind is ControlFlitKind.TEARDOWN:
                node, port = circuit.path[flit.hop_index]
                unit = self.units[node]
                unit.unmap_through((port, circuit.switch))
                unit.release(port, circuit.switch, circuit.circuit_id)
                self._wake_claimant(node, port, circuit.switch, cycle)
                flit.hop_index += 1
                circuit.released_upto = flit.hop_index
                flit.ready_at = cycle + hop_delay
                self.work_done += 1
                if flit.hop_index >= len(circuit.path):
                    circuit.state = CircuitState.DEAD
                    circuit.released_at = cycle
                    finished.append(flit)
                    if self.log is not None:
                        self.log.emit(cycle, EventKind.CIRCUIT_RELEASED,
                                      circuit.src, circuit.circuit_id,
                                      uses=circuit.uses)
                    self.stats.bump("circuit.released")
                    self._engine(circuit.src).circuit_released(circuit, cycle)
            elif flit.kind is ControlFlitKind.RELEASE_REQ:
                # Discard if the circuit is already going away (race case
                # from the Theorem 1 proof) -- a first request, or the
                # teardown itself, has overtaken this one.  A circuit still
                # SETTING_UP is fine: the Ack Returned bit was set at the
                # requesting node, so the ack is strictly ahead of us on
                # this same reverse path and the circuit will be
                # established by the time we arrive.
                if circuit.state in (CircuitState.RELEASING, CircuitState.DEAD):
                    flit.discarded = True
                    finished.append(flit)
                    self.stats.bump("clrp.release_req_discarded")
                    continue
                flit.hop_index -= 1
                flit.ready_at = cycle + hop_delay
                self.work_done += 1
                if flit.hop_index < 0:
                    finished.append(flit)
                    self._engine(circuit.src).release_requested(circuit, cycle)
        if finished:
            finished_ids = set(map(id, finished))
            self.control_flits = [
                f for f in self.control_flits if id(f) not in finished_ids
            ]

    def _step_transfers(self, cycle: int) -> None:
        done: list[WaveTransfer] = []
        for transfer in self.transfers:
            self.work_done += transfer.advance(cycle)
            if (
                transfer.delivered_at >= 0
                and not transfer.message.delivery_notified
                and cycle >= transfer.delivered_at
            ):
                transfer.message.delivery_notified = True
                if self.deliver_message is not None:
                    self.deliver_message(transfer.message, transfer.delivered_at)
                self.work_done += 1
            if transfer.done:
                done.append(transfer)
        if done:
            done_ids = set(map(id, done))
            self.transfers = [
                t for t in self.transfers if id(t) not in done_ids
            ]
        for transfer in done:
            circuit = transfer.circuit
            circuit.in_use = False
            circuit.uses += 1
            circuit.flits_streamed += transfer.length
            for key in circuit.hop_channels():
                self.streamed_by_channel[key] = (
                    self.streamed_by_channel.get(key, 0) + transfer.length
                )
            if self.log is not None:
                self.log.emit(cycle, EventKind.TRANSFER_COMPLETE, circuit.src,
                              transfer.message.msg_id,
                              circuit=circuit.circuit_id)
            self.stats.bump("wave.transfers_completed")
            self._engine(circuit.src).transfer_completed(transfer, cycle)

    # -- idleness ---------------------------------------------------------------

    def is_idle(self) -> bool:
        return not self.probes and not self.control_flits and not self.transfers
