"""Control flits: acknowledgments, teardowns and release requests.

Besides probes, three kinds of control flit travel the control channels:

* **ACK** -- sent by the destination once a probe has reserved the whole
  path; walks the path *backwards* via the Reverse Channel Mappings,
  setting the Ack Returned bit at every hop; on reaching the source the
  circuit becomes usable.
* **TEARDOWN** -- sent by the source to dismantle a circuit; walks the
  path *forwards*, freeing each (control, data) channel pair as it goes.
* **RELEASE_REQ** -- sent by a node where a Force probe is blocked,
  towards the source of the victim circuit, asking it to release the
  circuit.  Per the deadlock proof, these channels are guaranteed free of
  other source-bound traffic once the ack has returned.  If the circuit
  is already being released the request is discarded at some intermediate
  node (the proof's race case); duplicate requests are likewise
  discarded.

Each flit advances one hop per ``setup_hop_delay`` base cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ControlFlitKind(Enum):
    ACK = "ack"
    TEARDOWN = "teardown"
    RELEASE_REQ = "release_req"


@dataclass
class ControlFlit:
    """One in-flight control flit.

    ``hop_index`` is the index into the circuit's path of the hop the flit
    will process next: ACK flits walk from ``len(path) - 1`` down to 0;
    TEARDOWN flits walk from 0 upward; RELEASE_REQ flits walk downward
    (towards the source) starting from the hop whose *downstream* node the
    request originated at.
    """

    kind: ControlFlitKind
    circuit_id: int
    hop_index: int
    ready_at: int
    # For RELEASE_REQ: the probe that asked, so stats can attribute it.
    requester_probe: int | None = None
    discarded: bool = False
