"""Physical circuits and their lifecycle.

A circuit is a chain of (control channel, data channel) pairs through one
wave switch ``Si``, reserved hop by hop by a probe, confirmed by an
acknowledgment, used by any number of messages, and finally torn down by a
control flit from its source.

The :class:`CircuitTable` is a simulation-side registry for bookkeeping
and invariant checking; protocol *decisions* only ever read the per-node
PCS status registers (:mod:`repro.circuits.pcs_unit`) and the per-NI
Circuit Cache (:mod:`repro.core.circuit_cache`), mirroring what real
distributed hardware can see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ProtocolError


class CircuitState(Enum):
    SETTING_UP = "setting_up"  # probe in flight, channels partially reserved
    ESTABLISHED = "established"  # ack returned to the source; usable
    RELEASING = "releasing"  # teardown flit in flight
    DEAD = "dead"  # fully torn down (or setup abandoned)


@dataclass
class Circuit:
    """One physical circuit through wave switch ``switch``.

    ``path`` holds ``(node, out_port)`` hops from source to destination;
    the data channel of hop ``i`` is ``(path[i][0], path[i][1], switch)``.

    ``in_use`` mirrors the In-use bit of the source's Circuit Cache entry:
    set while a message is streaming (until its last end-to-end ack), and
    protecting the circuit from teardown meanwhile.
    """

    circuit_id: int
    src: int
    dst: int
    switch: int
    state: CircuitState = CircuitState.SETTING_UP
    path: list[tuple[int, int]] = field(default_factory=list)
    in_use: bool = False
    pending_release: bool = False  # release requested while in use
    established_at: int = -1
    released_at: int = -1
    uses: int = 0  # messages that have streamed over this circuit
    flits_streamed: int = 0  # payload flits carried over its lifetime
    # Hops already freed by an in-flight teardown (prefix of ``path``):
    # the teardown flit walks forward releasing channels behind it.
    released_upto: int = 0

    @property
    def length(self) -> int:
        """Hop count of the (possibly still partial) path."""
        return len(self.path)

    def hop_channels(self) -> list[tuple[int, int, int]]:
        """Data-channel keys ``(node, port, switch)`` along the path."""
        return [(node, port, self.switch) for node, port in self.path]

    def held_channels(self) -> list[tuple[int, int, int]]:
        """Channels still actually reserved (excludes torn-down prefix)."""
        return [
            (node, port, self.switch)
            for node, port in self.path[self.released_upto:]
        ]

    def node_after(self, index: int, neighbor_of) -> int:
        """Node reached after hop ``index`` (``neighbor_of`` = topology fn)."""
        node, port = self.path[index]
        nxt = neighbor_of(node, port)
        if nxt is None:
            raise ProtocolError(
                f"circuit {self.circuit_id} hop {index} uses unconnected port"
            )
        return nxt


class CircuitTable:
    """Registry of all circuits ever created in a run.

    Provides id allocation, lookup, and the liveness invariants the test
    suite leans on.  Dead circuits are kept (they are few and make
    post-mortem analysis possible); use :meth:`live_circuits` for scans.
    """

    def __init__(self) -> None:
        self._next_id = 1
        self.circuits: dict[int, Circuit] = {}

    def create(self, src: int, dst: int, switch: int) -> Circuit:
        c = Circuit(circuit_id=self._next_id, src=src, dst=dst, switch=switch)
        self._next_id += 1
        self.circuits[c.circuit_id] = c
        return c

    def get(self, circuit_id: int) -> Circuit:
        try:
            return self.circuits[circuit_id]
        except KeyError:
            raise ProtocolError(f"unknown circuit id {circuit_id}") from None

    def live_circuits(self) -> list[Circuit]:
        return [
            c for c in self.circuits.values() if c.state is not CircuitState.DEAD
        ]

    def established(self) -> list[Circuit]:
        return [
            c
            for c in self.circuits.values()
            if c.state is CircuitState.ESTABLISHED
        ]

    def channels_in_use(self) -> dict[tuple[int, int, int], int]:
        """Map each reserved data channel to its owning circuit id.

        Raises :class:`ProtocolError` if two live circuits claim the same
        channel -- the cardinal resource-exclusivity invariant.
        """
        owners: dict[tuple[int, int, int], int] = {}
        for c in self.live_circuits():
            for key in c.held_channels():
                other = owners.get(key)
                if other is not None:
                    raise ProtocolError(
                        f"channel {key} claimed by circuits {other} "
                        f"and {c.circuit_id}"
                    )
                owners[key] = c.circuit_id
        return owners
