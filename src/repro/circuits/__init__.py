"""Circuit-switching substrate: PCS control plane and wave data plane.

This package implements everything below the CLRP/CARP protocols:

* :mod:`repro.circuits.circuit` -- physical circuits and their lifecycle
  (``SETTING_UP -> ESTABLISHED -> RELEASING -> DEAD``).
* :mod:`repro.circuits.pcs_unit` -- the PCS routing control unit's status
  registers (Fig. 3: Channel Status, Direct/Reverse Channel Mappings,
  History Store, Ack Returned).
* :mod:`repro.circuits.probe` -- the routing probe (Fig. 4) and the MB-m
  misrouting-backtracking search that reserves circuits.
* :mod:`repro.circuits.control` -- acknowledgment, teardown and
  release-request control flits travelling on the control channels.
* :mod:`repro.circuits.wave` -- wave-pipelined data transfers over
  established circuits with end-to-end windowing flow control.
* :mod:`repro.circuits.plane` -- :class:`~repro.circuits.plane.WavePlane`,
  the per-network orchestrator that advances all of the above each cycle.
"""

from repro.circuits.circuit import Circuit, CircuitState, CircuitTable
from repro.circuits.control import ControlFlit, ControlFlitKind
from repro.circuits.pcs_unit import ChannelStatus, PCSControlUnit
from repro.circuits.plane import WavePlane
from repro.circuits.probe import Probe, ProbeStatus
from repro.circuits.wave import WaveTransfer

__all__ = [
    "ChannelStatus",
    "Circuit",
    "CircuitState",
    "CircuitTable",
    "ControlFlit",
    "ControlFlitKind",
    "PCSControlUnit",
    "Probe",
    "ProbeStatus",
    "WavePlane",
    "WaveTransfer",
]
