"""The PCS routing control unit's status registers (Fig. 3 of the paper).

One :class:`PCSControlUnit` per node.  For every output control channel
``(port, switch)`` it tracks:

* **Channel Status** -- free / reserved / faulty (extended to faults
  exactly as the paper suggests);
* **Ack Returned** -- whether the path-setup acknowledgment has passed
  through this channel (a circuit may only be force-released after this);
* **Direct / Reverse Channel Mappings** -- for circuits crossing this
  node, which input channel maps to which output channel and back (the
  reverse path carries acknowledgments and release requests);
* **History Store** -- per probe, the output links already searched from
  this node, so backtracking probes never search the same path twice
  (the livelock-freedom argument of Theorems 3 and 4).
"""

from __future__ import annotations

from enum import Enum

from repro.errors import ProtocolError


class ChannelStatus(Enum):
    FREE = "free"
    RESERVED = "reserved"
    FAULTY = "faulty"


class _ChannelRegisters:
    """Registers for one output control/data channel pair."""

    __slots__ = ("status", "circuit_id", "ack_returned")

    def __init__(self) -> None:
        self.status = ChannelStatus.FREE
        self.circuit_id: int | None = None
        self.ack_returned = False


class PCSControlUnit:
    """Status registers of one node's PCS routing control unit.

    Channels are addressed by ``(port, switch)`` with ``port`` a physical
    output port of the node and ``switch`` in ``[1, k]`` (stored 0-based
    as ``0..k-1``).
    """

    def __init__(self, node: int, num_ports: int, num_switches: int) -> None:
        self.node = node
        self.num_ports = num_ports
        self.num_switches = num_switches
        # Flat registers, indexed port * num_switches + switch (port-major,
        # switch-minor, like the old dict's insertion order).
        self._regs: list[_ChannelRegisters] = [
            _ChannelRegisters() for _ in range(num_ports * num_switches)
        ]
        # Direct mapping: input (port, switch) -> output (port, switch) of
        # the circuit crossing this node; reverse mapping is the inverse.
        self.direct_map: dict[tuple[int, int], tuple[int, int]] = {}
        self.reverse_map: dict[tuple[int, int], tuple[int, int]] = {}
        # History Store: probe id -> output ports already searched here.
        self._history: dict[int, set[int]] = {}

    # -- channel status ----------------------------------------------------

    def _reg(self, port: int, switch: int) -> _ChannelRegisters:
        if 0 <= port < self.num_ports and 0 <= switch < self.num_switches:
            return self._regs[port * self.num_switches + switch]
        raise ProtocolError(
            f"node {self.node} has no channel (port={port}, switch={switch})"
        )

    def status(self, port: int, switch: int) -> ChannelStatus:
        return self._reg(port, switch).status

    def owner(self, port: int, switch: int) -> int | None:
        return self._reg(port, switch).circuit_id

    def ack_returned(self, port: int, switch: int) -> bool:
        return self._reg(port, switch).ack_returned

    def mark_faulty(self, port: int, switch: int) -> None:
        reg = self._reg(port, switch)
        if reg.status is ChannelStatus.RESERVED:
            raise ProtocolError(
                f"cannot mark reserved channel ({port},{switch}) faulty "
                f"at node {self.node}"
            )
        reg.status = ChannelStatus.FAULTY

    def reserve(self, port: int, switch: int, circuit_id: int) -> None:
        reg = self._reg(port, switch)
        if reg.status is not ChannelStatus.FREE:
            raise ProtocolError(
                f"node {self.node} channel ({port},{switch}) not free: "
                f"{reg.status.value} (owner {reg.circuit_id})"
            )
        reg.status = ChannelStatus.RESERVED
        reg.circuit_id = circuit_id
        reg.ack_returned = False

    def release(self, port: int, switch: int, circuit_id: int) -> None:
        reg = self._reg(port, switch)
        if reg.status is not ChannelStatus.RESERVED or reg.circuit_id != circuit_id:
            raise ProtocolError(
                f"node {self.node} channel ({port},{switch}) not held by "
                f"circuit {circuit_id} (status {reg.status.value}, "
                f"owner {reg.circuit_id})"
            )
        reg.status = ChannelStatus.FREE
        reg.circuit_id = None
        reg.ack_returned = False

    def set_ack_returned(self, port: int, switch: int, circuit_id: int) -> None:
        reg = self._reg(port, switch)
        if reg.circuit_id != circuit_id:
            raise ProtocolError(
                f"ack for circuit {circuit_id} crossed channel "
                f"({port},{switch}) at node {self.node} owned by "
                f"{reg.circuit_id}"
            )
        reg.ack_returned = True

    # -- channel mappings ----------------------------------------------------

    def map_through(
        self,
        in_key: tuple[int, int] | None,
        out_key: tuple[int, int],
    ) -> None:
        """Record the direct/reverse mapping for a circuit hop.

        ``in_key`` is ``(input port, switch)`` as seen at this node (None
        at the circuit's source node, where the circuit begins locally).
        """
        if in_key is not None:
            self.direct_map[in_key] = out_key
            self.reverse_map[out_key] = in_key

    def unmap_through(self, out_key: tuple[int, int]) -> None:
        in_key = self.reverse_map.pop(out_key, None)
        if in_key is not None:
            self.direct_map.pop(in_key, None)

    def next_hop(self, in_key: tuple[int, int]) -> tuple[int, int] | None:
        """Direct mapping lookup: where does the circuit go from here?"""
        return self.direct_map.get(in_key)

    def prev_hop(self, out_key: tuple[int, int]) -> tuple[int, int] | None:
        """Reverse mapping lookup: where did the circuit come from?"""
        return self.reverse_map.get(out_key)

    # -- history store ----------------------------------------------------

    def history(self, probe_id: int) -> set[int]:
        got = self._history.get(probe_id)
        if got is None:
            got = set()
            self._history[probe_id] = got
        return got

    def searched(self, probe_id: int, port: int) -> bool:
        hist = self._history.get(probe_id)
        return hist is not None and port in hist

    def record_search(self, probe_id: int, port: int) -> None:
        self.history(probe_id).add(port)

    def clear_history(self, probe_id: int) -> None:
        """Forget a finished probe (registers are recycled in hardware)."""
        self._history.pop(probe_id, None)

    # -- introspection ----------------------------------------------------

    def free_channels(self, switch: int) -> list[int]:
        k = self.num_switches
        return [
            p
            for p in range(self.num_ports)
            if self._regs[p * k + switch].status is ChannelStatus.FREE
        ]

    def reserved_channels(self) -> list[tuple[int, int]]:
        k = self.num_switches
        return [
            divmod(i, k)
            for i, reg in enumerate(self._regs)
            if reg.status is ChannelStatus.RESERVED
        ]
