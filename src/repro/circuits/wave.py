"""Wave-pipelined data transfers over established circuits.

Once a circuit's acknowledgment has returned, messages stream over it
*contention-free*: the paper removes the flit buffers from the circuit
path entirely, so there is no link-level flow control and no possibility
of blocking.  What remains is:

* the **pipeline fill delay** -- wavefronts take ``wire_delay`` base
  cycles per hop (synchronizers + wire), so the first flit arrives
  ``hops * wire_delay`` cycles after it is injected;
* the **streaming rate** -- ``wave_clock_ratio * channel_width_factor``
  flits per base cycle (the wave clock can be up to 4x the base clock per
  the authors' Spice studies, but splitting physical channels across the
  ``k`` switches narrows each slice);
* the **end-to-end windowing protocol** -- the source may have at most
  ``window`` unacknowledged flits outstanding; acknowledgments ride the
  reverse control path, so the round trip is twice the pipeline delay.
  Too small a window for a long circuit throttles the stream exactly as
  the paper warns ("this protocol requires deep delivery buffers").

The transfer is advanced cycle by cycle with a fractional-rate
accumulator; all arithmetic is integer-exact for rational rates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.circuits.circuit import Circuit
    from repro.network.message import Message


@dataclass
class WaveTransfer:
    """One message streaming over one established circuit.

    Lifecycle: created when the source NI wins the circuit's In-use bit;
    :meth:`advance` is called every base cycle; ``delivered_at`` fires when
    the last flit reaches the destination; ``completed_at`` (last ack back
    at the source) is when the In-use bit clears and the circuit becomes
    releasable again.
    """

    message: "Message"
    circuit: "Circuit"
    rate: float  # flits per base cycle
    window: int
    pipe_delay: int  # one-way pipeline fill, in base cycles
    start_cycle: int
    sent: int = 0
    acked: int = 0
    _budget: float = 0.0
    # (cycle, cumulative flits sent by end of cycle) for ack computation.
    _sent_log: deque = field(default_factory=deque)
    last_sent_cycle: int = -1
    delivered_at: int = -1
    completed_at: int = -1

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ProtocolError(f"transfer rate must be > 0, got {self.rate}")
        if self.window < 1:
            raise ProtocolError(f"window must be >= 1, got {self.window}")
        if self.pipe_delay < 0:
            raise ProtocolError(f"pipe_delay must be >= 0, got {self.pipe_delay}")

    @property
    def length(self) -> int:
        return self.message.length

    @property
    def rtt(self) -> int:
        """Ack round trip: pipeline down plus ack pipeline back."""
        return 2 * self.pipe_delay

    @property
    def done(self) -> bool:
        return self.completed_at >= 0

    def _acked_by(self, cycle: int) -> int:
        """Cumulative flits whose end-to-end ack has arrived by ``cycle``."""
        horizon = cycle - self.rtt
        acked = self.acked
        while self._sent_log and self._sent_log[0][0] <= horizon:
            acked = self._sent_log.popleft()[1]
        return acked

    def advance(self, cycle: int) -> int:
        """Advance one base cycle; returns flits sent this cycle."""
        if self.done:
            return 0
        self.acked = self._acked_by(cycle)
        moved = 0
        if self.sent < self.length:
            self._budget += self.rate
            in_flight = self.sent - self.acked
            can_send = min(
                int(self._budget), self.window - in_flight, self.length - self.sent
            )
            if can_send > 0:
                self.sent += can_send
                self._budget -= can_send
                self._sent_log.append((cycle, self.sent))
                self.last_sent_cycle = cycle
                moved = can_send
        if self.sent == self.length:
            if self.delivered_at < 0:
                self.delivered_at = self.last_sent_cycle + self.pipe_delay
            if cycle >= self.last_sent_cycle + self.rtt:
                self.completed_at = cycle
        return moved


def recommended_window(topology, config) -> int:
    """Smallest window that never throttles any circuit on this machine.

    Section 2: "a windowing protocol with a longer window should be used.
    A longer window also requires deeper buffers" -- the window must cover
    the in-flight volume of the worst-case circuit, i.e. the ack round
    trip of a diameter-length path at the full streaming rate.  A small
    slack absorbs the per-cycle granularity of the accumulator.

    Args:
        topology: the machine's topology (for the diameter).
        config: the :class:`~repro.sim.config.WaveConfig` in use.
    """
    import math

    rtt = 2 * topology.diameter() * config.wire_delay
    return int(math.ceil(config.flits_per_cycle * rtt)) + 4
