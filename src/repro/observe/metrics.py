"""Metric registry: named gauges and counters sampled into time series.

The tracer (:mod:`repro.observe.trace`) answers "what happened";
this module answers "how much, over time".  A :class:`MetricRegistry`
is a namespace of :class:`~repro.sim.stats.TimeSeries`; a
:class:`NetworkSampler` walks a live network on a configurable cadence
and records the standard instrument set:

* per-link wormhole utilization (flit deltas per interval, so a sample
  is the *interval's* utilization, not a lifetime average) -- mean and
  max across links, optionally one series per directed link;
* circuit-plane streamed flits per interval (from the plane's
  persistent per-channel tally, so torn-down circuits keep counting);
* occupancy gauges: in-flight probes / control flits / transfers,
  outstanding messages;
* deltas of every :class:`~repro.sim.stats.StatsCollector` counter
  (``probe.backtracks``, ``wormhole.credit_stall``, ...), under
  ``ctr.``.

Sampling is pull-based: the :class:`~repro.sim.engine.Simulator` calls
:meth:`NetworkSampler.maybe_sample` once per stepped cycle (one ``None``
check when no sampler is attached) and caps idle fast-forward jumps at
:attr:`NetworkSampler.next_due`, so cadence points land on exact cycles.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.sim.stats import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network


class MetricRegistry:
    """A namespace of named time series with summary statistics."""

    def __init__(self) -> None:
        self.series: dict[str, TimeSeries] = {}

    def series_for(self, name: str) -> TimeSeries:
        got = self.series.get(name)
        if got is None:
            got = TimeSeries(name)
            self.series[name] = got
        return got

    def record(self, name: str, cycle: int, value: float) -> None:
        self.series_for(name).record(cycle, value)

    def __len__(self) -> int:
        return len(self.series)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-series ``{n, mean, max, last}`` -- JSON-able, used as the
        per-job metric summary carried by orchestrator result stores."""
        out: dict[str, dict[str, float]] = {}
        for name in sorted(self.series):
            ts = self.series[name]
            if not ts.values:
                out[name] = {"n": 0, "mean": math.nan, "max": math.nan,
                             "last": math.nan}
                continue
            out[name] = {
                "n": len(ts.values),
                "mean": sum(ts.values) / len(ts.values),
                "max": max(ts.values),
                "last": ts.values[-1],
            }
        return out


class NetworkSampler:
    """Samples a network's standard instruments every ``every`` cycles.

    Args:
        network: the machine to instrument (also fixes the first due
            cycle: ``network.cycle + every``).
        every: sampling cadence in cycles (>= 1).
        registry: record into an existing registry (default: fresh one).
        per_link: additionally record one series per directed link
            (``link.<node>.<port>``) -- O(links) series, so off by
            default; the aggregate mean/max series are always recorded.
    """

    def __init__(
        self,
        network: "Network",
        every: int,
        *,
        registry: MetricRegistry | None = None,
        per_link: bool = False,
    ) -> None:
        if every < 1:
            raise ValueError(f"sampling cadence must be >= 1, got {every}")
        self.network = network
        self.every = every
        self.registry = registry if registry is not None else MetricRegistry()
        self.per_link = per_link
        self.next_due = network.cycle + every
        self.samples_taken = 0
        self._last_cycle = network.cycle
        self._last_link_flits: dict[tuple[int, int], int] = {
            (router.node, port): flits
            for router in network.routers
            for port, flits in enumerate(router.link_flits)
            if router.downstream[port] is not None
        }
        self._last_counters: dict[str, int] = dict(network.stats.counters)
        self._last_streamed = self._streamed_total()

    def _streamed_total(self) -> int:
        plane = self.network.plane
        if plane is None:
            return 0
        return sum(plane.streamed_by_channel.values())

    # -- sampling -------------------------------------------------------

    def maybe_sample(self, network: "Network") -> bool:
        """Sample iff the cadence cycle has arrived; returns True if so."""
        if network.cycle < self.next_due:
            return False
        self.sample(network)
        return True

    def flush(self, network: "Network") -> bool:
        """Take a final off-cadence sample at the current cycle.

        Used at end of run so the last partial interval is not lost;
        a no-op (returns False) when the current cycle was already
        sampled, so flushing twice cannot duplicate a row.
        """
        if network.cycle <= self._last_cycle and self.samples_taken:
            return False
        self.sample(network)
        return True

    def sample(self, network: "Network") -> None:
        """Record one sample row at the network's current cycle."""
        cycle = network.cycle
        interval = max(1, cycle - self._last_cycle)
        reg = self.registry

        # Per-link utilization over the interval (delta flits / cycles).
        utils: list[float] = []
        for router in network.routers:
            node = router.node
            for port, flits in enumerate(router.link_flits):
                key = (node, port)
                if key not in self._last_link_flits:
                    continue
                delta = flits - self._last_link_flits[key]
                self._last_link_flits[key] = flits
                util = delta / interval
                utils.append(util)
                if self.per_link:
                    reg.record(f"link.{node}.{port}", cycle, util)
        if utils:
            reg.record("wormhole.link_util.mean", cycle,
                       sum(utils) / len(utils))
            reg.record("wormhole.link_util.max", cycle, max(utils))

        # Circuit plane: streamed flits per interval plus occupancy.
        plane = network.plane
        if plane is not None:
            streamed = self._streamed_total()
            reg.record("circuit.streamed_flits", cycle,
                       streamed - self._last_streamed)
            self._last_streamed = streamed
            reg.record("plane.probes", cycle, len(plane.probes))
            reg.record("plane.control_flits", cycle,
                       len(plane.control_flits))
            reg.record("plane.transfers", cycle, len(plane.transfers))
            reg.record("plane.live_circuits", cycle,
                       len(plane.table.live_circuits()))

        reg.record("messages.outstanding", cycle, network.stats.outstanding)

        # Protocol counter deltas (events per interval).
        counters = network.stats.counters
        for name, value in counters.items():
            last = self._last_counters.get(name, 0)
            if value != last or name in self._last_counters:
                reg.record(f"ctr.{name}", cycle, value - last)
            self._last_counters[name] = value

        self.samples_taken += 1
        self._last_cycle = cycle
        self.next_due = cycle + self.every
