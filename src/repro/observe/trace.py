"""Bounded structured event tracing.

:class:`Tracer` is the observability layer's event sink: a *ring buffer*
of typed :class:`~repro.sim.events.Event` records with a hard capacity.
It speaks the same ``emit(cycle, kind, node, subject, **detail)``
protocol as :class:`~repro.sim.events.EventLog`, so every existing
emission site (``plane.log``, ``network.log``, ``router.log``,
``ni.log``) accepts either sink unchanged -- the difference is the
overflow policy:

* ``EventLog`` (append-only, optional cap) **drops the newest** events
  once full -- right for post-mortems of a run's *beginning*;
* ``Tracer`` (ring) **overwrites the oldest** -- right for long runs
  where the interesting window is *the end* (the crash, the fault, the
  saturation knee), and for bounded-memory always-on tracing.

Tracing off is the default and costs one ``is not None`` check per
event site: the hot paths stay O(active).  Enabled, each record is one
tuple-ish dataclass append -- no formatting, no I/O -- so a traced smoke
run stays interactive; rendering and export happen after the run
(:mod:`repro.observe.export`).
"""

from __future__ import annotations

from collections import Counter, deque

from repro.sim.events import Event, EventKind, EventLog

#: Default ring capacity: enough for a few thousand messages' worth of
#: protocol events on an 8x8 mesh without surprising memory use.
DEFAULT_TRACE_LIMIT = 200_000


class Tracer(EventLog):
    """Ring-buffer event sink, drop-in for :class:`EventLog`.

    Inherits the query helpers (``of_kind`` / ``for_circuit`` /
    ``between`` / ``render``); only storage and overflow differ.
    """

    def __init__(self, limit: int = DEFAULT_TRACE_LIMIT) -> None:
        if limit < 1:
            raise ValueError(f"trace limit must be >= 1, got {limit}")
        # Deliberately no super().__init__(): the ring replaces the list
        # and ``dropped`` becomes derived state (a property below).
        self.capacity = limit
        self.events: deque[Event] = deque(maxlen=limit)
        self.emitted = 0  # total records ever emitted (monotonic)

    def emit(self, cycle: int, kind: EventKind, node: int, subject: int,
             **detail) -> None:
        self.emitted += 1
        self.events.append(Event(cycle, kind, node, subject, detail))

    @property
    def dropped(self) -> int:
        """Records overwritten by the ring (oldest-first)."""
        return self.emitted - len(self.events)

    # -- summaries ------------------------------------------------------

    def kind_counts(self) -> dict[str, int]:
        """Retained records per event kind (sorted by name)."""
        counts = Counter(e.kind.value for e in self.events)
        return dict(sorted(counts.items()))

    def span(self) -> tuple[int, int]:
        """(first, last) retained cycle; ``(0, 0)`` when empty."""
        if not self.events:
            return (0, 0)
        return (self.events[0].cycle, self.events[-1].cycle)

    def summary(self) -> dict:
        """JSON-able overview used by CLI reports and job metrics."""
        first, last = self.span()
        return {
            "emitted": self.emitted,
            "retained": len(self.events),
            "dropped": self.dropped,
            "capacity": self.capacity,
            "first_cycle": first,
            "last_cycle": last,
            "kinds": self.kind_counts(),
        }
