"""Leveled logging for the simulator and CLI.

Everything that is not *report output* (tables, summaries the user asked
for) goes through the ``repro`` logger: progress lines at INFO,
diagnostic chatter (fault campaigns, sampler cadence, trace drops) at
DEBUG.  Report output stays on plain ``print`` in the CLI's output
paths, which are the only places ruff's ``T201`` rule exempts.

:func:`configure` is called once per CLI ``main()`` invocation; it
rebinds the handler to the *current* ``sys.stdout`` so pytest's capsys
redirection sees logger output exactly like print output.
"""

from __future__ import annotations

import logging
import sys

ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """The package logger, or a ``repro.<name>`` child."""
    if not name:
        return logging.getLogger(ROOT_NAME)
    if name.startswith(ROOT_NAME + ".") or name == ROOT_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")


def configure(*, verbose: int = 0, stream=None) -> logging.Logger:
    """(Re)configure the ``repro`` logger.

    verbose 0 -> INFO (progress lines only), 1 -> DEBUG, 2+ -> DEBUG
    with cycle-stamped formatting.  Replaces any previous handler so
    repeated ``main()`` calls (tests) bind the current stdout.
    """
    logger = logging.getLogger(ROOT_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
    if verbose >= 2:
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
    else:
        handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG if verbose >= 1 else logging.INFO)
    logger.propagate = False
    return logger
