"""Exporters: Chrome trace-event / Perfetto JSON and JSONL metric dumps.

The Chrome trace-event format (also loaded by Perfetto's
``ui.perfetto.dev``) is a JSON object with a ``traceEvents`` list; each
event carries a phase ``ph``, a timestamp ``ts`` (microseconds -- we map
one simulated cycle to one microsecond), and process/thread ids ``pid``
/ ``tid``.  The export maps the simulation onto it as:

* **one track per router** -- ``pid 0`` is the machine, ``tid n`` is
  router ``n`` (named via ``M`` metadata events);
* **slices** (``ph "X"``) on the source router's track for each
  circuit's life: a ``setup c<id>`` slice from probe launch to
  establishment and a ``circuit c<id>`` slice from establishment to
  release (or the end of the trace);
* **flow events** (``ph "s"/"t"/"f"``) with ``id = circuit id`` linking
  a probe's hops -- instants on the tracks of the nodes it visited -- to
  its circuit's lifetime slice;
* **instants** (``ph "i"``) for probe hops/backtracks/waits, worm
  head/tail advances, teardowns, retransmits; fault kills/heals get
  global scope (``"g"``) so they cut across every track;
* **counter tracks** (``ph "C"``) for every series of an optional
  :class:`~repro.observe.metrics.MetricRegistry`.

:func:`validate_chrome_trace` schema-checks an exported object (CI runs
it against a traced smoke sim); :func:`write_metrics_jsonl` dumps a
registry as one self-describing JSON object per sample.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.observe.metrics import MetricRegistry
from repro.sim.events import Event, EventKind, EventLog

_PID = 0

_PROBE_KINDS = {
    EventKind.PROBE_LAUNCH,
    EventKind.PROBE_HOP,
    EventKind.PROBE_BACKTRACK,
    EventKind.PROBE_WAIT,
    EventKind.PROBE_FAIL,
}

#: Phases the exporter emits; the validator accepts exactly these.
_KNOWN_PHASES = {"X", "i", "s", "t", "f", "C", "M"}


def _instant(ev: Event, *, name: str, cat: str, scope: str = "t") -> dict:
    out = {
        "name": name,
        "cat": cat,
        "ph": "i",
        "ts": ev.cycle,
        "pid": _PID,
        "tid": ev.node,
        "s": scope,
    }
    if ev.detail:
        out["args"] = {k: _jsonable(v) for k, v in ev.detail.items()}
    return out


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _flow(ph: str, ev: Event, flow_id: int, *, name: str) -> dict:
    out = {
        "name": name,
        "cat": "circuit-flow",
        "ph": ph,
        "id": flow_id,
        "ts": ev.cycle,
        "pid": _PID,
        "tid": ev.node,
    }
    if ph == "f":
        out["bp"] = "e"  # bind to the enclosing slice
    return out


def chrome_trace_events(
    log: EventLog, *, registry: MetricRegistry | None = None
) -> list[dict]:
    """Render a log/tracer (and optional metric registry) as trace events."""
    events: list[dict] = []
    tracks: set[int] = set()
    end_cycle = 0

    # First pass: circuit lifecycle anchors for the slice/flow rendering.
    launched: dict[int, Event] = {}  # circuit_id -> PROBE_LAUNCH
    established: dict[int, Event] = {}
    released: dict[int, Event] = {}
    for ev in log:
        end_cycle = max(end_cycle, ev.cycle)
        tracks.add(ev.node)
        if ev.kind is EventKind.PROBE_LAUNCH:
            circuit = ev.detail.get("circuit")
            if isinstance(circuit, int):
                launched[circuit] = ev
        elif ev.kind is EventKind.CIRCUIT_ESTABLISHED:
            established[ev.subject] = ev
        elif ev.kind in (EventKind.CIRCUIT_RELEASED,
                         EventKind.CIRCUIT_FAULT_TEARDOWN):
            released.setdefault(ev.subject, ev)

    # Circuit slices: setup (launch -> established) and live
    # (established -> released/end), on the source router's track.
    for circuit_id, est in sorted(established.items()):
        start = launched.get(circuit_id)
        if start is not None and est.cycle >= start.cycle:
            events.append({
                "name": f"setup c{circuit_id}",
                "cat": "circuit",
                "ph": "X",
                "ts": start.cycle,
                "dur": est.cycle - start.cycle,
                "pid": _PID,
                "tid": est.node,
                "args": {"circuit": circuit_id},
            })
        rel = released.get(circuit_id)
        end = rel.cycle if rel is not None else end_cycle
        events.append({
            "name": f"circuit c{circuit_id}",
            "cat": "circuit",
            "ph": "X",
            "ts": est.cycle,
            "dur": max(0, end - est.cycle),
            "pid": _PID,
            "tid": est.node,
            "args": {
                "circuit": circuit_id,
                "dst": _jsonable(est.detail.get("dst")),
                "hops": _jsonable(est.detail.get("hops")),
            },
        })

    for ev in log:
        kind = ev.kind
        if kind in _PROBE_KINDS:
            circuit = ev.detail.get("circuit")
            events.append(_instant(ev, name=kind.value, cat="probe"))
            if isinstance(circuit, int):
                if kind is EventKind.PROBE_LAUNCH:
                    events.append(
                        _flow("s", ev, circuit, name="circuit setup")
                    )
                elif kind is EventKind.PROBE_HOP:
                    events.append(
                        _flow("t", ev, circuit, name="circuit setup")
                    )
        elif kind is EventKind.CIRCUIT_ESTABLISHED:
            if ev.subject in launched:
                events.append(
                    _flow("f", ev, ev.subject, name="circuit setup")
                )
        elif kind in (EventKind.WORM_HEAD_ADVANCE,
                      EventKind.WORM_TAIL_ADVANCE):
            events.append(
                _instant(ev, name=f"{kind.value} m{ev.subject}",
                         cat="wormhole")
            )
        elif kind in (EventKind.LINK_KILLED, EventKind.LINK_HEALED):
            events.append(
                _instant(ev, name=kind.value, cat="fault", scope="g")
            )
        elif kind in (EventKind.CIRCUIT_RESERVED, EventKind.ACK_HOP,
                      EventKind.RELEASE_REQUESTED, EventKind.TEARDOWN_START,
                      EventKind.TRANSFER_START, EventKind.TRANSFER_DELIVERED,
                      EventKind.TRANSFER_COMPLETE, EventKind.PHASE_CHANGE,
                      EventKind.CACHE_EVICT, EventKind.BUFFER_REALLOC,
                      EventKind.CIRCUIT_FAULT_TEARDOWN,
                      EventKind.PROBE_FAULT_ABORT, EventKind.WORM_DROPPED,
                      EventKind.RETRANSMIT):
            events.append(_instant(ev, name=kind.value, cat="protocol"))
        # CIRCUIT_ESTABLISHED / CIRCUIT_RELEASED render as slices above.

    if registry is not None:
        for name in sorted(registry.series):
            ts = registry.series[name]
            for cycle, value in zip(ts.times, ts.values):
                events.append({
                    "name": name,
                    "cat": "metric",
                    "ph": "C",
                    "ts": cycle,
                    "pid": _PID,
                    "tid": 0,
                    "args": {"value": value},
                })

    meta: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": _PID,
        "tid": 0,
        "args": {"name": "repro wave-switching simulation"},
    }]
    for tid in sorted(tracks):
        meta.append({
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "args": {"name": f"router {tid}"},
        })
    return meta + events


def chrome_trace(
    log: EventLog, *, registry: MetricRegistry | None = None
) -> dict:
    """Full trace object: ``{"traceEvents": [...], ...}`` (validated)."""
    obj = {
        "traceEvents": chrome_trace_events(log, registry=registry),
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "1 ts = 1 simulated cycle (as us)"},
    }
    validate_chrome_trace(obj)
    return obj


def write_chrome_trace(
    path, log: EventLog, *, registry: MetricRegistry | None = None
) -> int:
    """Write a validated trace JSON file; returns the event count."""
    obj = chrome_trace(log, registry=registry)
    Path(path).write_text(json.dumps(obj) + "\n", encoding="utf-8")
    return len(obj["traceEvents"])


def validate_chrome_trace(obj) -> None:
    """Schema-check a trace object; raises ``ValueError`` on violations.

    Checks the fields the Perfetto / ``chrome://tracing`` loaders
    require: a ``traceEvents`` list of objects, each with a known phase,
    a string name, integer ``pid``/``tid``, a numeric non-negative
    ``ts`` (except ``M`` metadata, which may omit it), ``dur`` on
    complete events, ``id`` on flow events, and a scope on instants.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"trace must be a JSON object, got {type(obj).__name__}")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace object must carry a 'traceEvents' list")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{where}: events must be objects")
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            raise ValueError(f"{where}: unknown phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise ValueError(f"{where}: missing event name")
        if not isinstance(ev.get("pid"), int) or not isinstance(
            ev.get("tid"), int
        ):
            raise ValueError(f"{where}: pid/tid must be integers")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"{where}: ts must be a number >= 0")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: complete event needs dur >= 0")
        if ph in ("s", "t", "f") and not isinstance(ev.get("id"), int):
            raise ValueError(f"{where}: flow event needs an integer id")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            raise ValueError(f"{where}: instant needs scope t/p/g")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(f"{where}: counter event needs args")


def write_metrics_jsonl(path, registry: MetricRegistry) -> int:
    """Dump a registry as JSONL: one ``{"series", "cycle", "value"}``
    object per sample, in series-name then time order.  Returns the
    number of lines written."""
    lines = 0
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for name in sorted(registry.series):
            ts = registry.series[name]
            for cycle, value in zip(ts.times, ts.values):
                fh.write(json.dumps(
                    {"series": name, "cycle": cycle, "value": value}
                ) + "\n")
                lines += 1
    return lines


def read_metrics_jsonl(path) -> MetricRegistry:
    """Inverse of :func:`write_metrics_jsonl` (round-trip for analysis)."""
    registry = MetricRegistry()
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        registry.record(row["series"], row["cycle"], row["value"])
    return registry


def observe_headline(observe: dict | None) -> dict | None:
    """Compact a per-job ``observe`` summary for streaming.

    Orchestrated jobs with ``metrics_every`` set carry a full per-series
    ``{n, mean, max, last}`` summary in their result metrics; the job
    server streams completions as JSONL where that full table is noise.
    The headline keeps the sampling cadence and each series' final value
    -- enough to watch a campaign converge live -- while the complete
    summary stays in the result store.
    """
    if not observe:
        return None
    series = observe.get("series") or {}
    return {
        "every": observe.get("every"),
        "samples": observe.get("samples"),
        "last": {name: stats.get("last") for name, stats in series.items()},
    }
