"""Cycle-level observability: tracing, metric sampling, trace export.

Three layers, composable and all off by default:

* :class:`~repro.observe.trace.Tracer` -- bounded ring buffer of typed
  protocol events, attached via ``Network.attach_event_log``;
* :class:`~repro.observe.metrics.NetworkSampler` /
  :class:`~repro.observe.metrics.MetricRegistry` -- cadence-sampled
  gauge and counter time series;
* :mod:`~repro.observe.export` -- Chrome trace-event / Perfetto JSON
  and JSONL metric dumps.

See ``docs/OBSERVABILITY.md`` for the walkthrough.
"""

from repro.observe.export import (
    chrome_trace,
    chrome_trace_events,
    observe_headline,
    read_metrics_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.observe.logbook import configure, get_logger
from repro.observe.metrics import MetricRegistry, NetworkSampler
from repro.observe.trace import DEFAULT_TRACE_LIMIT, Tracer

__all__ = [
    "DEFAULT_TRACE_LIMIT",
    "MetricRegistry",
    "NetworkSampler",
    "Tracer",
    "chrome_trace",
    "chrome_trace_events",
    "configure",
    "get_logger",
    "observe_headline",
    "read_metrics_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics_jsonl",
]
