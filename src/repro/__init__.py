"""repro: a reproduction of Duato, López & Yalamanchili,
"Deadlock- and Livelock-Free Routing Protocols for Wave Switching"
(IPPS 1997).

A flit-level, cycle-accurate simulator of wave-switched interconnection
networks: hybrid routers combining a wormhole subsystem (S0) with
wave-pipelined circuit switches (S1..Sk), plus the paper's two routing
protocols -- CLRP (the network as a cache of circuits) and CARP
(compiler-directed circuits) -- with executable versions of its
deadlock- and livelock-freedom theorems.

Quickstart::

    from repro import (
        NetworkConfig, Network, Simulator, MessageFactory,
        UniformPattern, uniform_workload, SimRandom,
    )

    config = NetworkConfig(topology="mesh", dims=(4, 4), protocol="clrp")
    net = Network(config)
    factory = MessageFactory()
    workload = uniform_workload(
        factory, UniformPattern(config.num_nodes),
        num_nodes=config.num_nodes, offered_load=0.05, length=32,
        duration=2000, rng=SimRandom(1),
    )
    result = Simulator(net, workload).run(50_000)
    print(result.summary())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.analysis import (
    ExperimentResult,
    format_series,
    format_table,
    run_experiment,
    run_load_sweep,
)
from repro.core import (
    CARPEngine,
    CLRPEngine,
    CircuitCache,
    CircuitClose,
    CircuitOpen,
    WaveRouter,
)
from repro.errors import (
    ConfigError,
    DeadlockError,
    LivelockError,
    ProtocolError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)
from repro.network import Message, MessageFactory, Network
from repro.sim import (
    NetworkConfig,
    ReliabilityConfig,
    SimRandom,
    SimulationResult,
    Simulator,
    StatsCollector,
    SwitchingMode,
    WaveConfig,
    WormholeConfig,
)
from repro.topology import (
    FaultEvent,
    FaultSchedule,
    FaultSet,
    Hypercube,
    Mesh,
    Torus,
    build_topology,
    derive_fault_rng,
)
from repro.traffic import (
    LocalityWorkloadBuilder,
    TransposePattern,
    UniformPattern,
    all_to_all_workload,
    compile_directives,
    make_pattern,
    stencil_workload,
    uniform_workload,
)
from repro.verify import check_all_invariants

__version__ = "1.0.0"

__all__ = [
    "CARPEngine",
    "CLRPEngine",
    "CircuitCache",
    "CircuitClose",
    "CircuitOpen",
    "ConfigError",
    "DeadlockError",
    "ExperimentResult",
    "FaultEvent",
    "FaultSchedule",
    "FaultSet",
    "Hypercube",
    "LivelockError",
    "LocalityWorkloadBuilder",
    "Mesh",
    "Message",
    "MessageFactory",
    "Network",
    "NetworkConfig",
    "ProtocolError",
    "ReliabilityConfig",
    "ReproError",
    "RoutingError",
    "SimRandom",
    "SimulationError",
    "SimulationResult",
    "Simulator",
    "StatsCollector",
    "SwitchingMode",
    "TopologyError",
    "Torus",
    "TransposePattern",
    "UniformPattern",
    "WaveConfig",
    "WaveRouter",
    "WormholeConfig",
    "all_to_all_workload",
    "build_topology",
    "check_all_invariants",
    "compile_directives",
    "derive_fault_rng",
    "format_series",
    "format_table",
    "make_pattern",
    "run_experiment",
    "run_load_sweep",
    "stencil_workload",
    "uniform_workload",
]
