"""Command-line front-end: run simulations without writing Python.

Usage::

    python -m repro run   --topology mesh --dims 8x8 --protocol clrp \
                          --load 0.2 --length 64 --duration 5000
    python -m repro sweep --protocol clrp --loads 0.1,0.3,0.6 --length 128 \
                          --jobs 4
    python -m repro compare --load 0.3 --length 128 --jobs 3
    python -m repro batch campaign.json --jobs 8
    python -m repro chaos --dims 8x8 --mtbf 2000 --mttr 1000 --seeds 0,1,2

``run`` simulates one configuration and prints the delivery/latency/mode
report; ``sweep`` produces a throughput-vs-load table for one protocol;
``compare`` runs wormhole / CLRP / CARP side by side on the same traffic;
``batch`` executes a whole campaign file through the orchestrator with
caching and resume (see :mod:`repro.orchestrate.campaign` for the
schema); ``chaos`` runs a seeded random link-kill/heal campaign per
protocol x seed with the reliability layer on and asserts the delivery
contract -- every message delivered or reported, no deadlock.
``sweep``, ``compare``, ``batch`` and ``chaos`` accept ``--jobs N`` to
fan points out over worker processes -- results are bit-identical to a
serial run, merged in job order.

Any simulating subcommand takes ``--fault-fraction`` (static dead links),
``--mtbf``/``--mttr`` (random dynamic campaign), ``--fault-schedule
"cycle:kill|heal:node:port,..."`` (explicit events) and ``--reliable``
(end-to-end ack/retransmit layer).

Observability: ``repro trace <args>`` runs one configuration with event
tracing on and exports a Perfetto-loadable Chrome trace JSON (plus an
optional JSONL metrics dump); ``run`` and ``heatmap`` accept ``--trace``
/ ``--trace-limit`` / ``--trace-out`` for the same export, and every
simulating subcommand takes ``--metrics-every N`` to sample the metric
registry on an N-cycle cadence (sweep/compare/chaos/batch jobs then
carry per-job ``observe`` summaries in their result store).  ``-v``
(before the subcommand) raises log verbosity to DEBUG.

Service mode: ``repro serve`` starts the asyncio HTTP job server
(:mod:`repro.service`) with a sharded sqlite result store, per-tenant
fair scheduling and cross-campaign dedup; ``repro submit campaign.json
--follow`` sends a campaign to it and streams per-job results live;
``repro jobs`` lists campaigns/jobs and server statistics.  ``repro
store stats|compact|convert`` maintains result stores directly --
``compact`` rewrites a JSONL store to its last-record-wins snapshot and
reports how many superseded records were dropped, ``convert`` copies
records between the JSONL and sqlite backends.  Stores everywhere are
named either as a ``.jsonl`` path or ``sqlite:DIR``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

from repro.analysis.report import format_table
from repro.errors import ConfigError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.observe import (
    DEFAULT_TRACE_LIMIT,
    NetworkSampler,
    Tracer,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.observe.logbook import configure as configure_logging
from repro.observe.logbook import get_logger
from repro.orchestrate import (
    JobSpec,
    PoolProgress,
    ResultStore,
    WorkloadRecipe,
    load_campaign,
    open_store,
    run_jobs,
)
from repro.sim.config import (
    NetworkConfig,
    ReliabilityConfig,
    WaveConfig,
    WormholeConfig,
)
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.topology import (
    FaultSchedule,
    FaultSet,
    build_topology,
    registered_topologies,
)
from repro.topology.faults import derive_fault_rng
from repro.traffic.compiler import compile_directives
from repro.traffic.patterns import make_pattern
from repro.traffic.workloads import uniform_workload

logger = get_logger("cli")


def parse_dims(text: str) -> tuple[int, ...]:
    try:
        dims = tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise ConfigError(f"cannot parse dims {text!r}; expected e.g. 8x8")
    if not dims:
        raise ConfigError("dims must be non-empty")
    return dims


def build_config(args: argparse.Namespace, protocol: str | None = None) -> NetworkConfig:
    protocol = protocol if protocol is not None else args.protocol
    wave = None
    if protocol != "wormhole":
        wave = WaveConfig(
            num_switches=args.wave_switches,
            misroute_budget=args.misroute_budget,
            wave_clock_ratio=args.wave_clock_ratio,
            window=args.window,
            circuit_cache_size=args.cache_size,
            replacement=args.replacement,
            clrp_variant=args.clrp_variant,
        )
    return NetworkConfig(
        topology=args.topology,
        dims=parse_dims(args.dims),
        protocol=protocol,
        wormhole=WormholeConfig(
            vcs=args.vcs, buffer_depth=args.buffer_depth, routing=args.routing
        ),
        wave=wave,
        seed=args.seed,
        reliability=(
            ReliabilityConfig() if getattr(args, "reliable", False) else None
        ),
        backend=getattr(args, "backend", "active"),
    )


def build_items(config: NetworkConfig, args: argparse.Namespace, load: float):
    net_rng = SimRandom(args.seed)
    # Only the topology is needed for patterns; building a full Network
    # (routers, PCS units, caches at every node) per sweep point would be
    # pure setup overhead.
    topology = build_topology(config.topology, parse_dims(args.dims))
    pattern = make_pattern(args.pattern, topology, net_rng.stream("pattern"))
    msgs = uniform_workload(
        MessageFactory(),
        pattern,
        num_nodes=config.num_nodes,
        offered_load=load,
        length=args.length,
        duration=args.duration,
        rng=net_rng,
    )
    if config.protocol == "carp":
        items, _report = compile_directives(msgs)
        return items
    return msgs


def parse_fault_schedule(text: str, topology) -> FaultSchedule:
    """Parse ``cycle:kind:node:port,...`` into an explicit schedule."""
    sched = FaultSchedule(topology)
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        if len(fields) != 4:
            raise ConfigError(
                f"bad fault event {part!r}; expected cycle:kind:node:port"
            )
        raw_cycle, kind, raw_node, raw_port = fields
        try:
            cycle, node, port = int(raw_cycle), int(raw_node), int(raw_port)
        except ValueError:
            raise ConfigError(
                f"bad fault event {part!r}; cycle/node/port must be integers"
            )
        if kind == "kill":
            sched.schedule_kill(cycle, node, port)
        elif kind == "heal":
            sched.schedule_heal(cycle, node, port)
        else:
            raise ConfigError(
                f"bad fault event kind {kind!r}; expected kill or heal"
            )
    return sched


def build_faults(config: NetworkConfig, args: argparse.Namespace):
    fraction = getattr(args, "fault_fraction", 0.0)
    mtbf = getattr(args, "mtbf", 0)
    schedule_text = getattr(args, "fault_schedule", None)
    if not fraction and not mtbf and not schedule_text:
        return None
    if mtbf and schedule_text:
        raise ConfigError("--mtbf and --fault-schedule are mutually exclusive")
    topo = build_topology(config.topology, parse_dims(args.dims))
    if mtbf:
        faults = FaultSchedule.random_campaign(
            topo,
            mtbf=mtbf,
            mttr=getattr(args, "mttr", 0),
            horizon=args.max_cycles,
            rng=derive_fault_rng(args.seed),
        )
    elif schedule_text:
        faults = parse_fault_schedule(schedule_text, topo)
    else:
        faults = FaultSet(topo)
    if fraction:
        faults.fail_random_links(fraction, derive_fault_rng(args.seed))
    return faults


@dataclasses.dataclass
class Observed:
    """Observability instruments attached to a direct-run simulation."""

    tracer: Tracer | None = None
    sampler: NetworkSampler | None = None

    @property
    def registry(self):
        return self.sampler.registry if self.sampler is not None else None


def build_observability(net: Network, args: argparse.Namespace) -> Observed:
    """Attach tracer/sampler to a network per the CLI flags."""
    obs = Observed()
    if getattr(args, "trace", False):
        obs.tracer = Tracer(getattr(args, "trace_limit", DEFAULT_TRACE_LIMIT))
        net.attach_event_log(obs.tracer)
    every = getattr(args, "metrics_every", 0)
    if getattr(args, "metrics_out", None) and not every:
        raise ConfigError("--metrics-out requires --metrics-every N")
    if every:
        obs.sampler = NetworkSampler(net, every)
    return obs


def export_observability(args: argparse.Namespace, obs: Observed) -> None:
    """Write trace JSON / metrics JSONL outputs requested by the flags."""
    if obs.tracer is not None:
        out = getattr(args, "trace_out", None) or "repro-trace.json"
        count = write_chrome_trace(out, obs.tracer, registry=obs.registry)
        s = obs.tracer.summary()
        logger.info(
            "trace: %d event(s) retained of %d emitted (%d dropped) "
            "-> %s (%d trace events)",
            s["retained"], s["emitted"], s["dropped"], out, count,
        )
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out and obs.registry is not None:
        lines = write_metrics_jsonl(metrics_out, obs.registry)
        logger.info("metrics: %d sample(s) -> %s", lines, metrics_out)


def simulate(config: NetworkConfig, items, args: argparse.Namespace):
    net = Network(config, faults=build_faults(config, args))
    obs = build_observability(net, args)
    sim = Simulator(
        net,
        items,
        deadlock_check_interval=args.deadlock_check,
        progress_timeout=args.progress_timeout,
        sampler=obs.sampler,
    )
    result = sim.run(args.max_cycles)
    if obs.sampler is not None:
        obs.sampler.flush(net)
    export_observability(args, obs)
    return net, result, obs


def cmd_run(args: argparse.Namespace) -> int:
    config = build_config(args)
    items = build_items(config, args, args.load)
    net, result, _obs = simulate(config, items, args)
    print(f"machine : {config.describe()}")
    print(f"result  : {result.summary()}")
    breakdown = net.stats.mode_breakdown()
    if breakdown:
        total = sum(breakdown.values())
        print()
        print(
            format_table(
                ["mode", "messages", "share"],
                [(m, c, f"{c / total:.1%}") for m, c in sorted(breakdown.items())],
            )
        )
    hist = net.stats.latency_histogram()
    print()
    print(
        format_table(
            ["latency metric", "cycles"],
            [
                ("mean", net.stats.mean_latency()),
                ("p50", hist.percentile(50)),
                ("p95", hist.percentile(95)),
                ("max", hist.max),
            ],
        )
    )
    return 0 if result.delivered == result.injected else 1


def job_spec(
    args: argparse.Namespace,
    *,
    load: float,
    protocol: str | None = None,
    label: str = "",
) -> JobSpec:
    """Turn parsed CLI arguments into one declarative sweep-point spec.

    The throughput window follows ``run_experiment`` methodology: warmup
    at ``duration // 5`` (skip fill transient), window end at the last
    delivery -- so messages draining after the injection window still
    count, unlike the old ``duration // 5 .. duration`` cut-off.
    """
    config = build_config(args, protocol)
    recipe = WorkloadRecipe.make(
        "uniform",
        pattern=args.pattern,
        load=load,
        length=args.length,
        duration=args.duration,
    )
    return JobSpec(
        config=config,
        workload=recipe,
        label=label or f"{config.protocol}@{load:g}",
        max_cycles=args.max_cycles,
        warmup=args.duration // 5,
        fault_fraction=getattr(args, "fault_fraction", 0.0),
        deadlock_check_interval=args.deadlock_check,
        progress_timeout=args.progress_timeout,
        mtbf=getattr(args, "mtbf", 0),
        mttr=getattr(args, "mttr", 0),
        metrics_every=getattr(args, "metrics_every", 0),
    )


def _store_from_args(args: argparse.Namespace):
    path = getattr(args, "store", None)
    return open_store(path) if path else None


def cmd_sweep(args: argparse.Namespace) -> int:
    loads = [float(x) for x in args.loads.split(",")]
    specs = [job_spec(args, load=load) for load in loads]
    outcomes = run_jobs(
        specs, jobs=args.jobs, store=_store_from_args(args),
        timeout_s=args.job_timeout,
    )
    rows = []
    failures = 0
    for load, outcome in zip(loads, outcomes):
        if not outcome.ok:
            failures += 1
            logger.info("load %g: FAILED (%s: %s)", load,
                        outcome.failure["kind"],
                        outcome.failure["message"].splitlines()[0])
            rows.append((load, "failed", "-", "-"))
            continue
        m = outcome.metrics
        logger.info("load %g: throughput %.3f flits/node/cycle",
                    load, m["throughput"])
        rows.append(
            (load, m["throughput"], m["mean_latency"],
             f"{m['delivered']}/{m['injected']}")
        )
    print()
    print(
        format_table(
            ["offered load", "accepted", "mean latency", "delivered"], rows
        )
    )
    return 0 if failures == 0 else 1


def cmd_compare(args: argparse.Namespace) -> int:
    protocols = ("wormhole", "clrp", "carp")
    specs = [
        job_spec(args, load=args.load, protocol=protocol, label=protocol)
        for protocol in protocols
    ]
    outcomes = run_jobs(
        specs, jobs=args.jobs, store=_store_from_args(args),
        timeout_s=args.job_timeout,
    )
    rows = []
    failures = 0
    for protocol, outcome in zip(protocols, outcomes):
        if not outcome.ok:
            failures += 1
            logger.info("%s: FAILED (%s)", protocol, outcome.failure["kind"])
            rows.append((protocol, "failed", "-", "-"))
            continue
        m = outcome.metrics
        rows.append(
            (
                protocol,
                m["mean_latency"],
                m["p95_latency"],
                f"{m['delivered']}/{m['injected']}",
            )
        )
        logger.info("%s: done (%d cycles)", protocol, m["cycles"])
    print()
    print(
        format_table(
            ["protocol", "mean latency", "p95 latency", "delivered"], rows
        )
    )
    return 0 if failures == 0 else 1


def cmd_batch(args: argparse.Namespace) -> int:
    name, specs = load_campaign(args.campaign)
    store_path = args.store or str(
        Path(args.campaign).with_suffix(".results.jsonl")
    )
    store = open_store(store_path)
    logger.info("campaign %s: %d jobs, store %s, jobs=%d",
                name, len(specs), store_path, args.jobs)

    def progress(event: PoolProgress) -> None:
        if event.last is None:
            if event.cached:
                logger.info("[%d/%d] %d cached",
                            event.done, event.total, event.cached)
            return
        outcome = event.last
        state = outcome.status
        if not outcome.ok:
            state = f"failed:{outcome.failure['kind']}"
        logger.info("[%d/%d] %s %s (%.1fs)", event.done, event.total,
                    state, outcome.spec.label, outcome.elapsed_s)

    outcomes = run_jobs(
        specs,
        jobs=args.jobs,
        timeout_s=args.job_timeout,
        retries=args.retries,
        store=store,
        progress=progress,
    )
    rows = []
    failures = []
    for outcome in outcomes:
        if outcome.ok:
            m = outcome.metrics
            rows.append(
                (
                    outcome.spec.label,
                    "cached" if outcome.from_cache else "ok",
                    m["mean_latency"],
                    m["throughput"],
                    f"{m['delivered']}/{m['injected']}",
                )
            )
        else:
            failures.append(outcome)
            rows.append(
                (outcome.spec.label, f"failed:{outcome.failure['kind']}",
                 "-", "-", "-")
            )
    print()
    print(
        format_table(
            ["job", "status", "mean latency", "throughput", "delivered"],
            rows,
        )
    )
    for outcome in failures:
        print(f"\nfailure: {outcome.spec.label} "
              f"({outcome.failure['kind']}, {outcome.attempts} attempt(s))")
        print(f"  {outcome.failure['message'].splitlines()[0]}")
    print(f"\n{len(outcomes) - len(failures)}/{len(outcomes)} jobs ok; "
          f"re-run to retry failures (completed points are cached).")
    return 0 if not failures else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """Randomized fault campaign with the delivery guarantee asserted.

    Every (protocol, seed) point runs with the reliability layer forced
    on under a seeded random kill/heal schedule.  A point passes when the
    run drains (no deadlock -- the periodic detector is always on) and
    every injected message is either delivered or reported as an explicit
    DeliveryFailure: ``injected == delivered + delivery_failures``.
    """
    if getattr(args, "fault_schedule", None):
        raise ConfigError("chaos derives its own schedule; drop --fault-schedule")
    protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    seeds = [int(s) for s in args.seeds.split(",")]
    mtbf = args.mtbf or 2000
    specs = []
    points = []
    for protocol in protocols:
        for seed in seeds:
            config = dataclasses.replace(
                build_config(args, protocol),
                seed=seed,
                reliability=ReliabilityConfig(),
            )
            recipe = WorkloadRecipe.make(
                "uniform",
                pattern=args.pattern,
                load=args.load,
                length=args.length,
                duration=args.duration,
            )
            specs.append(
                JobSpec(
                    config=config,
                    workload=recipe,
                    label=f"chaos/{protocol}#{seed}",
                    max_cycles=args.max_cycles,
                    fault_fraction=getattr(args, "fault_fraction", 0.0),
                    deadlock_check_interval=args.deadlock_check or 256,
                    progress_timeout=args.progress_timeout,
                    mtbf=mtbf,
                    mttr=args.mttr,
                    metrics_every=getattr(args, "metrics_every", 0),
                )
            )
            points.append(f"{protocol}#{seed}")
    logger.info("chaos: %d runs (%s %s, mtbf=%d, mttr=%d, load=%g)",
                len(specs), args.dims, args.topology, mtbf, args.mttr,
                args.load)
    outcomes = run_jobs(
        specs, jobs=args.jobs, store=_store_from_args(args),
        timeout_s=args.job_timeout,
    )
    rows = []
    violations = []
    for point, outcome in zip(points, outcomes):
        if not outcome.ok:
            violations.append(
                f"{point}: {outcome.failure['kind']}: "
                f"{outcome.failure['message'].splitlines()[0]}"
            )
            rows.append((point, "failed", "-", "-", "-", "-"))
            continue
        m = outcome.metrics
        counters = m["counters"]
        failures = counters.get("reliability.delivery_failures", 0)
        kills = counters.get("fault.links_killed", 0)
        retransmits = counters.get("reliability.retransmits", 0)
        unaccounted = m["injected"] - m["delivered"] - failures
        status = "ok"
        if not m["completed"]:
            status = "cut off"
            violations.append(f"{point}: run did not drain in "
                              f"{args.max_cycles} cycles")
        if unaccounted:
            status = "LOST"
            violations.append(
                f"{point}: {unaccounted} message(s) unaccounted for "
                f"(injected {m['injected']}, delivered {m['delivered']}, "
                f"reported failures {failures})"
            )
        rows.append(
            (point, status, f"{m['delivered']}/{m['injected']}",
             failures, retransmits, kills)
        )
    print()
    print(
        format_table(
            ["run", "status", "delivered", "reported failures",
             "retransmits", "links killed"],
            rows,
        )
    )
    if violations:
        print()
        for line in violations:
            print(f"violation: {line}")
        return 1
    print("\nall runs drained: every message delivered or reported, "
          "no deadlock detected.")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one configuration fully traced and export the Perfetto JSON.

    ``args.trace`` is forced on by the subcommand defaults, so
    :func:`simulate` attaches the ring-buffer tracer and writes the
    Chrome trace (plus the JSONL metrics dump when requested); this
    command adds the per-kind event census on top of the run report.
    """
    config = build_config(args)
    items = build_items(config, args, args.load)
    net, result, obs = simulate(config, items, args)
    print(f"machine : {config.describe()}")
    print(f"result  : {result.summary()}")
    summary = obs.tracer.summary()
    print()
    print(
        format_table(
            ["event kind", "count"],
            sorted(obs.tracer.kind_counts().items()),
        )
    )
    span = f"{summary['first_cycle']}..{summary['last_cycle']}"
    print(f"\n{summary['retained']} event(s) over cycles {span}"
          + (f" ({summary['dropped']} dropped; raise --trace-limit)"
             if summary["dropped"] else ""))
    return 0 if result.delivered == result.injected else 1


def cmd_heatmap(args: argparse.Namespace) -> int:
    from repro.analysis.viz import link_loadmap, node_heatmap

    config = build_config(args)
    items = build_items(config, args, args.load)
    net, result, _obs = simulate(config, items, args)
    print(f"machine : {config.describe()}")
    print(f"result  : {result.summary()}\n")
    print(link_loadmap(net, title=f"link load at offered {args.load:g}"))
    print()
    print(node_heatmap(
        net,
        lambda n: float(net.interfaces[n].messages_delivered),
        title="deliveries per node",
    ))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the async job server in the foreground (see repro.service)."""
    from repro.service import ServiceConfig, run_service

    journal: str | bool | None = args.journal
    if isinstance(journal, str) and journal.lower() == "off":
        journal = False
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        store=args.store,
        workers=args.workers,
        executor=args.executor,
        max_inflight_per_tenant=args.max_inflight,
        rate=args.rate,
        burst=args.burst,
        journal=journal,
        resume=args.resume,
        job_timeout_s=args.job_timeout,
        retries=args.retries,
        drain_timeout_s=args.drain_timeout,
    )
    run_service(config)
    return 0


def cmd_chaos_serve(args: argparse.Namespace) -> int:
    """Run the scripted kill-and-resume chaos scenario (dev/CI smoke)."""
    from repro.service.chaos import cli_chaos_serve

    return cli_chaos_serve(args)


def _client_errors(func):
    """Turn server/connection failures into friendly ConfigErrors."""
    from functools import wraps

    @wraps(func)
    def wrapper(args: argparse.Namespace) -> int:
        from repro.client import ServiceError

        try:
            return func(args)
        except ServiceError as exc:
            raise ConfigError(f"server at {args.url}: {exc}")
        except (ConnectionError, OSError) as exc:
            raise ConfigError(
                f"cannot reach job server at {args.url} ({exc}); "
                f"is `repro serve` running?"
            )

    return wrapper


@_client_errors
def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a campaign file to a running server via the client."""
    import json as _json

    from repro.client import Session

    try:
        document = _json.loads(Path(args.campaign).read_text(encoding="utf-8"))
    except (OSError, _json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot read campaign {args.campaign}: {exc}")
    session = Session(args.url, tenant=args.tenant)
    campaign = session.submit_campaign(
        document, priority=args.priority
    )
    logger.info("campaign %s (%s): %d job(s) submitted to %s",
                campaign.id, campaign.name, campaign.data["jobs"], args.url)
    if not args.follow:
        print(f"{campaign.id} {campaign.name}: {campaign.data['jobs']} "
              f"job(s) submitted")
        return 0
    for event in campaign.stream():
        if event.terminal:
            break
        state = "cached" if event.from_cache else event.status
        logger.info("%s %s (%.1fs)", state, event.label, event.elapsed_s)
    campaign.refresh()
    rows = []
    failures = 0
    for job in campaign.jobs:
        m = job.metrics
        if job.status in ("ok", "cached") and m is not None:
            rows.append(
                (job.label, job.status, m["mean_latency"], m["throughput"],
                 f"{m['delivered']}/{m['injected']}")
            )
        else:
            failures += job.status == "failed"
            rows.append((job.label, job.status, "-", "-", "-"))
    print()
    print(format_table(
        ["job", "status", "mean latency", "throughput", "delivered"], rows
    ))
    counts = campaign.counts
    print(f"\n{campaign.status}: {counts.get('ok', 0)} ran, "
          f"{counts.get('cached', 0)} cached, "
          f"{counts.get('failed', 0)} failed")
    return 0 if campaign.status == "done" else 1


@_client_errors
def cmd_jobs(args: argparse.Namespace) -> int:
    """Query campaigns/jobs on a running server."""
    from repro.client import Session

    session = Session(args.url, tenant=args.tenant)
    if not args.campaign and not args.status and not args.all_jobs:
        rows = [
            (c.id, c.name, c.data["tenant"], c.status,
             c.counts.get("ok", 0) + c.counts.get("cached", 0),
             c.data["jobs"])
            for c in session.campaigns()
        ]
        print(format_table(
            ["id", "name", "tenant", "status", "done", "jobs"], rows
        ))
        stats = session.store_stats()
        print(f"\nserver: {stats['executed']} executed, "
              f"{stats['cache_hits']} cache hits, "
              f"{stats['coalesced']} coalesced, "
              f"{stats['pending']} pending "
              f"({stats['store']['backend']} store, "
              f"{stats['store']['records']} records)")
        return 0
    jobs = session.jobs
    if args.campaign:
        campaign = session.get_campaign(args.campaign)
        jobs = campaign.jobs
    if args.status:
        jobs = jobs.filter(status=args.status)
    rows = [
        (j.id, j.label, j.data["tenant"], j.status,
         f"{j.data['elapsed_s']:.2f}s" if j.data.get("elapsed_s") else "-")
        for j in jobs
    ]
    print(format_table(["id", "label", "tenant", "status", "elapsed"], rows))
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    """Result-store maintenance: stats, compact, convert."""
    from repro.orchestrate import copy_records

    if args.store_command == "stats":
        store = open_store(args.path)
        info = store.describe()
        rows = sorted(info.items())
        print(format_table(["field", "value"], rows))
        store.close()
        return 0
    if args.store_command == "compact":
        store = open_store(args.path)
        stats = store.compact()
        print(f"{args.path}: kept {stats.kept} record(s), "
              f"dropped {stats.dropped} superseded line(s)")
        store.close()
        return 0
    if args.store_command == "convert":
        src = open_store(args.path)
        dst = open_store(args.dest)
        copied = copy_records(src, dst)
        print(f"{args.path} -> {args.dest}: {copied} record(s) copied "
              f"({src.describe()['backend']} -> "
              f"{dst.describe()['backend']})")
        src.close()
        dst.close()
        return 0
    raise ConfigError(f"unknown store command {args.store_command!r}")


def _shipped_verify_configs() -> list[NetworkConfig]:
    """The configurations the repo ships and documents, for ``--all``."""
    return [
        NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None),
        NetworkConfig(topology="torus", dims=(4, 4), protocol="wormhole",
                      wave=None),
        NetworkConfig(topology="hypercube", dims=(2, 2, 2, 2),
                      protocol="wormhole", wave=None),
        NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None,
                      wormhole=WormholeConfig(vcs=3, routing="adaptive")),
        NetworkConfig(topology="torus", dims=(4, 4), protocol="wormhole",
                      wave=None,
                      wormhole=WormholeConfig(vcs=3, routing="adaptive")),
        NetworkConfig(dims=(4, 4), protocol="clrp"),
        NetworkConfig(topology="torus", dims=(4, 4), protocol="carp"),
        # Diameter-1 full mesh: deadlock-free with a single VC.
        NetworkConfig(topology="fullmesh", dims=(8,), protocol="wormhole",
                      wave=None, wormhole=WormholeConfig(vcs=1)),
        NetworkConfig(topology="fullmesh", dims=(8,), protocol="clrp",
                      wormhole=WormholeConfig(vcs=1)),
        # 2-ary 3-fly MIN: unidirectional stages, acyclic with one VC.
        NetworkConfig(topology="min", dims=(2, 2, 2), protocol="wormhole",
                      wave=None, wormhole=WormholeConfig(vcs=1)),
        NetworkConfig(topology="min", dims=(2, 2, 2), protocol="clrp",
                      wormhole=WormholeConfig(vcs=1)),
    ]


def _check_certificate_dir(directory: str) -> int:
    """Replay every committed certificate in a directory; 0 iff all hold."""
    from repro.verify.smt import check_certificate_files

    paths = sorted(Path(directory).glob("*.json"))
    if not paths:
        print(f"no certificates found under {directory}", file=sys.stderr)
        return 1
    failures = 0
    for path, check in check_certificate_files(paths):
        status = "ok" if check.ok else "FAIL"
        print(f"{status:4s} {path.name}: {check.detail}")
        for error in check.errors:
            print(f"       {error}")
        failures += not check.ok
    print(f"{len(paths) - failures}/{len(paths)} certificates replayed "
          "clean (no solver)")
    return 0 if not failures else 1


def cmd_verify_cdg(args: argparse.Namespace) -> int:
    """Statically prove (or refute) deadlock freedom for configurations.

    Builds the extended channel-dependency graph from topology + routing
    + protocol config alone -- no simulation -- and checks the
    resource-separation conditions of Theorems 1-2.  ``--backend smt``
    swaps the cycle search for the exact rank/subrelation prover (with
    machine-checkable certificates); ``--backend both`` runs both and
    audits disagreements -- a config the search flags cyclic but the
    prover certifies free is the union graph's over-approximation being
    resolved, not a false alarm.  Exit 0 when every checked
    configuration is provably deadlock-free (or, under
    ``--expect-cyclic``, when the chosen backend refutes it).
    """
    from repro.verify.cdg import (
        analyze_config,
        config_topology,
        format_report,
    )
    from repro.verify.smt import (
        certificate_slug,
        dump_certificate,
        dump_rejection_specs,
        format_smt_report,
        have_z3,
        verify_config,
    )

    if args.check_certificates:
        return _check_certificate_dir(args.check_certificates)

    run_search = args.backend in ("search", "both")
    run_smt = args.backend in ("smt", "both")
    if run_smt and args.engine == "auto" and not have_z3():
        print("note: z3-solver not installed; using the native exact "
              "rank engine (same constraints, same certificates)")
    # The subcommand's --backend picks the *verifier*; restore the
    # stepping-core default so build_config stays valid.
    build_args = argparse.Namespace(**{**vars(args), "backend": "active"})
    configs = (
        _shipped_verify_configs() if args.all else [build_config(build_args)]
    )
    failures = 0
    resolved = 0
    for config in configs:
        print(f"== {config.describe()}")
        search_ok = smt_ok = None
        search_report = smt_report = None
        if run_search:
            search_report = analyze_config(
                config, assume_classes=args.assume_classes
            )
            print(format_report(search_report, config_topology(config)))
            search_ok = search_report.ok
        if run_smt:
            smt_report = verify_config(
                config,
                assume_classes=args.assume_classes,
                engine=args.engine,
            )
            print(format_smt_report(smt_report))
            smt_ok = smt_report.deadlock_free
            if args.emit_certificates:
                slug = certificate_slug(config, args.assume_classes)
                path = dump_certificate(
                    smt_report.certificate,
                    Path(args.emit_certificates) / f"{slug}.json",
                )
                print(f"  certificate -> {path}")
        if args.backend == "both":
            # Disagreement audit.  The search over-approximates adaptive
            # configs, so "search cyclic + SMT conclusively free" is the
            # expected resolution, counted as success.  The reverse --
            # search proves free, exact prover refutes -- would mean the
            # analyzer is unsound and always fails the run.
            if not search_ok and smt_ok and smt_report.conclusive:
                resolved += 1
                print("  audit: cycle search over-approximates here; the "
                      f"'{smt_report.subfunction}' subfunction proof "
                      "resolves it (config is deadlock-free)")
            elif search_ok and not smt_ok:
                print("  audit: DISAGREEMENT -- search proves free but "
                      "the exact prover refutes; treat as analyzer "
                      "unsoundness", file=sys.stderr)
                failures += 1
                print()
                continue
            ok = smt_ok
        else:
            ok = smt_ok if run_smt else search_ok
        if args.expect_cyclic:
            refuted = (
                not smt_report.deadlock_free if run_smt
                else not search_report.acyclic
            )
            ok = refuted
        if not ok and run_smt and args.seed_fuzzer:
            if args.assume_classes is None:
                specs = dump_rejection_specs(config, args.seed_fuzzer)
                print(f"  seeded {len(specs)} fuzzer scenario(s) under "
                      f"{args.seed_fuzzer}")
            else:
                print("  (not seeding the fuzzer: --assume-classes "
                      "analyses a counterfactual discipline the runtime "
                      "does not implement)")
        failures += not ok
        print()
    verdict = "cyclic as expected" if args.expect_cyclic else "deadlock-free"
    print(f"{len(configs) - failures}/{len(configs)} configurations "
          f"{verdict}")
    if resolved:
        print(f"({resolved} adaptive config(s) resolved past the union "
              "graph's over-approximation by subfunction proofs)")
    return 0 if not failures else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Property-based protocol fuzzing under the invariant harness.

    Generates ``--budget`` randomized scenarios from ``--seed``, runs
    each through the orchestration pool with per-cycle invariant checks,
    and shrinks any failure to a minimal replayable JobSpec JSON.
    ``--replay`` re-executes one reproducer file instead.
    """
    from repro.verify.fuzz import (
        dump_reproducer,
        failure_signature,
        fuzz_campaign,
        load_spec,
    )

    if args.replay:
        spec = load_spec(args.replay)
        print(f"replaying {args.replay}: {spec.config.describe()}")
        signature = failure_signature(spec)
        if signature is None:
            print("replay passed: all invariants held")
            return 0
        print(f"replay failed: {signature}")
        return 1

    store = open_store(args.store) if args.store else None

    def progress(event: PoolProgress) -> None:
        if event.last is None:
            if event.cached:
                logger.info("[%d/%d] %d cached",
                            event.done, event.total, event.cached)
            return
        outcome = event.last
        state = outcome.status if outcome.ok else "FAILED"
        logger.info("[%d/%d] %s %s (%.1fs)", event.done, event.total,
                    state, outcome.spec.label, outcome.elapsed_s)

    report = fuzz_campaign(
        args.budget,
        master_seed=args.seed,
        jobs=args.jobs,
        store=store,
        timeout_s=args.job_timeout,
        shrink_failures=not args.no_shrink,
        progress=progress,
    )
    print(f"\nfuzz: {report.passed}/{report.budget} scenarios passed "
          f"({report.from_cache} cached), seed {report.master_seed}")
    if report.ok:
        return 0
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for failure in report.failures:
        path = out_dir / (
            f"fuzz-{report.master_seed}-{failure.index}-"
            f"{failure.signature}.json"
        )
        dump_reproducer(failure, path)
        shrunk = failure.shrunk
        detail = (
            f"shrunk in {shrunk.steps} steps / {shrunk.attempts} attempts"
            if shrunk is not None
            else "not shrunk"
        )
        print(f"  scenario {failure.index}: {failure.signature} ({detail})")
        print(f"    {failure.message.splitlines()[0] if failure.message else ''}")
        print(f"    reproducer: {path}")
    print(f"\n{len(report.failures)} failing scenario(s); replay with "
          f"'repro fuzz --replay <file>'")
    return 1


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wave-switching network simulator "
                    "(Duato/Lopez/Yalamanchili, IPPS 1997 reproduction)",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="raise log verbosity (-v debug, -vv adds "
                             "logger names); give before the subcommand")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--topology", default="mesh",
                       choices=list(registered_topologies()))
        p.add_argument("--dims", default="8x8",
                       help="e.g. 8x8, 2x2x2x2, 16 (fullmesh), 4x4 (min)")
        p.add_argument("--pattern", default="uniform",
                       help="uniform|transpose|bit_reversal|bit_complement|"
                            "neighbor|permutation|hotspot")
        p.add_argument("--length", type=int, default=64, help="flits/message")
        p.add_argument("--duration", type=int, default=5000,
                       help="injection window (cycles)")
        p.add_argument("--max-cycles", type=int, default=300_000)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--vcs", type=int, default=2)
        p.add_argument("--buffer-depth", type=int, default=4)
        p.add_argument("--routing", default="dor", choices=["dor", "adaptive"])
        p.add_argument("--backend", default="active",
                       choices=["reference", "active", "vectorized"],
                       help="stepping core: reference O(N) loop, active-set"
                            " object core, or vectorized struct-of-arrays"
                            " core (all bit-identical)")
        p.add_argument("--wave-switches", type=int, default=2)
        p.add_argument("--misroute-budget", type=int, default=2)
        p.add_argument("--wave-clock-ratio", type=float, default=4.0)
        p.add_argument("--window", type=int, default=256)
        p.add_argument("--cache-size", type=int, default=8)
        p.add_argument("--replacement", default="lru",
                       choices=["lru", "lfu", "fifo", "random"])
        p.add_argument("--clrp-variant", default="standard",
                       choices=["standard", "eager_force", "single_switch",
                                "immediate_force"])
        p.add_argument("--deadlock-check", type=int, default=0,
                       help="check interval in cycles; 0 = off")
        p.add_argument("--progress-timeout", type=int, default=0,
                       help="livelock timeout in cycles; 0 = off")
        p.add_argument("--fault-fraction", type=float, default=0.0,
                       help="fraction of physical links to fail (static)")
        p.add_argument("--mtbf", type=int, default=0,
                       help="mean cycles between dynamic link kills "
                            "(network-wide, seeded); 0 = off")
        p.add_argument("--mttr", type=int, default=0,
                       help="cycles until a killed link heals; 0 = permanent")
        p.add_argument("--fault-schedule", default=None,
                       help="explicit fault events as "
                            "'cycle:kind:node:port,...' with kind kill|heal "
                            "(run/heatmap only)")
        p.add_argument("--reliable", action="store_true",
                       help="enable the end-to-end ack/retransmit layer")
        p.add_argument("--metrics-every", type=int, default=0,
                       help="sample observability metrics every N cycles; "
                            "0 = off")

    def add_trace_flags(p: argparse.ArgumentParser, *,
                        toggle: bool = True) -> None:
        if toggle:
            p.add_argument("--trace", action="store_true",
                           help="record a structured event trace and "
                                "export Chrome/Perfetto JSON")
        p.add_argument("--trace-limit", type=int,
                       default=DEFAULT_TRACE_LIMIT,
                       help="trace ring-buffer capacity in events "
                            "(oldest dropped first)")
        p.add_argument("--trace-out", default=None,
                       help="trace JSON output path "
                            "(default repro-trace.json)")
        p.add_argument("--metrics-out", default=None,
                       help="JSONL metrics dump path "
                            "(requires --metrics-every)")

    run_p = sub.add_parser("run", help="simulate one configuration")
    add_common(run_p)
    add_trace_flags(run_p)
    run_p.add_argument("--protocol", default="clrp",
                       choices=["wormhole", "clrp", "carp"])
    run_p.add_argument("--load", type=float, default=0.2,
                       help="offered load (flits/node/cycle)")
    run_p.set_defaults(func=cmd_run)

    trace_p = sub.add_parser(
        "trace",
        help="run one configuration fully traced and export a "
             "Perfetto-loadable Chrome trace JSON",
    )
    add_common(trace_p)
    add_trace_flags(trace_p, toggle=False)
    trace_p.add_argument("--protocol", default="clrp",
                         choices=["wormhole", "clrp", "carp"])
    trace_p.add_argument("--load", type=float, default=0.2,
                         help="offered load (flits/node/cycle)")
    trace_p.set_defaults(func=cmd_trace, trace=True)

    def add_orchestration(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial; results are "
                            "bit-identical either way)")
        p.add_argument("--store", default=None,
                       help="JSONL result store path for caching/resume")
        p.add_argument("--job-timeout", type=float, default=None,
                       help="per-job wall-clock timeout in seconds "
                            "(enforced with --jobs >= 2)")

    sweep_p = sub.add_parser("sweep", help="throughput vs offered load")
    add_common(sweep_p)
    add_orchestration(sweep_p)
    sweep_p.add_argument("--protocol", default="clrp",
                         choices=["wormhole", "clrp", "carp"])
    sweep_p.add_argument("--loads", default="0.1,0.2,0.4,0.6",
                         help="comma-separated offered loads")
    sweep_p.set_defaults(func=cmd_sweep)

    cmp_p = sub.add_parser("compare", help="wormhole vs CLRP vs CARP")
    add_common(cmp_p)
    add_orchestration(cmp_p)
    cmp_p.add_argument("--load", type=float, default=0.2)
    cmp_p.set_defaults(func=cmd_compare)

    batch_p = sub.add_parser(
        "batch",
        help="run a campaign file through the orchestrator "
             "(caching + resume; see repro.orchestrate.campaign)",
    )
    batch_p.add_argument("campaign", help="path to a campaign JSON file")
    batch_p.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = serial)")
    batch_p.add_argument("--store", default=None,
                         help="JSONL result store (default: "
                              "<campaign>.results.jsonl next to the file)")
    batch_p.add_argument("--job-timeout", type=float, default=None,
                         help="per-job wall-clock timeout in seconds")
    batch_p.add_argument("--retries", type=int, default=1,
                         help="extra attempts for jobs whose worker crashed")
    batch_p.set_defaults(func=cmd_batch)

    chaos_p = sub.add_parser(
        "chaos",
        help="randomized fault campaign asserting zero lost messages "
             "and zero deadlocks (reliability layer forced on)",
    )
    add_common(chaos_p)
    add_orchestration(chaos_p)
    chaos_p.add_argument("--protocols", default="clrp,carp,wormhole",
                         help="comma-separated protocols to torture")
    chaos_p.add_argument("--seeds", default="0,1,2",
                         help="comma-separated seeds (one run per "
                              "protocol x seed)")
    chaos_p.add_argument("--load", type=float, default=0.1,
                         help="offered load (flits/node/cycle)")
    chaos_p.set_defaults(func=cmd_chaos)

    cdg_p = sub.add_parser(
        "verify-cdg",
        help="statically verify deadlock freedom via the extended "
             "channel-dependency graph (no simulation)",
        # verify-cdg never simulates, so the common stepping-core
        # --backend is meaningless here; "resolve" lets the verifier
        # --backend below replace it.
        conflict_handler="resolve",
    )
    add_common(cdg_p)
    cdg_p.add_argument("--protocol", default="clrp",
                       choices=["wormhole", "clrp", "carp"])
    cdg_p.add_argument("--all", action="store_true",
                       help="check every shipped configuration instead of "
                            "the one described by the flags")
    cdg_p.add_argument("--assume-classes", type=int, default=None,
                       help="override the dateline VC-class count the "
                            "analysis assumes (e.g. 1 to demonstrate the "
                            "torus ring cycle)")
    cdg_p.add_argument("--expect-cyclic", action="store_true",
                       help="invert the verdict: exit 0 only if a cycle "
                            "IS found (CI check for the analyzer itself)")
    cdg_p.add_argument("--backend", default="search",
                       choices=["search", "smt", "both"],
                       help="'search' = extended-CDG cycle search (may "
                            "over-approximate adaptive configs); 'smt' = "
                            "exact rank/subrelation verification with "
                            "certificates; 'both' = run both and audit "
                            "disagreements")
    cdg_p.add_argument("--engine", default="auto",
                       choices=["auto", "z3", "native"],
                       help="SMT engine: 'auto' prefers z3 and falls back "
                            "to the native exact rank engine when z3 is "
                            "not installed")
    cdg_p.add_argument("--emit-certificates", metavar="DIR", default=None,
                       help="write a machine-checkable JSON certificate "
                            "per config to DIR (smt/both backends)")
    cdg_p.add_argument("--check-certificates", metavar="DIR", default=None,
                       help="replay every certificate in DIR against the "
                            "current code without a solver and exit; "
                            "nonzero on any mismatch or graph drift")
    cdg_p.add_argument("--seed-fuzzer", metavar="DIR", default=None,
                       help="for each config the prover rejects, dump "
                            "seeded stress scenarios to DIR for "
                            "'repro fuzz --replay'")
    cdg_p.set_defaults(func=cmd_verify_cdg)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="property-based protocol fuzzing under the per-cycle "
             "invariant harness, with failure shrinking",
    )
    add_orchestration(fuzz_p)
    fuzz_p.add_argument("--budget", type=int, default=25,
                        help="number of randomized scenarios to run")
    fuzz_p.add_argument("--seed", type=int, default=0,
                        help="master seed; (seed, index) fully determines "
                             "each scenario")
    fuzz_p.add_argument("--no-shrink", action="store_true",
                        help="skip shrinking failures to minimal "
                             "reproducers")
    fuzz_p.add_argument("--out", default="fuzz-failures",
                        help="directory for reproducer JSON files")
    fuzz_p.add_argument("--replay", default=None,
                        help="replay one reproducer JSON file under the "
                             "harness instead of fuzzing")
    fuzz_p.set_defaults(func=cmd_fuzz)

    serve_p = sub.add_parser(
        "serve",
        help="run the async HTTP job server (submission, dedup, "
             "streaming, fair multi-tenant scheduling)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8642,
                         help="listen port (0 = ephemeral)")
    serve_p.add_argument("--store", default="sqlite:repro-store",
                         help="result store: sqlite:DIR (sharded) or a "
                              ".jsonl path")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="concurrent job executions")
    serve_p.add_argument("--executor", default="process",
                         choices=["process", "thread"],
                         help="job execution backend (thread is for "
                              "tests/containers without fork headroom)")
    serve_p.add_argument("--max-inflight", type=int, default=None,
                         help="per-tenant cap on concurrently running "
                              "jobs (default: unlimited)")
    serve_p.add_argument("--rate", type=float, default=None,
                         help="per-tenant execution rate limit in "
                              "jobs/second (token bucket)")
    serve_p.add_argument("--burst", type=int, default=4,
                         help="token-bucket burst size for --rate")
    serve_p.add_argument("--journal", default=None,
                         help="campaign journal path, or 'off' to disable "
                              "(default: derived from the store path)")
    serve_p.add_argument("--resume", action="store_true",
                         help="replay the journal on startup: restore "
                              "campaign history and re-queue unfinished "
                              "work from a previous (possibly crashed) run")
    serve_p.add_argument("--job-timeout", type=float, default=None,
                         help="per-job execution timeout in seconds "
                              "(default: none)")
    serve_p.add_argument("--retries", type=int, default=1,
                         help="re-admissions per job after worker "
                              "crashes (default: 1)")
    serve_p.add_argument("--drain-timeout", type=float, default=30.0,
                         help="seconds to wait for running jobs on "
                              "SIGTERM/stop (0 = abort immediately)")
    serve_p.set_defaults(func=cmd_serve)

    chaos_serve_p = sub.add_parser(
        "chaos-serve",
        help="crash-safety smoke: drive a real `repro serve` through "
             "scripted SIGKILLs + --resume restarts and a worker kill, "
             "asserting exactly-once results bit-identical to serial",
    )
    chaos_serve_p.add_argument("--jobs", type=int, default=8,
                               help="campaign size (seed grid)")
    chaos_serve_p.add_argument("--duration", type=int, default=10_000,
                               help="workload duration per job (bigger = "
                                    "longer jobs = kills land mid-run)")
    chaos_serve_p.add_argument("--port", type=int, default=None,
                               help="server port (default: ephemeral)")
    chaos_serve_p.add_argument("--workdir", default=None,
                               help="scratch directory (default: a fresh "
                                    "temp dir; keeps logs/stores for "
                                    "inspection)")
    chaos_serve_p.add_argument("--timeout", type=float, default=180.0,
                               help="overall scenario deadline in seconds")
    chaos_serve_p.add_argument("--no-worker-kill", action="store_true",
                               help="skip the worker-process kill phase")
    chaos_serve_p.set_defaults(func=cmd_chaos_serve)

    submit_p = sub.add_parser(
        "submit",
        help="submit a campaign file to a running job server and "
             "stream its progress (client-side `repro batch`)",
    )
    submit_p.add_argument("campaign", help="path to a campaign JSON file")
    submit_p.add_argument("--url", default="http://127.0.0.1:8642",
                          help="job server base URL")
    submit_p.add_argument("--tenant", default=None,
                          help="tenant identity for fair scheduling")
    submit_p.add_argument("--priority", type=int, default=0,
                          help="campaign priority (higher runs first "
                               "within your tenant)")
    follow_group = submit_p.add_mutually_exclusive_group()
    follow_group.add_argument("--follow", dest="follow",
                              action="store_true",
                              help="stream per-job results until the "
                                   "campaign finishes (default)")
    follow_group.add_argument("--no-follow", dest="follow",
                              action="store_false",
                              help="submit and exit without streaming")
    submit_p.set_defaults(func=cmd_submit, follow=True)

    jobs_p = sub.add_parser(
        "jobs",
        help="query a running job server: campaigns, job states, "
             "server/dedup statistics",
    )
    jobs_p.add_argument("--url", default="http://127.0.0.1:8642")
    jobs_p.add_argument("--tenant", default=None)
    jobs_p.add_argument("--campaign", default=None,
                        help="restrict to one campaign (id or name)")
    jobs_p.add_argument("--status", default=None,
                        help="filter by job status "
                             "(queued|running|ok|failed|cached|cancelled)")
    jobs_p.add_argument("--all-jobs", action="store_true",
                        help="list jobs across all campaigns instead of "
                             "the campaign table")
    jobs_p.set_defaults(func=cmd_jobs)

    store_p = sub.add_parser(
        "store",
        help="result-store maintenance (stats, compact, convert "
             "between JSONL and sqlite backends)",
    )
    store_sub = store_p.add_subparsers(dest="store_command", required=True)
    stats_p = store_sub.add_parser("stats", help="backend, size, shards")
    stats_p.add_argument("path", help="store path (JSONL file or "
                                      "sqlite:DIR)")
    compact_p = store_sub.add_parser(
        "compact",
        help="rewrite a JSONL store to its last-record-wins snapshot "
             "(sqlite stores VACUUM) and report dropped records",
    )
    compact_p.add_argument("path")
    convert_p = store_sub.add_parser(
        "convert", help="copy all records between store backends"
    )
    convert_p.add_argument("path", help="source store")
    convert_p.add_argument("dest", help="destination store")
    store_p.set_defaults(func=cmd_store)

    heat_p = sub.add_parser("heatmap",
                            help="link-load heat map of one run (2-D mesh)")
    add_common(heat_p)
    add_trace_flags(heat_p)
    heat_p.add_argument("--protocol", default="wormhole",
                        choices=["wormhole", "clrp", "carp"])
    heat_p.add_argument("--load", type=float, default=0.3)
    heat_p.set_defaults(func=cmd_heatmap)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    # Bind the log handler to the *current* stdout (it may be a capture
    # or a pipe) once per invocation; progress/diagnostic lines flow
    # through the "repro" logger, report output stays on plain print.
    configure_logging(verbose=args.verbose)
    try:
        return args.func(args)
    except ConfigError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
