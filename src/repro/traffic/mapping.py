"""Process-to-processor mappings.

Section 1 of the paper: "Latency can also be reduced by using an
appropriate mapping of processes to processors, exploiting spatial
locality in communications."  Wave switching then converts that spatial
locality into short circuits (cheap to establish, few channels held).

A :class:`ProcessMapping` is a bijection from logical *ranks* (what the
application numbers its processes with) to physical *nodes*;
:func:`remap_workload` rewrites a message stream generated in rank space
into node space.  Three mappings cover the experimental range:

* :class:`IdentityMapping` -- rank ``i`` on node ``i``; for workloads
  generated over the physical topology (e.g. the stencil builder) this is
  the locality-preserving placement;
* :class:`RandomMapping` -- a seeded random permutation: the
  worst-practice placement that destroys spatial locality while keeping
  the logical communication graph identical;
* :class:`BlockMapping` -- folds a logical 1-D rank sequence into
  contiguous blocks of a 2-D mesh (the classic row-block placement for
  rank-linear applications).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigError
from repro.network.message import Message
from repro.sim.rng import SimRandom
from repro.topology.base import Topology


class ProcessMapping(ABC):
    """A bijection rank -> node over ``num_nodes`` ranks."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        self.num_nodes = num_nodes

    @abstractmethod
    def place(self, rank: int) -> int:
        """Physical node hosting the given logical rank."""

    def check_bijection(self) -> None:
        """Sanity helper for tests: every node hosts exactly one rank."""
        image = {self.place(r) for r in range(self.num_nodes)}
        if len(image) != self.num_nodes:
            raise ConfigError(f"{type(self).__name__} is not a bijection")


class IdentityMapping(ProcessMapping):
    """Rank ``i`` lives on node ``i``."""

    def place(self, rank: int) -> int:
        if not 0 <= rank < self.num_nodes:
            raise ConfigError(f"rank {rank} out of range")
        return rank


class RandomMapping(ProcessMapping):
    """A seeded random permutation of ranks onto nodes."""

    def __init__(self, num_nodes: int, rng: SimRandom) -> None:
        super().__init__(num_nodes)
        perm = list(range(num_nodes))
        rng.stream("mapping").shuffle(perm)
        self._perm = perm

    def place(self, rank: int) -> int:
        return self._perm[rank]


class BlockMapping(ProcessMapping):
    """Linear ranks folded into rectangular blocks of a 2-D mesh.

    Ranks are assigned block by block: block ``b`` covers a
    ``block_rows x block_cols`` rectangle of the mesh, and ranks fill
    blocks in row-major order.  Neighbouring ranks land in the same block
    with high probability, turning rank-linear communication into short
    physical paths.
    """

    def __init__(self, topology: Topology, block_rows: int, block_cols: int) -> None:
        super().__init__(topology.num_nodes)
        if topology.n_dims != 2:
            raise ConfigError("BlockMapping needs a 2-D topology")
        rows, cols = topology.dims
        if rows % block_rows or cols % block_cols:
            raise ConfigError(
                f"blocks {block_rows}x{block_cols} do not tile {rows}x{cols}"
            )
        self.topology = topology
        order = []
        for block_r in range(0, rows, block_rows):
            for block_c in range(0, cols, block_cols):
                for r in range(block_r, block_r + block_rows):
                    for c in range(block_c, block_c + block_cols):
                        order.append(topology.node_at((r, c)))
        self._order = order

    def place(self, rank: int) -> int:
        if not 0 <= rank < self.num_nodes:
            raise ConfigError(f"rank {rank} out of range")
        return self._order[rank]


def remap_workload(
    messages: list[Message], mapping: ProcessMapping
) -> list[Message]:
    """Rewrite a rank-space message stream into node space.

    Returns new :class:`Message` objects (ids preserved) sorted by
    creation time; the input list is left untouched.
    """
    out = [
        Message(
            msg_id=m.msg_id,
            src=mapping.place(m.src),
            dst=mapping.place(m.dst),
            length=m.length,
            created=m.created,
            circuit_hint=m.circuit_hint,
        )
        for m in messages
    ]
    out.sort(key=lambda m: (m.created, m.msg_id))
    return out


def mean_communication_distance(
    messages: list[Message], topology: Topology
) -> float:
    """Average physical hop distance of a (node-space) message stream."""
    if not messages:
        return 0.0
    return sum(
        topology.distance(m.src, m.dst) for m in messages
    ) / len(messages)
