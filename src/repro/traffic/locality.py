"""The spatio-temporal locality workload.

The paper argues wave switching pays off when communication has *spatial*
locality (partners are close, so circuits are short) and *temporal*
locality (the same pair communicates repeatedly, so circuits are reused).
Real systems get this from process placement and application structure;
the paper defers quantitative tuning to "traces from real applications",
which we do not have.  This generator is the documented substitute
(DESIGN.md, substitution table): both localities are explicit knobs, so
experiments can sweep the whole regime real traces occupy.

Model, per source node:

* communication proceeds in **bursts**: pick a partner, exchange a
  geometrically-distributed number of messages with it (mean
  ``reuse``), then pick a new partner -- ``reuse`` is the temporal
  locality knob (1 = no reuse, every message a new partner);
* partners are drawn with probability proportional to
  ``spatial_decay ** distance`` -- the spatial locality knob
  (1.0 = uniform, 0.5 = strongly neighbour-biased);
* message arrivals are Bernoulli at the configured offered load.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.network.message import Message, MessageFactory
from repro.sim.rng import SimRandom
from repro.topology.base import Topology
from repro.traffic.workloads import _geometric_gaps


class LocalityWorkloadBuilder:
    """Builds message streams with tunable spatial/temporal locality."""

    def __init__(
        self,
        topology: Topology,
        *,
        reuse: float,
        spatial_decay: float = 1.0,
    ) -> None:
        if reuse < 1:
            raise ConfigError(f"reuse must be >= 1, got {reuse}")
        if not 0 < spatial_decay <= 1:
            raise ConfigError(
                f"spatial_decay must be in (0, 1], got {spatial_decay}"
            )
        self.topology = topology
        self.reuse = reuse
        self.spatial_decay = spatial_decay
        # Per-source cumulative partner distributions.
        self._partner_tables: dict[int, tuple[list[int], list[float]]] = {}

    def _partners(self, src: int) -> tuple[list[int], list[float]]:
        got = self._partner_tables.get(src)
        if got is not None:
            return got
        topo = self.topology
        nodes = []
        weights = []
        acc = 0.0
        for dst in range(topo.num_nodes):
            if dst == src:
                continue
            w = self.spatial_decay ** topo.distance(src, dst)
            acc += w
            nodes.append(dst)
            weights.append(acc)
        self._partner_tables[src] = (nodes, weights)
        return nodes, weights

    def _pick_partner(self, src: int, stream) -> int:
        nodes, cum = self._partners(src)
        x = stream.random() * cum[-1]
        # Binary search over the cumulative weights.
        lo, hi = 0, len(cum) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cum[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return nodes[lo]

    def build(
        self,
        factory: MessageFactory,
        *,
        offered_load: float,
        length: int,
        duration: int,
        rng: SimRandom,
        start: int = 0,
    ) -> list[Message]:
        """Generate the stream (same rate semantics as uniform_workload)."""
        if offered_load <= 0:
            raise ConfigError(f"offered_load must be > 0, got {offered_load}")
        p = offered_load / length
        if p > 1:
            raise ConfigError("load too high for one message/node/cycle")
        messages: list[Message] = []
        switch_p = 1.0 / self.reuse
        for src in range(self.topology.num_nodes):
            arrivals = rng.stream(f"locality.arrivals.{src}")
            picks = rng.stream(f"locality.picks.{src}")
            partner = self._pick_partner(src, picks)
            for t in _geometric_gaps(arrivals, p, start + duration, start):
                messages.append(factory.make(src, partner, length, t))
                if picks.random() < switch_p:
                    partner = self._pick_partner(src, picks)
        messages.sort(key=lambda m: (m.created, m.msg_id))
        return messages
