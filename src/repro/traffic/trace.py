"""Trace record/replay: persist message streams as JSON lines.

The paper notes protocol tuning "can only be tuned by using traces from
real applications".  We cannot ship real traces, but we can make every
synthetic workload *behave* like one: save it once, replay it bit-exact
across protocol variants so comparisons see identical offered traffic.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.errors import ConfigError
from repro.network.message import Message, MessageFactory


def save_trace(messages: Iterable[Message], path: str | Path) -> int:
    """Write messages as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for msg in messages:
            fh.write(
                json.dumps(
                    {
                        "src": msg.src,
                        "dst": msg.dst,
                        "length": msg.length,
                        "created": msg.created,
                        "circuit_hint": msg.circuit_hint,
                    }
                )
            )
            fh.write("\n")
            count += 1
    return count


def load_trace(path: str | Path, factory: MessageFactory) -> list[Message]:
    """Read a trace back; ids are re-assigned by ``factory``."""
    messages: list[Message] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                msg = factory.make(
                    src=obj["src"],
                    dst=obj["dst"],
                    length=obj["length"],
                    created=obj["created"],
                    circuit_hint=obj.get("circuit_hint"),
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise ConfigError(f"{path}:{lineno}: bad trace record: {exc}")
            messages.append(msg)
    messages.sort(key=lambda m: (m.created, m.msg_id))
    return messages
