"""Destination patterns: who talks to whom.

Each pattern maps a source node to a destination, possibly randomly.
Deterministic patterns (transpose, bit-reversal, bit-complement,
permutation) model the structured communication of parallel algorithms;
uniform and hotspot model unstructured load.  A pattern never returns the
source itself -- fixed points are remapped to the next node.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.errors import ConfigError
from repro.topology.base import Topology


def _avoid_self(src: int, dst: int, num_nodes: int) -> int:
    return dst if dst != src else (src + 1) % num_nodes


class TrafficPattern(ABC):
    """Maps a source to a destination node."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ConfigError(f"patterns need >= 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes

    @abstractmethod
    def pick(self, src: int, stream: random.Random) -> int:
        """Destination for one message from ``src`` (never ``src``)."""


class UniformPattern(TrafficPattern):
    """Uniformly random destination -- the classic baseline load."""

    def pick(self, src: int, stream: random.Random) -> int:
        dst = stream.randrange(self.num_nodes - 1)
        return dst if dst < src else dst + 1


class TransposePattern(TrafficPattern):
    """Matrix transpose on a 2D layout: (x, y) -> (y, x)."""

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology.num_nodes)
        if (
            not topology.cartesian
            or topology.n_dims != 2
            or topology.dims[0] != topology.dims[1]
        ):
            raise ConfigError("transpose needs a square 2D Cartesian topology")
        self.topology = topology

    def pick(self, src: int, stream: random.Random) -> int:
        x, y = self.topology.coords(src)
        return _avoid_self(src, self.topology.node_at((y, x)), self.num_nodes)


class BitReversalPattern(TrafficPattern):
    """Reverse the bits of the node id (FFT-style permutation)."""

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        if num_nodes & (num_nodes - 1):
            raise ConfigError("bit reversal needs a power-of-two node count")
        self.bits = num_nodes.bit_length() - 1

    def pick(self, src: int, stream: random.Random) -> int:
        rev = 0
        x = src
        for _ in range(self.bits):
            rev = (rev << 1) | (x & 1)
            x >>= 1
        return _avoid_self(src, rev, self.num_nodes)


class BitComplementPattern(TrafficPattern):
    """Complement the node id: maximal-distance structured traffic."""

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        if num_nodes & (num_nodes - 1):
            raise ConfigError("bit complement needs a power-of-two node count")
        self.mask = num_nodes - 1

    def pick(self, src: int, stream: random.Random) -> int:
        return _avoid_self(src, src ^ self.mask, self.num_nodes)


class HotspotPattern(TrafficPattern):
    """A fraction of traffic converges on a few hot nodes.

    With probability ``fraction`` the destination is a uniformly chosen
    hotspot; otherwise the base pattern applies.
    """

    def __init__(
        self,
        base: TrafficPattern,
        hotspots: list[int],
        fraction: float,
    ) -> None:
        super().__init__(base.num_nodes)
        if not hotspots:
            raise ConfigError("need at least one hotspot")
        if not 0 < fraction <= 1:
            raise ConfigError(f"fraction must be in (0, 1], got {fraction}")
        for h in hotspots:
            if not 0 <= h < base.num_nodes:
                raise ConfigError(f"hotspot {h} out of range")
        self.base = base
        self.hotspots = hotspots
        self.fraction = fraction

    def pick(self, src: int, stream: random.Random) -> int:
        if stream.random() < self.fraction:
            dst = self.hotspots[stream.randrange(len(self.hotspots))]
            return _avoid_self(src, dst, self.num_nodes)
        return self.base.pick(src, stream)


class NearestNeighborPattern(TrafficPattern):
    """Uniformly one of the source's direct neighbours (stencil-like)."""

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology.num_nodes)
        if topology.num_endpoints != topology.num_nodes:
            raise ConfigError(
                "neighbor pattern needs every node to be an endpoint "
                "(a MIN terminal's only neighbour is a switch)"
            )
        self.topology = topology

    def pick(self, src: int, stream: random.Random) -> int:
        ports = self.topology.connected_ports(src)
        port = ports[stream.randrange(len(ports))]
        nbr = self.topology.neighbor(src, port)
        assert nbr is not None
        return nbr


class PermutationPattern(TrafficPattern):
    """A fixed random permutation, drawn once (seeded) and then static."""

    def __init__(self, num_nodes: int, stream: random.Random) -> None:
        super().__init__(num_nodes)
        perm = list(range(num_nodes))
        # Derangement by rejection: retry until no fixed points (fast for
        # n >= 2; expected ~e retries).
        while True:
            stream.shuffle(perm)
            if all(perm[i] != i for i in range(num_nodes)):
                break
        self.perm = perm

    def pick(self, src: int, stream: random.Random) -> int:
        return self.perm[src]


def make_pattern(
    name: str, topology: Topology, stream: random.Random
) -> TrafficPattern:
    """Build a pattern by name (benchmark configuration convenience).

    Patterns permute *endpoints*: on topologies with dedicated switching
    elements (MINs) only the terminal id prefix sends or receives.
    """
    n = topology.num_endpoints
    if name == "uniform":
        return UniformPattern(n)
    if name == "transpose":
        return TransposePattern(topology)
    if name == "bit_reversal":
        return BitReversalPattern(n)
    if name == "bit_complement":
        return BitComplementPattern(n)
    if name == "neighbor":
        return NearestNeighborPattern(topology)
    if name == "permutation":
        return PermutationPattern(n, stream)
    if name == "hotspot":
        return HotspotPattern(UniformPattern(n), [n // 2], 0.2)
    raise ConfigError(f"unknown traffic pattern {name!r}")
