"""Workload generation: traffic patterns, synthetic workloads, traces.

The paper's protocols respond only to the (src, dst, length, time) stream
of messages, so workloads here are plain sorted lists of
:class:`~repro.network.message.Message` (plus CARP directives when the
compiler is involved), which :class:`~repro.sim.engine.Simulator` pumps.

* :mod:`repro.traffic.patterns` -- destination distributions (uniform,
  transpose, bit-reversal, bit-complement, hotspot, nearest-neighbour,
  fixed permutation);
* :mod:`repro.traffic.workloads` -- Bernoulli/burst open-loop loads and
  application-shaped workloads (stencil, all-to-all, master-worker);
* :mod:`repro.traffic.locality` -- the spatio-temporal locality generator
  standing in for the real application traces the paper defers to;
* :mod:`repro.traffic.compiler` -- the CARP "compiler": a static analyser
  that scans a message stream and emits CircuitOpen/CircuitClose
  directives for pairs with enough temporal locality;
* :mod:`repro.traffic.trace` -- record/replay of message streams.
"""

from repro.traffic.compiler import CompilerReport, compile_directives
from repro.traffic.locality import LocalityWorkloadBuilder
from repro.traffic.mapping import (
    BlockMapping,
    IdentityMapping,
    ProcessMapping,
    RandomMapping,
    mean_communication_distance,
    remap_workload,
)
from repro.traffic.patterns import (
    BitComplementPattern,
    BitReversalPattern,
    HotspotPattern,
    NearestNeighborPattern,
    PermutationPattern,
    TrafficPattern,
    TransposePattern,
    UniformPattern,
    make_pattern,
)
from repro.traffic.trace import load_trace, save_trace
from repro.traffic.workloads import (
    all_to_all_workload,
    dsm_workload,
    master_worker_workload,
    merge_streams,
    pair_stream_workload,
    stencil_workload,
    uniform_workload,
)

__all__ = [
    "BitComplementPattern",
    "BlockMapping",
    "IdentityMapping",
    "ProcessMapping",
    "RandomMapping",
    "mean_communication_distance",
    "remap_workload",
    "BitReversalPattern",
    "CompilerReport",
    "HotspotPattern",
    "LocalityWorkloadBuilder",
    "NearestNeighborPattern",
    "PermutationPattern",
    "TrafficPattern",
    "TransposePattern",
    "UniformPattern",
    "all_to_all_workload",
    "compile_directives",
    "dsm_workload",
    "load_trace",
    "make_pattern",
    "master_worker_workload",
    "merge_streams",
    "pair_stream_workload",
    "save_trace",
    "stencil_workload",
    "uniform_workload",
]
