"""Synthetic and application-shaped workloads.

All builders return a list of :class:`~repro.network.message.Message`
sorted by creation cycle.  Open-loop loads draw geometric inter-arrival
times per node (equivalent to per-cycle Bernoulli injection but O(number
of messages) instead of O(nodes x cycles)).

Rates are quoted in **flits per node per cycle** -- the unit the
interconnect literature uses for offered load -- and converted internally
using the message length.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.errors import ConfigError
from repro.network.message import Message, MessageFactory
from repro.sim.rng import SimRandom
from repro.topology.base import Topology
from repro.traffic.patterns import TrafficPattern


def merge_streams(*streams: Iterable) -> list:
    """Merge already-sorted item streams by ``created`` (stable)."""
    return list(heapq.merge(*streams, key=lambda item: item.created))


def _geometric_gaps(stream, p: float, until: int, start: int = 0):
    """Yield arrival cycles of a Bernoulli(p)-per-cycle process."""
    t = start
    while True:
        # Geometric inter-arrival (support >= 1 cycle between arrivals
        # keeps at most one message per node per cycle, like real NIs).
        gap = 1
        while stream.random() >= p:
            gap += 1
        t += gap
        if t >= until:
            return
        yield t


def uniform_workload(
    factory: MessageFactory,
    pattern: TrafficPattern,
    *,
    num_nodes: int,
    offered_load: float,
    length: int,
    duration: int,
    rng: SimRandom,
    start: int = 0,
) -> list[Message]:
    """Open-loop load: every node injects at ``offered_load`` flits/cycle.

    Args:
        offered_load: flits per node per cycle (0 < load <= 1 is the
            physically meaningful range for one injection channel).
        length: message length in flits.
        duration: injection window in cycles (messages created in
            ``[start, start + duration)``).
    """
    if offered_load <= 0:
        raise ConfigError(f"offered_load must be > 0, got {offered_load}")
    if length < 1:
        raise ConfigError(f"length must be >= 1, got {length}")
    p = offered_load / length  # messages per node per cycle
    if p > 1:
        raise ConfigError(
            f"offered load {offered_load} with length {length} needs more "
            "than one message per cycle per node"
        )
    messages: list[Message] = []
    for src in range(num_nodes):
        stream = rng.stream(f"traffic.arrivals.{src}")
        dests = rng.stream(f"traffic.dests.{src}")
        for t in _geometric_gaps(stream, p, start + duration, start):
            messages.append(factory.make(src, pattern.pick(src, dests), length, t))
    messages.sort(key=lambda m: (m.created, m.msg_id))
    return messages


def pair_stream_workload(
    factory: MessageFactory,
    pairs: Sequence[tuple[int, int]],
    *,
    messages_per_pair: int,
    length: int,
    gap: int,
    start: int = 0,
) -> list[Message]:
    """Each (src, dst) pair exchanges a fixed train of messages.

    The deterministic building block for circuit-reuse experiments: the
    pair sends ``messages_per_pair`` messages ``gap`` cycles apart.
    """
    if messages_per_pair < 1:
        raise ConfigError("messages_per_pair must be >= 1")
    messages = []
    for src, dst in pairs:
        for i in range(messages_per_pair):
            messages.append(factory.make(src, dst, length, start + i * gap))
    messages.sort(key=lambda m: (m.created, m.msg_id))
    return messages


def stencil_workload(
    factory: MessageFactory,
    topology: Topology,
    *,
    phases: int,
    phase_gap: int,
    length: int,
    start: int = 0,
) -> list[Message]:
    """Iterative stencil: every phase, every node sends to each neighbour.

    Models the halo exchange of an iterative PDE solver -- the classic
    high-spatial-, high-temporal-locality workload the paper's intro
    motivates wave switching with (same partners every iteration).
    """
    if phases < 1:
        raise ConfigError("phases must be >= 1")
    if topology.num_endpoints != topology.num_nodes:
        raise ConfigError(
            "stencil needs every node to be an endpoint; a MIN terminal's "
            "only neighbour is a switch, which cannot sink messages"
        )
    messages = []
    for phase in range(phases):
        t = start + phase * phase_gap
        for node in topology.endpoints():
            for port in topology.connected_ports(node):
                nbr = topology.neighbor(node, port)
                assert nbr is not None
                messages.append(factory.make(node, nbr, length, t))
    messages.sort(key=lambda m: (m.created, m.msg_id))
    return messages


def all_to_all_workload(
    factory: MessageFactory,
    num_nodes: int,
    *,
    rounds: int,
    round_gap: int,
    length: int,
    start: int = 0,
    stagger: int = 0,
) -> list[Message]:
    """Total exchange: each round every node sends to every other node.

    ``stagger`` spreads each node's sends within a round (cycles between
    consecutive destinations) to avoid an unphysical single-cycle burst.
    Destinations rotate (``src + offset``) as in standard total-exchange
    schedules so the instantaneous load is balanced.
    """
    messages = []
    for r in range(rounds):
        t0 = start + r * round_gap
        for offset in range(1, num_nodes):
            t = t0 + (offset - 1) * stagger
            for src in range(num_nodes):
                messages.append(
                    factory.make(src, (src + offset) % num_nodes, length, t)
                )
    messages.sort(key=lambda m: (m.created, m.msg_id))
    return messages


def master_worker_workload(
    factory: MessageFactory,
    num_nodes: int,
    *,
    master: int,
    tasks_per_worker: int,
    task_length: int,
    result_length: int,
    task_gap: int,
    turnaround: int,
    start: int = 0,
) -> list[Message]:
    """Master scatters task messages; workers send results back.

    A persistent-pair workload with a hotspot at the master -- the case
    where a few circuits (master <-> workers) should dominate.
    """
    if master < 0 or master >= num_nodes:
        raise ConfigError(f"master {master} out of range")
    messages = []
    workers = [n for n in range(num_nodes) if n != master]
    for i in range(tasks_per_worker):
        for j, worker in enumerate(workers):
            t = start + (i * len(workers) + j) * task_gap
            messages.append(factory.make(master, worker, task_length, t))
            messages.append(
                factory.make(worker, master, result_length, t + turnaround)
            )
    messages.sort(key=lambda m: (m.created, m.msg_id))
    return messages


def dsm_workload(
    factory: MessageFactory,
    topology: Topology,
    *,
    misses_per_node: int,
    request_length: int = 1,
    line_length: int = 8,
    home_window: int = 4,
    miss_gap: int = 25,
    memory_latency: int = 30,
    rng: SimRandom,
    start: int = 0,
) -> list[Message]:
    """Distributed-shared-memory miss traffic (the paper's DSM motivation).

    Section 1: in DSMs "messages are directly sent by the hardware, as a
    consequence of remote memory accesses or coherence commands. Reducing
    the network hardware latency and increasing network throughput is
    crucial."

    Each node suffers a stream of cache misses.  A miss sends a
    ``request_length``-flit request to the *home node* of the line, which
    answers with a ``line_length``-flit reply after ``memory_latency``
    cycles.  Homes are drawn from a small per-node working set of
    ``home_window`` nearby nodes (page placement gives real DSMs exactly
    this spatial + temporal locality), making the request/reply pairs
    ideal circuit-reuse customers despite both messages being short.
    """
    if misses_per_node < 1:
        raise ConfigError("misses_per_node must be >= 1")
    if home_window < 1:
        raise ConfigError("home_window must be >= 1")
    messages: list[Message] = []
    for node in topology.endpoints():
        stream = rng.stream(f"dsm.{node}")
        nearby = sorted(
            (n for n in topology.endpoints() if n != node),
            key=lambda n: (topology.distance(node, n), n),
        )[: home_window * 3]
        homes = []
        while len(homes) < home_window:
            cand = nearby[stream.randrange(len(nearby))]
            if cand not in homes:
                homes.append(cand)
        for i in range(misses_per_node):
            t = start + i * miss_gap + stream.randrange(miss_gap // 2 + 1)
            home = homes[stream.randrange(home_window)]
            messages.append(factory.make(node, home, request_length, t))
            messages.append(
                factory.make(home, node, line_length, t + memory_latency)
            )
    messages.sort(key=lambda m: (m.created, m.msg_id))
    return messages
