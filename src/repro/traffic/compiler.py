"""The CARP "compiler": static circuit-placement analysis.

The paper leaves CARP's decision procedure to future compilers
("developing a suitable compiler support ... may take several years").
As DESIGN.md's substitution table records, we stand in a *profile-based
analyser*: given the full message stream of a workload (what a compiler
would know statically for regular codes, or a profile run would supply),
it emits :class:`~repro.core.carp.CircuitOpen` /
:class:`~repro.core.carp.CircuitClose` directives for source-destination
pairs with enough temporal locality, and tags the covered messages with
``circuit_hint=True``.

Heuristic (the paper's own criterion, made concrete): a circuit is worth
establishing when a pair exchanges at least ``min_messages`` messages
whose total payload is at least ``min_flits`` flits within one *episode*
(a maximal run of messages between the pair with gaps below
``max_gap``).  Opens are emitted ``open_lead`` cycles early -- the
prefetching analogy of section 3 -- and closes ``close_lag`` cycles after
the episode's last message.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.carp import CircuitClose, CircuitOpen, Directive
from repro.errors import ConfigError
from repro.network.message import Message
from repro.traffic.workloads import merge_streams


@dataclass
class CompilerReport:
    """What the analyser decided, for tests and experiment logs."""

    episodes_found: int = 0
    episodes_circuit: int = 0
    messages_total: int = 0
    messages_hinted: int = 0
    directives: list[Directive] = field(default_factory=list)

    @property
    def hint_fraction(self) -> float:
        if self.messages_total == 0:
            return 0.0
        return self.messages_hinted / self.messages_total


def compile_directives(
    messages: list[Message],
    *,
    min_messages: int = 4,
    min_flits: int = 64,
    max_gap: int = 2000,
    open_lead: int = 50,
    close_lag: int = 20,
) -> tuple[list, CompilerReport]:
    """Analyse a stream and weave in CARP directives.

    Returns ``(items, report)`` where ``items`` is the merged, sorted
    stream of messages and directives ready for the simulator.  Messages
    covered by a circuit episode get ``circuit_hint=True`` (mutated in
    place); all others get ``circuit_hint=False``.
    """
    if min_messages < 1:
        raise ConfigError("min_messages must be >= 1")
    if open_lead < 0 or close_lag < 0:
        raise ConfigError("open_lead/close_lag must be >= 0")

    report = CompilerReport(messages_total=len(messages))
    by_pair: dict[tuple[int, int], list[Message]] = {}
    for msg in messages:
        msg.circuit_hint = False
        by_pair.setdefault((msg.src, msg.dst), []).append(msg)

    directives: list[Directive] = []
    for (src, dst), group in by_pair.items():
        group.sort(key=lambda m: m.created)
        # Split the pair's history into episodes by max_gap.
        episode: list[Message] = []
        episodes: list[list[Message]] = []
        for msg in group:
            if episode and msg.created - episode[-1].created > max_gap:
                episodes.append(episode)
                episode = []
            episode.append(msg)
        if episode:
            episodes.append(episode)
        for ep in episodes:
            report.episodes_found += 1
            flits = sum(m.length for m in ep)
            if len(ep) < min_messages or flits < min_flits:
                continue
            report.episodes_circuit += 1
            report.messages_hinted += len(ep)
            for m in ep:
                m.circuit_hint = True
            open_at = max(0, ep[0].created - open_lead)
            close_at = ep[-1].created + close_lag
            directives.append(
                CircuitOpen(
                    node=src,
                    dst=dst,
                    created=open_at,
                    # Section 2: the compiler knows the longest message of
                    # the set, so buffers are sized once, never re-allocated.
                    buffer_flits=max(m.length for m in ep),
                )
            )
            directives.append(CircuitClose(node=src, dst=dst, created=close_at))

    directives.sort(key=lambda d: d.created)
    report.directives = directives
    # Directives first so a same-cycle CircuitOpen precedes its messages.
    items = merge_streams(directives, messages)
    return items, report
