"""Typed fluent client for the simulation job service.

:class:`Session` (blocking) and :class:`AsyncSession` (asyncio) talk to
a running ``repro serve`` instance; campaigns are built fluently and
jobs are queried through chainable lazy collections.  See
:mod:`repro.client.session` for the full tour and docs/SERVICE.md for
the quickstart.
"""

from repro.client.session import (
    AsyncCampaign,
    AsyncSession,
    Campaign,
    CampaignBuilder,
    Job,
    JobCollection,
    JobEvent,
    ServiceError,
    Session,
    StreamInterrupted,
    TransportError,
)

__all__ = [
    "AsyncCampaign",
    "AsyncSession",
    "Campaign",
    "CampaignBuilder",
    "Job",
    "JobCollection",
    "JobEvent",
    "ServiceError",
    "Session",
    "StreamInterrupted",
    "TransportError",
]
