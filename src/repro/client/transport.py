"""HTTP transports for the fluent client: blocking and asyncio.

Both speak the job server's one-request-per-connection dialect
(:mod:`repro.service.server`): JSON request/response bodies, and JSONL
streams framed by connection close.  The blocking transport rides
stdlib ``http.client``; the async one rides ``asyncio.open_connection``
with the same minimal HTTP/1.1 the server itself uses.  Everything
above this module (sessions, elements, collections) is transport-
agnostic.

Failure taxonomy (what the retry/reconnect layers classify on):

* :class:`ServiceError` -- the server *answered* with an error status.
  Never retried: the request reached a live server and was rejected.
* :class:`TransportError` -- the connection failed before a valid
  response (refused, reset, closed pre-status-line, malformed head).
  Retryable for idempotent requests; the blocking transport retries
  GETs itself with capped exponential backoff + jitter.
* :class:`StreamInterrupted` -- a live JSONL stream died mid-flight
  (connection drop, idle-read timeout).  The session layer reconnects
  with its ``?since=`` cursor and resumes exactly where it stopped.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import socket
import time
import urllib.parse
from typing import AsyncIterator, Iterator


class ServiceError(RuntimeError):
    """The server answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class TransportError(ServiceError):
    """Connection-level failure before a valid HTTP response.

    Raised in place of the opaque ``IndexError``/``ValueError`` soup
    you get parsing a status line the server never wrote (crash or
    restart mid-request).  ``status == 0`` marks "no response at all",
    which is what makes it safely retryable for idempotent requests.
    """

    def __init__(self, message: str) -> None:
        super().__init__(0, message)


class StreamInterrupted(TransportError):
    """A JSONL stream died before its terminal event (reconnectable)."""


# Everything that means "the server never answered this request":
# refused/reset/closed connections, OS-level socket errors, and our own
# pre-response classification.  Idempotent requests retry on these.
RETRYABLE_ERRORS = (ConnectionError, TimeoutError, OSError, TransportError)


def backoff_delays(
    attempts: int,
    *,
    base: float = 0.25,
    cap: float = 5.0,
    rng: random.Random | None = None,
) -> Iterator[float]:
    """Capped exponential backoff with full jitter, ``attempts`` long."""
    rng = rng if rng is not None else random
    for n in range(attempts):
        yield min(cap, base * (2 ** n)) * (0.5 + rng.random() / 2)


def _split_url(base_url: str) -> tuple[str, int]:
    parsed = urllib.parse.urlsplit(base_url)
    if parsed.scheme not in ("http", ""):
        raise ValueError(f"only http:// service URLs are supported, "
                         f"got {base_url!r}")
    host = parsed.hostname or "127.0.0.1"
    return host, parsed.port or 80


def _qs(params: dict | None) -> str:
    if not params:
        return ""
    clean = {k: v for k, v in params.items() if v is not None}
    return "?" + urllib.parse.urlencode(clean) if clean else ""


class HttpTransport:
    """Blocking transport: one ``http.client`` connection per request.

    ``retries``/``backoff_base``/``backoff_cap`` govern the automatic
    retry of *idempotent* (GET) requests on transport-level failures --
    a server restarting under a campaign looks like a few refused
    connections, not an error.  POSTs are never retried automatically:
    submission is cheap to re-issue deliberately but not provably
    idempotent at the envelope level (a retry could register a
    duplicate campaign).
    """

    def __init__(self, base_url: str, *, tenant: str | None = None,
                 timeout: float = 300.0, idle_timeout: float = 60.0,
                 retries: int = 4, backoff_base: float = 0.25,
                 backoff_cap: float = 5.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.host, self.port = _split_url(self.base_url)
        self.tenant = tenant
        self.timeout = timeout
        self.idle_timeout = idle_timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _headers(self) -> dict:
        headers = {"Accept": "application/json"}
        if self.tenant:
            headers["X-Repro-Tenant"] = self.tenant
        return headers

    def request(
        self,
        method: str,
        path: str,
        *,
        body: dict | None = None,
        params: dict | None = None,
    ) -> dict:
        idempotent = method.upper() in ("GET", "HEAD")
        delays = backoff_delays(
            self.retries if idempotent else 0,
            base=self.backoff_base, cap=self.backoff_cap,
        )
        while True:
            try:
                return self._request_once(method, path, body, params)
            except http.client.HTTPException as exc:
                # Malformed / absent response head (server died mid-
                # reply): classify cleanly, then fall through to retry.
                exc = TransportError(f"{type(exc).__name__}: {exc}")
                delay = next(delays, None)
                if delay is None:
                    raise exc from None
            except RETRYABLE_ERRORS as exc:
                delay = next(delays, None)
                if delay is None:
                    raise
            time.sleep(delay)

    def _request_once(self, method, path, body, params) -> dict:
        conn = self._connect()
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = self._headers()
            if payload is not None:
                headers["Content-Type"] = "application/json"
            conn.request(method, path + _qs(params), body=payload,
                         headers=headers)
            resp = conn.getresponse()
            data = resp.read()
            parsed = json.loads(data) if data else {}
            if resp.status >= 400:
                raise ServiceError(
                    resp.status, parsed.get("error", data.decode()[:200])
                )
            return parsed
        finally:
            conn.close()

    def stream(
        self, path: str, *, params: dict | None = None
    ) -> Iterator[dict]:
        """Yield JSONL objects as the server writes them, until EOF.

        The per-request ``timeout`` only governs connect + response
        head; once the stream is live, reads run under ``idle_timeout``
        instead, and a quiet-too-long (or dropped) stream surfaces as
        :class:`StreamInterrupted` -- a reconnectable condition for the
        session's auto-reconnect -- never a raw ``socket.timeout``.
        """
        conn = self._connect()
        try:
            try:
                conn.request("GET", path + _qs(params),
                             headers=self._headers())
                # Grab the socket *before* getresponse(): close-framed
                # responses hand it to the response object and null out
                # conn.sock, but it is the same socket underneath and
                # settimeout() on it governs the stream reads below.
                sock = conn.sock
                resp = conn.getresponse()
            except http.client.HTTPException as exc:
                raise TransportError(f"{type(exc).__name__}: {exc}") from None
            if resp.status >= 400:
                data = resp.read()
                try:
                    message = json.loads(data).get("error", "")
                except json.JSONDecodeError:
                    message = data.decode()[:200]
                raise ServiceError(resp.status, message)
            if sock is not None and self.idle_timeout is not None:
                sock.settimeout(self.idle_timeout)
            while True:
                try:
                    line = resp.readline()
                except socket.timeout:
                    raise StreamInterrupted(
                        f"no stream data for {self.idle_timeout:g}s"
                    ) from None
                except (ConnectionError, OSError) as exc:
                    raise StreamInterrupted(
                        f"stream connection lost: {exc}"
                    ) from None
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()


class AsyncHttpTransport:
    """Asyncio transport: the same dialect over stream reader/writers."""

    def __init__(self, base_url: str, *, tenant: str | None = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.host, self.port = _split_url(self.base_url)
        self.tenant = tenant

    async def _open(self, method: str, path: str,
                    body: dict | None) -> tuple:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        payload = json.dumps(body).encode() if body is not None else b""
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Accept: application/json",
            "Connection: close",
        ]
        if self.tenant:
            head.append(f"X-Repro-Tenant: {self.tenant}")
        if payload:
            head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(payload)}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.split()
        if len(parts) < 2 or not parts[1].isdigit():
            # Server closed (or garbled) the connection before writing a
            # status line -- a restart mid-request.  Classify it cleanly
            # instead of letting IndexError/ValueError escape.
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            if not status_line:
                raise TransportError(
                    "server closed the connection before sending a response"
                )
            raise TransportError(
                f"malformed HTTP status line: {status_line[:80]!r}"
            )
        status = int(parts[1])
        while True:  # skip response headers; framing is close-delimited
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        return reader, writer, status

    async def request(
        self,
        method: str,
        path: str,
        *,
        body: dict | None = None,
        params: dict | None = None,
    ) -> dict:
        reader, writer, status = await self._open(
            method, path + _qs(params), body
        )
        try:
            data = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        parsed = json.loads(data) if data else {}
        if status >= 400:
            raise ServiceError(
                status, parsed.get("error", data.decode()[:200])
            )
        return parsed

    async def stream(
        self, path: str, *, params: dict | None = None
    ) -> AsyncIterator[dict]:
        reader, writer, status = await self._open(
            "GET", path + _qs(params), None
        )
        try:
            if status >= 400:
                data = await reader.read()
                try:
                    message = json.loads(data).get("error", "")
                except json.JSONDecodeError:
                    message = data.decode()[:200]
                raise ServiceError(status, message)
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, OSError) as exc:
                    raise StreamInterrupted(
                        f"stream connection lost: {exc}"
                    ) from None
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
