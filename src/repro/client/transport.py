"""HTTP transports for the fluent client: blocking and asyncio.

Both speak the job server's one-request-per-connection dialect
(:mod:`repro.service.server`): JSON request/response bodies, and JSONL
streams framed by connection close.  The blocking transport rides
stdlib ``http.client``; the async one rides ``asyncio.open_connection``
with the same minimal HTTP/1.1 the server itself uses.  Everything
above this module (sessions, elements, collections) is transport-
agnostic.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import urllib.parse
from typing import AsyncIterator, Iterator


class ServiceError(RuntimeError):
    """The server answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


def _split_url(base_url: str) -> tuple[str, int]:
    parsed = urllib.parse.urlsplit(base_url)
    if parsed.scheme not in ("http", ""):
        raise ValueError(f"only http:// service URLs are supported, "
                         f"got {base_url!r}")
    host = parsed.hostname or "127.0.0.1"
    return host, parsed.port or 80


def _qs(params: dict | None) -> str:
    if not params:
        return ""
    clean = {k: v for k, v in params.items() if v is not None}
    return "?" + urllib.parse.urlencode(clean) if clean else ""


class HttpTransport:
    """Blocking transport: one ``http.client`` connection per request."""

    def __init__(self, base_url: str, *, tenant: str | None = None,
                 timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.host, self.port = _split_url(self.base_url)
        self.tenant = tenant
        self.timeout = timeout

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _headers(self) -> dict:
        headers = {"Accept": "application/json"}
        if self.tenant:
            headers["X-Repro-Tenant"] = self.tenant
        return headers

    def request(
        self,
        method: str,
        path: str,
        *,
        body: dict | None = None,
        params: dict | None = None,
    ) -> dict:
        conn = self._connect()
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = self._headers()
            if payload is not None:
                headers["Content-Type"] = "application/json"
            conn.request(method, path + _qs(params), body=payload,
                         headers=headers)
            resp = conn.getresponse()
            data = resp.read()
            parsed = json.loads(data) if data else {}
            if resp.status >= 400:
                raise ServiceError(
                    resp.status, parsed.get("error", data.decode()[:200])
                )
            return parsed
        finally:
            conn.close()

    def stream(
        self, path: str, *, params: dict | None = None
    ) -> Iterator[dict]:
        """Yield JSONL objects as the server writes them, until EOF."""
        conn = self._connect()
        try:
            conn.request("GET", path + _qs(params), headers=self._headers())
            resp = conn.getresponse()
            if resp.status >= 400:
                data = resp.read()
                try:
                    message = json.loads(data).get("error", "")
                except json.JSONDecodeError:
                    message = data.decode()[:200]
                raise ServiceError(resp.status, message)
            while True:
                line = resp.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()


class AsyncHttpTransport:
    """Asyncio transport: the same dialect over stream reader/writers."""

    def __init__(self, base_url: str, *, tenant: str | None = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.host, self.port = _split_url(self.base_url)
        self.tenant = tenant

    async def _open(self, method: str, path: str,
                    body: dict | None) -> tuple:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        payload = json.dumps(body).encode() if body is not None else b""
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Accept: application/json",
            "Connection: close",
        ]
        if self.tenant:
            head.append(f"X-Repro-Tenant: {self.tenant}")
        if payload:
            head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(payload)}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        while True:  # skip response headers; framing is close-delimited
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        return reader, writer, status

    async def request(
        self,
        method: str,
        path: str,
        *,
        body: dict | None = None,
        params: dict | None = None,
    ) -> dict:
        reader, writer, status = await self._open(
            method, path + _qs(params), body
        )
        try:
            data = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        parsed = json.loads(data) if data else {}
        if status >= 400:
            raise ServiceError(
                status, parsed.get("error", data.decode()[:200])
            )
        return parsed

    async def stream(
        self, path: str, *, params: dict | None = None
    ) -> AsyncIterator[dict]:
        reader, writer, status = await self._open(
            "GET", path + _qs(params), None
        )
        try:
            if status >= 400:
                data = await reader.read()
                try:
                    message = json.loads(data).get("error", "")
                except json.JSONDecodeError:
                    message = data.decode()[:200]
                raise ServiceError(status, message)
            while True:
                line = await reader.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
