"""Fluent typed client for the repro job service.

Element/collection style (after smc-python): a :class:`Session` is the
entry point, campaigns are *elements* you build fluently and submit,
and jobs are queried through lazy *collections* with chainable
filters::

    from repro.client import Session

    with Session("http://127.0.0.1:8642", tenant="alice") as s:
        camp = (
            s.campaign("clrp-sweep")
            .defaults(protocol="clrp", dims="8x8",
                      workload={"kind": "uniform", "load": 0.1,
                                "length": 64, "duration": 3000})
            .grid({"workload.load": [0.05, 0.1, 0.2]})
            .priority(5)
            .submit()
        )
        for event in camp.stream():        # live JSONL completions
            print(event.label, event.status)
        ok = camp.jobs.filter(status="ok").all()
        slow = camp.jobs.filter(lambda j: j["elapsed_s"] > 1.0).all()
        camp.jobs.filter(status="failed").resubmit()

Collections never fetch until iterated; filters compose server-side
(plain field equality the API supports) and client-side (dotted paths
and callables).  :class:`AsyncSession` is the asyncio variant of the
same surface for embedding in event-loop code.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import AsyncIterator, Callable, Iterator

from repro.client.transport import (
    RETRYABLE_ERRORS,
    AsyncHttpTransport,
    HttpTransport,
    ServiceError,
    StreamInterrupted,
    TransportError,
    backoff_delays,
)

__all__ = [
    "AsyncCampaign",
    "AsyncSession",
    "Campaign",
    "CampaignBuilder",
    "Job",
    "JobCollection",
    "JobEvent",
    "ServiceError",
    "Session",
    "StreamInterrupted",
    "TransportError",
]

_SERVER_FILTERS = ("status", "tenant")


def _lookup(data: dict, path: str):
    """Resolve a dotted path (``metrics.throughput``) inside a dict."""
    node = data
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


@dataclass(frozen=True)
class JobEvent:
    """One streamed completion event (a JSONL line, typed)."""

    event: str
    seq: int | None = None
    id: str | None = None
    key: str | None = None
    label: str | None = None
    status: str | None = None
    from_cache: bool = False
    elapsed_s: float = 0.0
    metrics: dict | None = None
    failure: dict | None = None
    observe: dict | None = None
    counts: dict | None = None

    @classmethod
    def from_dict(cls, data: dict) -> "JobEvent":
        return cls(**{
            k: data[k] for k in cls.__dataclass_fields__ if k in data
        })

    @property
    def terminal(self) -> bool:
        return self.event == "end"


class Job:
    """One job element; lazily refreshable, dict-compatible."""

    def __init__(self, session: "Session", data: dict) -> None:
        self._session = session
        self.data = data

    def __getitem__(self, item):
        return self.data[item]

    def get(self, item, default=None):
        return self.data.get(item, default)

    @property
    def id(self) -> str:
        return self.data["id"]

    @property
    def status(self) -> str:
        return self.data["status"]

    @property
    def label(self) -> str:
        return self.data.get("label", "")

    @property
    def metrics(self) -> dict | None:
        return self.data.get("metrics")

    @property
    def spec(self) -> dict | None:
        """Full spec dict; fetched on demand (listings omit specs)."""
        if "spec" not in self.data:
            self.refresh()
        return self.data.get("spec")

    def refresh(self) -> "Job":
        self.data = self._session._transport.request(
            "GET", f"/api/jobs/{self.id}"
        )
        return self

    def __repr__(self) -> str:
        return f"Job({self.id!r}, {self.status!r}, {self.label!r})"


class JobCollection:
    """Lazy, chainable query over jobs.

    ``filter`` accepts keyword equality (``status="ok"``, dotted paths
    like ``**{"metrics.completed": True}`` via a dict) and positional
    callables taking the raw job dict.  Each ``filter`` returns a new
    collection; nothing hits the wire until you iterate / ``all()`` /
    ``first()`` / ``len()``.
    """

    def __init__(
        self,
        session: "Session",
        *,
        campaign_id: str | None = None,
        params: dict | None = None,
        predicates: tuple[Callable[[dict], bool], ...] = (),
    ) -> None:
        self._session = session
        self._campaign_id = campaign_id
        self._params = dict(params or {})
        self._predicates = predicates

    def filter(self, *callables, **equals) -> "JobCollection":
        params = dict(self._params)
        predicates = list(self._predicates)
        for fn in callables:
            if not callable(fn):
                raise TypeError(
                    f"positional filters must be callables, got {fn!r}"
                )
            predicates.append(fn)
        for field, wanted in equals.items():
            if field in _SERVER_FILTERS and field not in params:
                params[field] = wanted
            else:
                predicates.append(
                    lambda job, f=field, w=wanted: _lookup(job, f) == w
                )
        return JobCollection(
            self._session,
            campaign_id=self._campaign_id,
            params=params,
            predicates=tuple(predicates),
        )

    def _fetch(self) -> list[dict]:
        if self._campaign_id is not None:
            path = f"/api/campaigns/{self._campaign_id}/jobs"
        else:
            path = "/api/jobs"
        rows = self._session._transport.request(
            "GET", path, params=self._params
        )["jobs"]
        return [
            row for row in rows
            if all(pred(row) for pred in self._predicates)
        ]

    def __iter__(self) -> Iterator[Job]:
        return (Job(self._session, row) for row in self._fetch())

    def all(self) -> list[Job]:
        return list(self)

    def first(self) -> Job | None:
        rows = self._fetch()
        return Job(self._session, rows[0]) if rows else None

    def count(self) -> int:
        return len(self._fetch())

    def __len__(self) -> int:
        return self.count()

    def resubmit(self, *, name: str | None = None,
                 priority: int = 0) -> "Campaign":
        """Submit the matching jobs' specs as a fresh campaign.

        Completed specs resolve instantly from the result-store cache,
        so ``camp.jobs.filter(status="failed").resubmit()`` re-runs
        exactly the failures.
        """
        jobs = self.all()
        if not jobs:
            raise ValueError("no jobs match this collection; nothing to "
                             "resubmit")
        specs = [job.spec for job in jobs]
        return self._session.submit_specs(
            specs,
            name=name or f"resubmit-{len(specs)}",
            priority=priority,
        )

    # The ISSUE-style spelling: submitting a filtered collection *is*
    # a resubmission of its specs.
    submit = resubmit


class Campaign:
    """A submitted campaign element: status, jobs, stream, cancel."""

    def __init__(self, session: "Session", data: dict) -> None:
        self._session = session
        self.data = data

    @property
    def id(self) -> str:
        return self.data["id"]

    @property
    def name(self) -> str:
        return self.data["name"]

    @property
    def status(self) -> str:
        return self.data["status"]

    @property
    def counts(self) -> dict:
        return self.data.get("counts", {})

    @property
    def done(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    @property
    def jobs(self) -> JobCollection:
        return JobCollection(self._session, campaign_id=self.id)

    def refresh(self) -> "Campaign":
        self.data = self._session._transport.request(
            "GET", f"/api/campaigns/{self.id}"
        )
        return self

    def stream(self, *, reconnect: bool | None = None) -> Iterator[JobEvent]:
        """Live completion events as they happen, ending with ``end``.

        Self-healing by default: if the stream dies before its terminal
        event (server restart, dropped connection, idle timeout), the
        client reconnects with ``?since=<next seq>`` -- the server
        replays from exactly that cursor, so each job event is yielded
        **exactly once** even across a `serve --resume` restart
        mid-campaign.  ``reconnect=False`` restores single-shot
        behaviour (errors propagate).
        """
        session = self._session
        if reconnect is None:
            reconnect = session.reconnect
        since = 0
        delays = None  # fresh backoff schedule per outage
        while True:
            try:
                for line in session._transport.stream(
                    f"/api/campaigns/{self.id}/stream",
                    params={"since": since} if since else None,
                ):
                    event = JobEvent.from_dict(line)
                    if event.seq is not None:
                        since = event.seq + 1
                    delays = None  # stream is healthy again
                    yield event
                    if event.terminal:
                        return
                # EOF with no terminal event: the server went away
                # mid-stream (crash/restart); treat as reconnectable.
                last: Exception = StreamInterrupted(
                    "stream ended before the campaign finished"
                )
            except RETRYABLE_ERRORS as exc:
                last = exc
            if not reconnect:
                raise last
            if delays is None:
                delays = backoff_delays(
                    session.reconnect_attempts,
                    base=session.reconnect_backoff_s,
                )
            delay = next(delays, None)
            if delay is None:
                raise last
            time.sleep(delay)

    def wait(self, timeout: float | None = None) -> "Campaign":
        """Block until the campaign finishes (stream-driven, no polling).

        Rides the self-healing :meth:`stream`, so it survives server
        restarts mid-campaign.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for event in self.stream():
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"campaign {self.id} still {self.status!r} after "
                    f"{timeout:g}s"
                )
            if event.terminal:
                break
        return self.refresh()

    def results(self) -> list[dict]:
        """Every job record (spec + metrics), one dict per job."""
        return list(self._session._transport.stream(
            f"/api/campaigns/{self.id}/results"
        ))

    def cancel(self) -> dict:
        out = self._session._transport.request(
            "POST", f"/api/campaigns/{self.id}/cancel"
        )
        self.refresh()
        return out

    def __repr__(self) -> str:
        return f"Campaign({self.id!r}, {self.name!r}, {self.status!r})"


class CampaignBuilder:
    """Fluent campaign construction; ``submit()`` posts the document."""

    def __init__(self, session: "Session", name: str) -> None:
        self._session = session
        self._doc: dict = {"name": name}
        self._priority = 0
        self._tenant: str | None = None

    def defaults(self, **fields) -> "CampaignBuilder":
        """Merge fields into the document's ``defaults`` block."""
        self._doc.setdefault("defaults", {}).update(fields)
        return self

    def grid(self, paths: dict | None = None, **kw) -> "CampaignBuilder":
        """Cartesian sweep axes; dotted paths via a dict, plain via kw."""
        grid = self._doc.setdefault("grid", {})
        grid.update(paths or {})
        grid.update(kw)
        return self

    def job(self, **entry) -> "CampaignBuilder":
        """Append one explicit job entry (merged over defaults)."""
        self._doc.setdefault("jobs", []).append(entry)
        return self

    def priority(self, priority: int) -> "CampaignBuilder":
        self._priority = int(priority)
        return self

    def tenant(self, tenant: str) -> "CampaignBuilder":
        self._tenant = tenant
        return self

    def document(self) -> dict:
        """The campaign document this builder would submit."""
        return dict(self._doc)

    def submit(self) -> Campaign:
        return self._session.submit_campaign(
            self.document(),
            tenant=self._tenant,
            priority=self._priority,
        )


class Session:
    """Blocking entry point to one job server.

    Resilience knobs: ``retries``/``backoff_s`` govern the transport's
    automatic retry of idempotent requests; ``reconnect`` /
    ``reconnect_attempts`` / ``reconnect_backoff_s`` govern stream
    auto-reconnect (``camp.stream()`` / ``camp.wait()`` surviving a
    server restart mid-campaign); ``idle_timeout`` bounds how long a
    silent stream read may block before reconnecting.
    """

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8642",
        *,
        tenant: str | None = None,
        timeout: float = 300.0,
        idle_timeout: float = 60.0,
        retries: int = 4,
        backoff_s: float = 0.25,
        reconnect: bool = True,
        reconnect_attempts: int = 8,
        reconnect_backoff_s: float = 0.25,
    ) -> None:
        self._transport = HttpTransport(
            base_url, tenant=tenant, timeout=timeout,
            idle_timeout=idle_timeout, retries=retries,
            backoff_base=backoff_s,
        )
        self.reconnect = reconnect
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_backoff_s = reconnect_backoff_s

    # -- service-level --------------------------------------------------

    def health(self) -> dict:
        return self._transport.request("GET", "/health")

    def store_stats(self) -> dict:
        return self._transport.request("GET", "/api/store")

    # -- campaigns ------------------------------------------------------

    def campaign(self, name: str) -> CampaignBuilder:
        """Start building a new campaign (fluent)."""
        return CampaignBuilder(self, name)

    def get_campaign(self, ident: str) -> Campaign:
        """Fetch an existing campaign by id or name."""
        return Campaign(
            self, self._transport.request("GET", f"/api/campaigns/{ident}")
        )

    def campaigns(self) -> list[Campaign]:
        rows = self._transport.request("GET", "/api/campaigns")["campaigns"]
        return [Campaign(self, row) for row in rows]

    def submit_campaign(
        self,
        document: dict,
        *,
        tenant: str | None = None,
        priority: int = 0,
    ) -> Campaign:
        """Submit a campaign document (the ``repro batch`` file schema)."""
        body = {"document": document, "priority": priority}
        if tenant:
            body["tenant"] = tenant
        return Campaign(
            self, self._transport.request("POST", "/api/campaigns",
                                          body=body)
        )

    def submit_specs(
        self,
        specs,
        *,
        name: str = "specs",
        tenant: str | None = None,
        priority: int = 0,
    ) -> Campaign:
        """Submit explicit specs (JobSpec objects or spec dicts)."""
        dicts = [
            spec.to_dict() if hasattr(spec, "to_dict") else spec
            for spec in specs
        ]
        body = {"specs": dicts, "name": name, "priority": priority}
        if tenant:
            body["tenant"] = tenant
        return Campaign(
            self, self._transport.request("POST", "/api/campaigns",
                                          body=body)
        )

    # -- jobs -----------------------------------------------------------

    @property
    def jobs(self) -> JobCollection:
        """Query jobs across every campaign on the server."""
        return JobCollection(self)

    def get_job(self, job_id: str) -> Job:
        return Job(self, self._transport.request(
            "GET", f"/api/jobs/{job_id}"
        ))

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        pass  # connections are per-request; nothing to tear down


class AsyncCampaign:
    """Asyncio view of a submitted campaign."""

    def __init__(self, session: "AsyncSession", data: dict) -> None:
        self._session = session
        self.data = data

    @property
    def id(self) -> str:
        return self.data["id"]

    @property
    def status(self) -> str:
        return self.data["status"]

    async def refresh(self) -> "AsyncCampaign":
        self.data = await self._session._transport.request(
            "GET", f"/api/campaigns/{self.id}"
        )
        return self

    async def stream(
        self, *, reconnect: bool | None = None
    ) -> AsyncIterator[JobEvent]:
        """Self-healing event stream (asyncio mirror of
        :meth:`Campaign.stream`): reconnects with the ``?since=`` cursor
        so each event is yielded exactly once across server restarts."""
        session = self._session
        if reconnect is None:
            reconnect = session.reconnect
        since = 0
        delays = None
        while True:
            try:
                async for line in session._transport.stream(
                    f"/api/campaigns/{self.id}/stream",
                    params={"since": since} if since else None,
                ):
                    event = JobEvent.from_dict(line)
                    if event.seq is not None:
                        since = event.seq + 1
                    delays = None
                    yield event
                    if event.terminal:
                        return
                last: Exception = StreamInterrupted(
                    "stream ended before the campaign finished"
                )
            except RETRYABLE_ERRORS as exc:
                last = exc
            if not reconnect:
                raise last
            if delays is None:
                delays = backoff_delays(
                    session.reconnect_attempts,
                    base=session.reconnect_backoff_s,
                )
            delay = next(delays, None)
            if delay is None:
                raise last
            await asyncio.sleep(delay)

    async def wait(self) -> "AsyncCampaign":
        async for event in self.stream():
            if event.terminal:
                break
        return await self.refresh()

    async def jobs(self, **filters) -> list[dict]:
        data = await self._session._transport.request(
            "GET", f"/api/campaigns/{self.id}/jobs",
            params=filters or None,
        )
        return data["jobs"]

    async def cancel(self) -> dict:
        return await self._session._transport.request(
            "POST", f"/api/campaigns/{self.id}/cancel"
        )


class AsyncSession:
    """Asyncio variant of :class:`Session` (same REST surface)."""

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8642",
        *,
        tenant: str | None = None,
        reconnect: bool = True,
        reconnect_attempts: int = 8,
        reconnect_backoff_s: float = 0.25,
    ) -> None:
        self._transport = AsyncHttpTransport(base_url, tenant=tenant)
        self.reconnect = reconnect
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_backoff_s = reconnect_backoff_s

    async def health(self) -> dict:
        return await self._transport.request("GET", "/health")

    async def store_stats(self) -> dict:
        return await self._transport.request("GET", "/api/store")

    async def submit_campaign(
        self,
        document: dict,
        *,
        tenant: str | None = None,
        priority: int = 0,
    ) -> AsyncCampaign:
        body = {"document": document, "priority": priority}
        if tenant:
            body["tenant"] = tenant
        data = await self._transport.request(
            "POST", "/api/campaigns", body=body
        )
        return AsyncCampaign(self, data)

    async def get_campaign(self, ident: str) -> AsyncCampaign:
        data = await self._transport.request(
            "GET", f"/api/campaigns/{ident}"
        )
        return AsyncCampaign(self, data)
