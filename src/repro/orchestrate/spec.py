"""Declarative job specifications for experiment campaigns.

A :class:`JobSpec` is everything one simulation run needs, expressed as
plain picklable data: the machine (:class:`~repro.sim.config.NetworkConfig`),
a :class:`WorkloadRecipe` naming how to *build* the traffic (no closures,
no pre-built objects), and the run controls (cycle budget, measurement
warmup, fault fraction, monitors).  Because a spec is pure data it can

* cross a process boundary to a worker (the pool in :mod:`.pool`),
* be hashed into a stable content key (the cache in :mod:`.store`),
* round-trip through JSON (campaign files in :mod:`.campaign`).

Determinism contract: a spec fully determines its result.  Every source
of randomness inside a job derives from ``spec.config.seed`` via
:class:`~repro.sim.rng.SimRandom`, so executing the same spec serially,
in a worker process, or on another machine yields bit-identical metrics.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.config import (
    NetworkConfig,
    ReliabilityConfig,
    WaveConfig,
    WormholeConfig,
)

_PRIMITIVES = (str, int, float, bool, type(None))


def _freeze(value):
    """Normalise a JSON-ish value into a hashable, canonical form."""
    if isinstance(value, _PRIMITIVES):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    raise ConfigError(
        f"workload recipe parameters must be JSON-like scalars or lists, "
        f"got {type(value).__name__}"
    )


def _thaw(value):
    """Inverse of :func:`_freeze` for JSON serialisation (tuples -> lists)."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class WorkloadRecipe:
    """A named workload constructor plus its parameters, as pure data.

    ``kind`` selects a builder from the registry in :mod:`.recipes`;
    ``params`` is a sorted tuple of ``(name, value)`` pairs so that two
    recipes with the same content compare (and hash) equal regardless of
    the order the caller supplied keyword arguments in.
    """

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    @classmethod
    def make(cls, kind: str, **params) -> "WorkloadRecipe":
        frozen = tuple(
            (name, _freeze(value)) for name, value in sorted(params.items())
        )
        return cls(kind=kind, params=frozen)

    def as_dict(self) -> dict:
        return {"kind": self.kind, **{k: _thaw(v) for k, v in self.params}}

    def param(self, name: str, default=None):
        for key, value in self.params:
            if key == name:
                return value
        return default

    def require(self, name: str):
        sentinel = object()
        got = self.param(name, sentinel)
        if got is sentinel:
            raise ConfigError(
                f"workload recipe {self.kind!r} requires parameter {name!r}"
            )
        return got


def recipe_from_dict(data: dict) -> WorkloadRecipe:
    """Build a recipe from a campaign-file dict: ``{"kind": ..., **params}``."""
    if not isinstance(data, dict) or "kind" not in data:
        raise ConfigError(
            f"workload must be an object with a 'kind' field, got {data!r}"
        )
    params = {k: v for k, v in data.items() if k != "kind"}
    return WorkloadRecipe.make(str(data["kind"]), **params)


@dataclass(frozen=True)
class JobSpec:
    """One fully-specified simulation run.

    Attributes:
        config: the machine under test (carries the master ``seed``).
        workload: how to build the traffic (see :mod:`.recipes`).
        label: human-readable name for reports; *excluded* from the
            content key so relabelling a campaign does not invalidate
            its cache.
        max_cycles: simulation cycle budget.
        warmup: messages delivered before this cycle are excluded from
            the throughput window (``run_experiment`` methodology).
        fault_fraction: static fraction of physical links to fail,
            derived deterministically from ``config.seed``.
        mtbf: network-wide mean cycles between dynamic link kills; 0
            (default) disables the dynamic fault campaign.  The schedule
            is derived deterministically from ``config.seed``.
        mttr: cycles until a killed link heals; 0 means faults are
            permanent.  Only meaningful with ``mtbf > 0``.
        deadlock_check_interval / progress_timeout: monitor settings,
            passed through to the :class:`~repro.sim.engine.Simulator`.
        metrics_every: sample the observability metric registry every
            this many cycles during the run; 0 (default) disables
            sampling.  Sampled jobs carry an ``observe.*`` summary in
            their result metrics.
        invariants_every: run the full per-cycle invariant harness
            (:class:`~repro.verify.fuzz.InvariantHarness`) every this
            many cycles, plus its end-of-run delivered-or-reported
            audit; 0 (default) disables it.  Fuzz jobs set this.
    """

    config: NetworkConfig
    workload: WorkloadRecipe
    label: str = ""
    max_cycles: int = 200_000
    warmup: int = 0
    fault_fraction: float = 0.0
    deadlock_check_interval: int = 0
    progress_timeout: int = 0
    mtbf: int = 0
    mttr: int = 0
    metrics_every: int = 0
    invariants_every: int = 0

    def __post_init__(self) -> None:
        if self.max_cycles < 1:
            raise ConfigError(f"max_cycles must be >= 1, got {self.max_cycles}")
        if self.warmup < 0:
            raise ConfigError(f"warmup must be >= 0, got {self.warmup}")
        if not 0 <= self.fault_fraction < 1:
            raise ConfigError(
                f"fault_fraction must be in [0, 1), got {self.fault_fraction}"
            )
        if self.mtbf < 0:
            raise ConfigError(f"mtbf must be >= 0, got {self.mtbf}")
        if self.mttr < 0:
            raise ConfigError(f"mttr must be >= 0, got {self.mttr}")
        if self.metrics_every < 0:
            raise ConfigError(
                f"metrics_every must be >= 0, got {self.metrics_every}"
            )
        if self.invariants_every < 0:
            raise ConfigError(
                f"invariants_every must be >= 0, got {self.invariants_every}"
            )

    # -- serialisation --------------------------------------------------

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["config"]["dims"] = list(self.config.dims)
        data["workload"] = self.workload.as_dict()
        # Omit disabled-by-default fields entirely: pre-existing stored
        # results keep their content-hash keys (see key()).
        if data["config"].get("reliability") is None:
            del data["config"]["reliability"]
        # The stepping backend never changes results (bit-identity
        # contract), but a non-default choice is still recorded so a
        # campaign file round-trips faithfully.
        if data["config"].get("backend", "active") == "active":
            data["config"].pop("backend", None)
        if not self.mtbf:
            del data["mtbf"]
        if not self.mttr:
            del data["mttr"]
        if not self.metrics_every:
            del data["metrics_every"]
        if not self.invariants_every:
            del data["invariants_every"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        cfg = dict(data["config"])
        wormhole = WormholeConfig(**cfg.pop("wormhole"))
        wave_data = cfg.pop("wave")
        wave = WaveConfig(**wave_data) if wave_data is not None else None
        rel_data = cfg.pop("reliability", None)
        reliability = (
            ReliabilityConfig(**rel_data) if rel_data is not None else None
        )
        config = NetworkConfig(
            topology=cfg["topology"],
            dims=tuple(cfg["dims"]),
            protocol=cfg["protocol"],
            wormhole=wormhole,
            wave=wave,
            seed=cfg.get("seed", 0),
            reliability=reliability,
            backend=cfg.get("backend", "active"),
        )
        return cls(
            config=config,
            workload=recipe_from_dict(data["workload"]),
            label=data.get("label", ""),
            max_cycles=data.get("max_cycles", 200_000),
            warmup=data.get("warmup", 0),
            fault_fraction=data.get("fault_fraction", 0.0),
            deadlock_check_interval=data.get("deadlock_check_interval", 0),
            progress_timeout=data.get("progress_timeout", 0),
            mtbf=data.get("mtbf", 0),
            mttr=data.get("mttr", 0),
            metrics_every=data.get("metrics_every", 0),
            invariants_every=data.get("invariants_every", 0),
        )

    # -- content key ----------------------------------------------------

    def key(self) -> str:
        """Stable content hash of everything that affects the result.

        The ``label`` is cosmetic and excluded, so renaming sweep points
        still hits the cache.  The stepping ``backend`` is likewise
        excluded: all backends are bit-identical, so a result computed
        under one is valid for every other.  Uses canonical (sorted-keys)
        JSON over the spec dict and BLAKE2b, the same keyed-derivation
        primitive the simulator's RNG uses -- stable across processes and
        Python runs.
        """
        data = self.to_dict()
        data.pop("label", None)
        data["config"].pop("backend", None)
        canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()
