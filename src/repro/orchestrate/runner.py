"""Executing one JobSpec: the unit of work a pool worker performs.

:func:`execute_job` is deliberately the *only* path from a spec to a
result -- the serial ``jobs=1`` degenerate case and every pool worker
call the same function, which is what makes the parallel/serial
bit-identical equivalence a structural property rather than a test
hope.  It returns a plain JSON-serialisable metrics dict (picklable
across the process boundary, storable in the JSONL result store).

``run_experiment`` is resolved late (module attribute lookup at call
time) so tests that monkeypatch
``repro.analysis.experiments.run_experiment`` intercept orchestrated
runs too.
"""

from __future__ import annotations

import math

from repro.analysis import experiments as _experiments
from repro.network.network import Network
from repro.observe.metrics import NetworkSampler
from repro.orchestrate.recipes import build_workload
from repro.orchestrate.spec import JobSpec
from repro.sim.engine import SimulationResult
from repro.sim.stats import StatsCollector
from repro.topology import FaultSchedule, FaultSet, build_topology
from repro.topology.faults import derive_fault_rng
from repro.traffic.compiler import compile_directives
from repro.verify import (
    check_all_invariants,
    check_fault_isolation,
    teardown_latency,
)


def execute_job(spec: JobSpec) -> dict:
    """Run one spec to completion and return its metrics dict."""
    config = spec.config
    topology = build_topology(config.topology, config.dims)
    items = build_workload(spec, topology)
    if config.protocol == "carp":
        items, _report = compile_directives(items)
    faults = None
    if spec.mtbf:
        faults = FaultSchedule.random_campaign(
            topology,
            mtbf=spec.mtbf,
            mttr=spec.mttr,
            horizon=spec.max_cycles,
            rng=derive_fault_rng(config.seed),
        )
    if spec.fault_fraction:
        if faults is None:
            faults = FaultSet(topology)
        # The static fraction layers onto the same fault set; the
        # connectivity guard in fail_random_links sees links already
        # dead at cycle 0 but not future scheduled kills.
        faults.fail_random_links(
            spec.fault_fraction, derive_fault_rng(config.seed)
        )
    net = (
        Network(config, faults=faults)
        if faults is not None or spec.metrics_every or spec.invariants_every
        else None
    )
    sampler = None
    if spec.metrics_every:
        sampler = NetworkSampler(net, spec.metrics_every)
    harness = None
    if spec.invariants_every:
        from repro.verify.fuzz import InvariantHarness

        harness = InvariantHarness(net, every=spec.invariants_every)
    result = _experiments.run_experiment(
        config,
        items,
        label=spec.label,
        max_cycles=spec.max_cycles,
        warmup=spec.warmup,
        deadlock_check_interval=spec.deadlock_check_interval,
        progress_timeout=spec.progress_timeout,
        faults=faults,
        network=net,
        sampler=sampler,
        on_cycle=harness.on_cycle if harness is not None else None,
    )
    if harness is not None:
        harness.finish(result)
    if net is not None:
        # Fault runs end with a structural audit: the distributed
        # register state must be coherent, and -- once the last kill's
        # teardowns have had time to settle -- nothing live may still
        # reference a dead link.
        check_all_invariants(net)
        if isinstance(faults, FaultSchedule) and net.cycle >= (
            faults.last_kill_cycle + teardown_latency(net)
        ):
            check_fault_isolation(net)
    metrics = result_to_metrics(result)
    if harness is not None:
        metrics["invariants"] = {
            "every": spec.invariants_every,
            "checks": harness.checks_run,
        }
    if sampler is not None:
        # Per-job metric summary rides with the result into the store;
        # the full time series stays in the worker (summaries are small
        # and JSON-able, series are not worth a process-boundary copy).
        metrics["observe"] = {
            "every": spec.metrics_every,
            "samples": sampler.samples_taken,
            "series": sampler.registry.summary(),
        }
    return metrics


def result_to_metrics(result) -> dict:
    """Flatten an ExperimentResult into plain JSON-able data.

    Floats survive both pickling and JSON round-trips exactly (repr-based
    encoding), so cached metrics stay bit-identical to fresh ones.
    """
    return {
        "label": result.label,
        "mean_latency": result.mean_latency,
        "p95_latency": result.p95_latency,
        "throughput": result.throughput,
        "delivered": result.delivered,
        "injected": result.injected,
        "mode_breakdown": dict(result.mode_breakdown),
        "counters": dict(result.counters),
        "cycles": result.sim.cycles,
        "completed": result.sim.completed,
    }


def metrics_to_experiment_result(metrics: dict):
    """Rebuild an ExperimentResult view over a worker's metrics dict.

    The embedded :class:`SimulationResult` carries the run's scalar
    outcome (cycles, completion, counts) but an *empty* StatsCollector:
    per-message records stay in the worker.  All headline fields
    (latency, throughput, breakdowns, counters) are exact.
    """
    sim = SimulationResult(
        cycles=metrics["cycles"],
        stats=StatsCollector(),
        completed=metrics["completed"],
        injected=metrics["injected"],
        delivered=metrics["delivered"],
    )
    return _experiments.ExperimentResult(
        label=metrics["label"],
        sim=sim,
        mean_latency=metrics["mean_latency"],
        p95_latency=metrics["p95_latency"],
        throughput=metrics["throughput"],
        delivered=metrics["delivered"],
        injected=metrics["injected"],
        mode_breakdown=dict(metrics["mode_breakdown"]),
        counters=dict(metrics["counters"]),
    )


def delivery_ratio(metrics: dict) -> float:
    """Delivered/injected from a metrics dict (NaN when nothing injected)."""
    injected = metrics["injected"]
    return metrics["delivered"] / injected if injected else math.nan
