"""Workload recipe registry: from declarative spec to message stream.

Each recipe ``kind`` maps to a builder ``(spec, topology) -> list`` that
reconstructs the workload *inside the executing process* (worker or
parent) from nothing but the spec's parameters and ``config.seed``.
This is what keeps :class:`~repro.orchestrate.spec.JobSpec` picklable
and content-hashable: no message objects or closures ever travel with
the spec, except for the ``explicit`` recipe which carries plain message
tuples (the bridge from legacy callable-based sweep APIs).

The registry is open: tests and downstream code may
:func:`register_recipe` new kinds.  With the default ``fork`` start
method on Linux, recipes registered before the pool starts are visible
inside workers.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.network.message import Message, MessageFactory
from repro.orchestrate.spec import JobSpec, WorkloadRecipe
from repro.sim.rng import SimRandom
from repro.topology.base import Topology
from repro.traffic.patterns import make_pattern
from repro.traffic.workloads import (
    all_to_all_workload,
    dsm_workload,
    pair_stream_workload,
    stencil_workload,
    uniform_workload,
)

RecipeBuilder = Callable[[JobSpec, Topology], list]

_BUILDERS: dict[str, RecipeBuilder] = {}


def register_recipe(kind: str) -> Callable[[RecipeBuilder], RecipeBuilder]:
    """Register a workload builder for ``kind`` (decorator)."""

    def deco(fn: RecipeBuilder) -> RecipeBuilder:
        _BUILDERS[kind] = fn
        return fn

    return deco


def known_recipes() -> tuple[str, ...]:
    return tuple(sorted(_BUILDERS))


def build_workload(spec: JobSpec, topology: Topology) -> list:
    """Construct the spec's message stream (sorted by creation cycle)."""
    builder = _BUILDERS.get(spec.workload.kind)
    if builder is None:
        raise ConfigError(
            f"unknown workload recipe {spec.workload.kind!r}; "
            f"known: {', '.join(known_recipes())}"
        )
    return builder(spec, topology)


# -- bridging from materialised message lists ---------------------------


def explicit_recipe(messages: list[Message]) -> WorkloadRecipe:
    """Freeze an already-built message list into a declarative recipe.

    Used to route the legacy callable-based sweep APIs through the
    orchestrator: the parent materialises the workload once, and workers
    rebuild bit-identical :class:`Message` objects (same ``msg_id``\\ s,
    so arbitration tie-breaks cannot diverge from a serial run).
    """
    rows = []
    for m in messages:
        if not isinstance(m, Message):
            raise ConfigError(
                "explicit recipes carry plain messages only; compiled "
                f"streams (got {type(m).__name__}) need a named recipe"
            )
        rows.append((m.msg_id, m.src, m.dst, m.length, m.created, m.circuit_hint))
    return WorkloadRecipe.make("explicit", messages=rows)


def materialize_spec(config, messages, **spec_kwargs) -> JobSpec:
    """Convenience: wrap ``(config, messages)`` into an explicit JobSpec."""
    return JobSpec(config=config, workload=explicit_recipe(messages), **spec_kwargs)


# -- built-in recipes ---------------------------------------------------


@register_recipe("explicit")
def _explicit(spec: JobSpec, topology: Topology) -> list:
    return [
        Message(
            msg_id=row[0],
            src=row[1],
            dst=row[2],
            length=row[3],
            created=row[4],
            circuit_hint=row[5],
        )
        for row in spec.workload.require("messages")
    ]


@register_recipe("uniform")
def _uniform(spec: JobSpec, topology: Topology) -> list:
    """Open-loop load against a named traffic pattern.

    Mirrors the CLI's workload construction exactly (master RNG from
    ``config.seed``, pattern on the ``"pattern"`` stream) so a CLI sweep
    point and the equivalent campaign job share one derivation.
    """
    recipe = spec.workload
    rng = SimRandom(spec.config.seed)
    pattern = make_pattern(
        str(recipe.param("pattern", "uniform")), topology, rng.stream("pattern")
    )
    return uniform_workload(
        MessageFactory(),
        pattern,
        num_nodes=topology.num_endpoints,
        offered_load=recipe.require("load"),
        length=recipe.require("length"),
        duration=recipe.require("duration"),
        rng=rng,
        start=recipe.param("start", 0),
    )


@register_recipe("pair_stream")
def _pair_stream(spec: JobSpec, topology: Topology) -> list:
    recipe = spec.workload
    return pair_stream_workload(
        MessageFactory(),
        [tuple(pair) for pair in recipe.require("pairs")],
        messages_per_pair=recipe.require("messages_per_pair"),
        length=recipe.require("length"),
        gap=recipe.require("gap"),
        start=recipe.param("start", 0),
    )


@register_recipe("stencil")
def _stencil(spec: JobSpec, topology: Topology) -> list:
    recipe = spec.workload
    return stencil_workload(
        MessageFactory(),
        topology,
        phases=recipe.require("phases"),
        phase_gap=recipe.require("phase_gap"),
        length=recipe.require("length"),
        start=recipe.param("start", 0),
    )


@register_recipe("all_to_all")
def _all_to_all(spec: JobSpec, topology: Topology) -> list:
    recipe = spec.workload
    return all_to_all_workload(
        MessageFactory(),
        topology.num_endpoints,
        rounds=recipe.require("rounds"),
        round_gap=recipe.require("round_gap"),
        length=recipe.require("length"),
        start=recipe.param("start", 0),
        stagger=recipe.param("stagger", 0),
    )


@register_recipe("dsm")
def _dsm(spec: JobSpec, topology: Topology) -> list:
    recipe = spec.workload
    return dsm_workload(
        MessageFactory(),
        topology,
        misses_per_node=recipe.require("misses_per_node"),
        request_length=recipe.param("request_length", 1),
        line_length=recipe.param("line_length", 8),
        home_window=recipe.param("home_window", 4),
        miss_gap=recipe.param("miss_gap", 25),
        memory_latency=recipe.param("memory_latency", 30),
        rng=SimRandom(spec.config.seed),
        start=recipe.param("start", 0),
    )
