"""Multiprocessing worker pool with timeouts, crash retry and caching.

:func:`run_jobs` executes a list of :class:`JobSpec`\\ s and returns one
:class:`JobOutcome` per spec, **ordered by job index** (the merge step
that makes parallel campaigns deterministic).  Three execution regimes:

* **cached** -- the spec's content key has a successful record in the
  :class:`~repro.orchestrate.store.ResultStore`; the job never runs.
* **serial** (``jobs <= 1``) -- specs execute in-process one by one, the
  degenerate case.  Failures still become structured records instead of
  aborting the campaign; per-job timeouts need worker processes and are
  not enforced serially.
* **parallel** (``jobs >= 2``) -- a pool of worker processes, one
  in-flight job per worker.  A job that *raises* yields an ``exception``
  failure record immediately (deterministic, no retry).  A worker that
  *dies* mid-job (hard crash) gets the job retried up to ``retries``
  times on a fresh worker before a ``crash`` record is written.  A job
  that exceeds ``timeout_s`` has its worker killed and yields a
  ``timeout`` record.  The campaign always completes the remaining jobs.

Workers are forked (POSIX), so recipes registered by the parent before
the pool starts are visible in workers.  Each worker gets its own task
pipe; results funnel through one queue.  Failure records carry the
worker-side traceback for post-mortems.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.orchestrate.runner import execute_job
from repro.orchestrate.spec import JobSpec
from repro.orchestrate.store import ResultStore

FAILURE_EXCEPTION = "exception"
FAILURE_TIMEOUT = "timeout"
FAILURE_CRASH = "crash"


@dataclass
class JobOutcome:
    """Final disposition of one spec in a campaign run."""

    index: int
    spec: JobSpec
    status: str  # "ok" | "failed"
    metrics: dict | None = None
    failure: dict | None = None  # {"kind": ..., "message": ...}
    elapsed_s: float = 0.0
    attempts: int = 0
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class PoolProgress:
    """Snapshot passed to the progress callback after each resolution."""

    total: int
    done: int
    ok: int
    failed: int
    cached: int
    last: JobOutcome | None = None


ProgressCallback = Callable[[PoolProgress], None]


def run_jobs(
    specs: Sequence[JobSpec],
    *,
    jobs: int = 1,
    timeout_s: float | None = None,
    retries: int = 1,
    store: ResultStore | None = None,
    progress: ProgressCallback | None = None,
) -> list[JobOutcome]:
    """Execute specs, returning outcomes ordered by job index.

    Args:
        jobs: worker processes; ``<= 1`` runs serially in-process.
        timeout_s: per-job wall-clock limit (parallel mode only).
        retries: extra attempts for jobs whose worker crashed.
        store: result store for caching, persistence and resume.
        progress: called after the cache scan and each job resolution.
    """
    specs = list(specs)
    outcomes: dict[int, JobOutcome] = {}
    todo: list[tuple[int, JobSpec]] = []

    for index, spec in enumerate(specs):
        metrics = store.cached_metrics(spec.key()) if store is not None else None
        if metrics is not None:
            outcomes[index] = JobOutcome(
                index=index,
                spec=spec,
                status="ok",
                metrics=metrics,
                from_cache=True,
            )
        else:
            todo.append((index, spec))

    tally = _Tally(total=len(specs), cached=len(outcomes), progress=progress)
    tally.emit(None)

    def resolve(outcome: JobOutcome) -> None:
        outcomes[outcome.index] = outcome
        if store is not None:
            store.record(
                outcome.spec.key(),
                spec_dict=outcome.spec.to_dict(),
                status=outcome.status,
                metrics=outcome.metrics,
                failure=outcome.failure,
                elapsed_s=outcome.elapsed_s,
                attempts=outcome.attempts,
            )
        tally.emit(outcome)

    if jobs <= 1:
        for index, spec in todo:
            resolve(_run_serial(index, spec))
    elif todo:
        _run_parallel(
            todo,
            jobs=min(jobs, len(todo)),
            timeout_s=timeout_s,
            retries=retries,
            resolve=resolve,
        )

    return [outcomes[i] for i in range(len(specs))]


class _Tally:
    def __init__(self, total: int, cached: int, progress) -> None:
        self.total = total
        self.cached = cached
        self.ok = 0
        self.failed = 0
        self.progress = progress

    def emit(self, outcome: JobOutcome | None) -> None:
        if outcome is not None:
            if outcome.ok:
                self.ok += 1
            else:
                self.failed += 1
        if self.progress is not None:
            self.progress(
                PoolProgress(
                    total=self.total,
                    done=self.cached + self.ok + self.failed,
                    ok=self.ok,
                    failed=self.failed,
                    cached=self.cached,
                    last=outcome,
                )
            )


def _run_serial(index: int, spec: JobSpec) -> JobOutcome:
    start = time.perf_counter()
    try:
        metrics = execute_job(spec)
    except Exception as exc:
        return JobOutcome(
            index=index,
            spec=spec,
            status="failed",
            failure=_failure(FAILURE_EXCEPTION, exc),
            elapsed_s=time.perf_counter() - start,
            attempts=1,
        )
    return JobOutcome(
        index=index,
        spec=spec,
        status="ok",
        metrics=metrics,
        elapsed_s=time.perf_counter() - start,
        attempts=1,
    )


def _failure(kind: str, exc: BaseException | str) -> dict:
    if isinstance(exc, BaseException):
        message = f"{type(exc).__name__}: {exc}"
    else:
        message = str(exc)
    return {"kind": kind, "message": message}


# -- parallel machinery -------------------------------------------------


def _worker_main(conn, result_queue) -> None:
    """Worker loop: receive (index, spec), reply on the shared queue."""
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        index, spec = item
        start = time.perf_counter()
        try:
            metrics = execute_job(spec)
        except BaseException as exc:
            detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=20)}"
            result_queue.put(
                (index, "error", None, detail, time.perf_counter() - start)
            )
        else:
            result_queue.put(
                (index, "ok", metrics, None, time.perf_counter() - start)
            )


class _Worker:
    def __init__(self, ctx, result_queue) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main, args=(child_conn, result_queue), daemon=True
        )
        self.proc.start()
        child_conn.close()
        self.current: tuple[int, JobSpec, int, float] | None = None

    def assign(self, index: int, spec: JobSpec, attempt: int) -> None:
        self.conn.send((index, spec))
        self.current = (index, spec, attempt, time.perf_counter())

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5)
        self.conn.close()

    def shutdown(self) -> None:
        try:
            if self.proc.is_alive():
                self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=5)
        if self.proc.is_alive():  # pragma: no cover - stuck worker backstop
            self.proc.terminate()
            self.proc.join(timeout=5)
        self.conn.close()


def _run_parallel(
    todo: list[tuple[int, JobSpec]],
    *,
    jobs: int,
    timeout_s: float | None,
    retries: int,
    resolve: Callable[[JobOutcome], None],
) -> None:
    ctx = multiprocessing.get_context("fork")
    result_queue = ctx.Queue()
    workers = [_Worker(ctx, result_queue) for _ in range(jobs)]
    # attempt counts start at 1; crashes requeue with attempt + 1
    pending: deque[tuple[int, JobSpec, int]] = deque(
        (index, spec, 1) for index, spec in todo
    )
    unresolved = len(todo)

    def finish_worker(worker: _Worker) -> tuple[int, JobSpec, int, float]:
        current = worker.current
        assert current is not None
        worker.current = None
        return current

    try:
        while unresolved > 0:
            for worker in workers:
                if worker.current is None and pending:
                    worker.assign(*pending.popleft())

            # Drain every finished result before judging liveness, so a
            # result already queued by a since-exited worker is never
            # misread as a crash.
            drained = []
            try:
                drained.append(result_queue.get(timeout=0.05))
                while True:
                    drained.append(result_queue.get_nowait())
            except queue_mod.Empty:
                pass

            for index, kind, metrics, detail, elapsed in drained:
                worker = next(
                    (w for w in workers if w.current and w.current[0] == index),
                    None,
                )
                if worker is None:  # pragma: no cover - late result after kill
                    continue
                _, spec, attempt, _started = finish_worker(worker)
                if kind == "ok":
                    resolve(
                        JobOutcome(
                            index=index,
                            spec=spec,
                            status="ok",
                            metrics=metrics,
                            elapsed_s=elapsed,
                            attempts=attempt,
                        )
                    )
                else:
                    # Deterministic in-job exception: no point retrying.
                    resolve(
                        JobOutcome(
                            index=index,
                            spec=spec,
                            status="failed",
                            failure=_failure(FAILURE_EXCEPTION, detail),
                            elapsed_s=elapsed,
                            attempts=attempt,
                        )
                    )
                unresolved -= 1

            now = time.perf_counter()
            for slot, worker in enumerate(workers):
                if worker.current is None:
                    continue
                index, spec, attempt, started = worker.current
                if timeout_s is not None and now - started > timeout_s:
                    finish_worker(worker)
                    worker.kill()
                    workers[slot] = _Worker(ctx, result_queue)
                    resolve(
                        JobOutcome(
                            index=index,
                            spec=spec,
                            status="failed",
                            failure=_failure(
                                FAILURE_TIMEOUT,
                                f"exceeded per-job timeout of {timeout_s:g}s",
                            ),
                            elapsed_s=now - started,
                            attempts=attempt,
                        )
                    )
                    unresolved -= 1
                elif not worker.proc.is_alive():
                    finish_worker(worker)
                    exitcode = worker.proc.exitcode
                    worker.kill()
                    workers[slot] = _Worker(ctx, result_queue)
                    if attempt <= retries:
                        pending.appendleft((index, spec, attempt + 1))
                    else:
                        resolve(
                            JobOutcome(
                                index=index,
                                spec=spec,
                                status="failed",
                                failure=_failure(
                                    FAILURE_CRASH,
                                    f"worker died (exit code {exitcode}) "
                                    f"after {attempt} attempt(s)",
                                ),
                                elapsed_s=now - started,
                                attempts=attempt,
                            )
                        )
                        unresolved -= 1
    finally:
        for worker in workers:
            worker.shutdown()
        result_queue.close()
        result_queue.cancel_join_thread()
