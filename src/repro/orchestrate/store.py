"""Result stores: campaign memory, cache and resume point.

A result store maps JobSpec content keys
(:meth:`~repro.orchestrate.spec.JobSpec.key`) to the latest record for
that spec, so:

* re-running a campaign skips every point whose spec is unchanged
  (**cache hit** -- only ``status == "ok"`` records count; failures are
  remembered for the report but always re-executed),
* an interrupted campaign **resumes** where it stopped -- completed
  records are already on disk, the run picks up the remainder,
* editing one point's parameters changes its key and re-runs exactly
  that point.

Two backends share the :class:`BaseResultStore` contract:

* :class:`ResultStore` -- one append-only JSONL file.  Appends are
  flushed per record; torn lines (crash mid-write, or two writers
  colliding mid-file) are skipped on load, so a damaged file never
  poisons its successor.  Load replays every historical attempt;
  :meth:`~ResultStore.compact` rewrites the file to its
  last-record-wins snapshot (``repro store compact``).
* :class:`~repro.orchestrate.store_sqlite.SqliteResultStore` -- a
  directory of per-campaign sqlite shards with the content-hash key as
  primary key (the index), plus a global key->shard index database for
  O(1) cross-campaign dedup lookups.  The service layer
  (:mod:`repro.service`) defaults to this backend.

:func:`open_store` picks the backend from a path or URL;
:func:`copy_records` migrates records between backends (``repro store
convert``).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

DEFAULT_CAMPAIGN = "default"


@dataclass(frozen=True)
class CompactStats:
    """Outcome of a store compaction: what survived, what was dropped."""

    kept: int
    dropped: int


def make_record(
    key: str,
    *,
    spec_dict: dict,
    status: str,
    metrics: dict | None = None,
    failure: dict | None = None,
    elapsed_s: float = 0.0,
    attempts: int = 1,
    campaign: str = DEFAULT_CAMPAIGN,
    recorded_at: float | None = None,
) -> dict:
    """The canonical record dict both backends persist.

    One shape everywhere means a record round-trips bit-identically
    between backends (``copy_records``) and between a store and the
    service's streamed job events.
    """
    return {
        "key": key,
        "status": status,
        "label": spec_dict.get("label", ""),
        "campaign": campaign,
        "elapsed_s": round(elapsed_s, 4),
        "attempts": attempts,
        "recorded_at": time.time() if recorded_at is None else recorded_at,
        "spec": spec_dict,
        "metrics": metrics,
        "failure": failure,
    }


class BaseResultStore:
    """Contract every result store backend implements.

    ``record`` is last-record-wins per key; ``cached_metrics`` only
    honours the latest record when it succeeded, so failures are
    remembered but always re-executed.
    """

    def __len__(self) -> int:
        raise NotImplementedError

    def get(self, key: str) -> dict | None:
        """Latest record for a spec key, successful or not."""
        raise NotImplementedError

    def keys(self) -> list[str]:
        raise NotImplementedError

    def records(self) -> Iterator[dict]:
        """Iterate latest records, in stable (key-sorted) order."""
        raise NotImplementedError

    def record(
        self,
        key: str,
        *,
        spec_dict: dict,
        status: str,
        metrics: dict | None = None,
        failure: dict | None = None,
        elapsed_s: float = 0.0,
        attempts: int = 1,
        campaign: str = DEFAULT_CAMPAIGN,
        recorded_at: float | None = None,
    ) -> dict:
        """Persist one job outcome; returns the stored record dict."""
        raise NotImplementedError

    def cached_metrics(self, key: str) -> dict | None:
        """Metrics for a key iff its latest record succeeded, else None."""
        record = self.get(key)
        if record is not None and record.get("status") == "ok":
            return record.get("metrics")
        return None

    def compact(self) -> CompactStats:
        """Drop superseded history; returns (kept, dropped) counts."""
        raise NotImplementedError

    def close(self) -> None:
        """Release file handles; the store must not be used afterwards."""

    def describe(self) -> dict:
        """Backend identity + size, for ``/api/store`` and CLI stats."""
        raise NotImplementedError


class ResultStore(BaseResultStore):
    """Append-only JSONL store with last-record-wins semantics per key."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._records: dict[str, dict] = {}
        self._loaded_records = 0
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Torn line: an interrupted append at the tail, or an
                    # interleaved write from a concurrent process mid-file.
                    # Every intact line is independent, so skip and go on.
                    continue
                if not isinstance(record, dict):
                    continue
                key = record.get("key")
                if isinstance(key, str):
                    self._records[key] = record
                    self._loaded_records += 1

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str) -> dict | None:
        return self._records.get(key)

    def keys(self) -> list[str]:
        return sorted(self._records)

    def records(self) -> Iterator[dict]:
        for key in self.keys():
            yield self._records[key]

    def record(
        self,
        key: str,
        *,
        spec_dict: dict,
        status: str,
        metrics: dict | None = None,
        failure: dict | None = None,
        elapsed_s: float = 0.0,
        attempts: int = 1,
        campaign: str = DEFAULT_CAMPAIGN,
        recorded_at: float | None = None,
    ) -> dict:
        entry = make_record(
            key,
            spec_dict=spec_dict,
            status=status,
            metrics=metrics,
            failure=failure,
            elapsed_s=elapsed_s,
            attempts=attempts,
            campaign=campaign,
            recorded_at=recorded_at,
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # One write() of one line: on POSIX an O_APPEND write this small
        # lands atomically, so two processes appending concurrently
        # interleave whole lines rather than corrupting each other.
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry) + "\n")
            fh.flush()
        self._records[key] = entry
        return entry

    def compact(self) -> CompactStats:
        """Rewrite the file to its last-record-wins snapshot.

        Load replays every historical attempt on every open; compaction
        keeps exactly one line per key (the surviving record) and
        reports how many stale lines were dropped.  The rewrite goes
        through a temp file + atomic rename so a crash mid-compact
        leaves the original intact.
        """
        total_lines = 0
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as fh:
                total_lines = sum(1 for line in fh if line.strip())
        kept = len(self._records)
        tmp = self.path.with_suffix(self.path.suffix + ".compact-tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with tmp.open("w", encoding="utf-8") as fh:
            for record in self.records():
                fh.write(json.dumps(record) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(self.path)
        return CompactStats(kept=kept, dropped=total_lines - kept)

    def describe(self) -> dict:
        return {
            "backend": "jsonl",
            "path": str(self.path),
            "records": len(self),
        }


def open_store(target) -> BaseResultStore:
    """Open a result store from a path or URL-ish string.

    * ``sqlite:DIR`` (or ``sqlite://DIR``), an existing directory, or a
      path with a ``.sqlite`` suffix -> the sharded
      :class:`~repro.orchestrate.store_sqlite.SqliteResultStore`
      rooted at that directory;
    * anything else (conventionally ``*.jsonl``) -> the single-file
      JSONL :class:`ResultStore`.
    """
    from repro.orchestrate.store_sqlite import SqliteResultStore

    text = str(target)
    if text.startswith("sqlite:"):
        root = text[len("sqlite:"):]
        # sqlite:dir, sqlite://dir and sqlite:///abs/dir all name the
        # shard root; the optional // is URL dressing.
        if root.startswith("//"):
            root = root[2:]
        return SqliteResultStore(root or ".")
    path = Path(text)
    if path.suffix == ".sqlite" or path.is_dir():
        return SqliteResultStore(path)
    return ResultStore(path)


def copy_records(src: BaseResultStore, dst: BaseResultStore) -> int:
    """Copy every surviving record from one store into another.

    Records keep their full payload including the original
    ``recorded_at`` stamp, so a migrated store is equivalent to the
    source record-for-record.  Returns the number copied.
    """
    copied = 0
    for record in src.records():
        dst.record(
            record["key"],
            spec_dict=record.get("spec") or {},
            status=record.get("status", "ok"),
            metrics=record.get("metrics"),
            failure=record.get("failure"),
            elapsed_s=record.get("elapsed_s", 0.0),
            attempts=record.get("attempts", 1),
            campaign=record.get("campaign", DEFAULT_CAMPAIGN),
            recorded_at=record.get("recorded_at"),
        )
        copied += 1
    return copied
