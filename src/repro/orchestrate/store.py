"""JSONL result store: campaign memory, cache and resume point.

One append-only file of JSON records, one record per finished job
attempt.  The store is keyed by the JobSpec content hash
(:meth:`~repro.orchestrate.spec.JobSpec.key`), so:

* re-running a campaign skips every point whose spec is unchanged
  (**cache hit** -- only ``status == "ok"`` records count; failures are
  remembered for the report but always re-executed),
* an interrupted campaign **resumes** where it stopped -- completed
  records are already on disk, the run picks up the remainder,
* editing one point's parameters changes its key and re-runs exactly
  that point.

Appends are flushed per record and a torn final line (crash mid-write)
is ignored on load, so an interrupted run never poisons its successor.
"""

from __future__ import annotations

import json
import time
from pathlib import Path


class ResultStore:
    """Append-only JSONL store with last-record-wins semantics per key."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._records: dict[str, dict] = {}
        self._loaded_records = 0
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Torn tail from an interrupted append; everything
                    # before it is intact, so resume from there.
                    continue
                key = record.get("key")
                if isinstance(key, str):
                    self._records[key] = record
                    self._loaded_records += 1

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str) -> dict | None:
        """Latest record for a spec key, successful or not."""
        return self._records.get(key)

    def cached_metrics(self, key: str) -> dict | None:
        """Metrics for a key iff its latest record succeeded, else None."""
        record = self._records.get(key)
        if record is not None and record.get("status") == "ok":
            return record.get("metrics")
        return None

    def record(
        self,
        key: str,
        *,
        spec_dict: dict,
        status: str,
        metrics: dict | None = None,
        failure: dict | None = None,
        elapsed_s: float = 0.0,
        attempts: int = 1,
    ) -> dict:
        """Append one job outcome and index it in memory."""
        entry = {
            "key": key,
            "status": status,
            "label": spec_dict.get("label", ""),
            "elapsed_s": round(elapsed_s, 4),
            "attempts": attempts,
            "recorded_at": time.time(),
            "spec": spec_dict,
            "metrics": metrics,
            "failure": failure,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry) + "\n")
            fh.flush()
        self._records[key] = entry
        return entry
