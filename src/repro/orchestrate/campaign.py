"""Campaign files: a whole experiment study as one JSON document.

A campaign turns "run these N configurations" into data the batch
runner (``python -m repro batch campaign.json``) can execute, cache and
resume.  Schema::

    {
      "name": "clrp-load-sweep",
      "defaults": {                      # merged under every job entry
        "topology": "mesh", "dims": "8x8", "protocol": "clrp",
        "seed": 0, "max_cycles": 300000, "warmup": 1000,
        "workload": {"kind": "uniform", "pattern": "uniform",
                      "load": 0.1, "length": 64, "duration": 5000}
      },
      "grid": {                          # cartesian product, dotted paths
        "workload.load": [0.05, 0.1, 0.2],
        "seed": [0, 1]
      },
      "jobs": [                          # and/or explicit entries
        {"protocol": "carp", "workload": {"load": 0.3}}
      ]
    }

``grid`` expands to one entry per combination (6 above); explicit
``jobs`` entries are appended after.  Every entry is deep-merged over
``defaults`` and becomes a :class:`~repro.orchestrate.spec.JobSpec`.
Entry fields: ``topology``, ``dims`` (list or ``"8x8"`` string),
``protocol``, ``seed``, ``wormhole`` / ``wave`` (config kwargs),
``workload`` (recipe dict), ``label``, ``max_cycles``, ``warmup``,
``fault_fraction``, ``deadlock_check_interval``, ``progress_timeout``.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path

from repro.errors import ConfigError
from repro.orchestrate.spec import JobSpec, recipe_from_dict
from repro.sim.config import NetworkConfig, WaveConfig, WormholeConfig

_SPEC_FIELDS = (
    "max_cycles",
    "warmup",
    "fault_fraction",
    "deadlock_check_interval",
    "progress_timeout",
    "mtbf",
    "mttr",
    "metrics_every",
    "invariants_every",
)

# Campaign-document fields that configure *submission* (the service
# layer: repro.service) rather than the simulation itself.  They are
# ignored by entry expansion so a serviceful campaign file still runs
# byte-identically through `repro batch`.
SERVICE_FIELDS = ("tenant", "priority")


def _parse_dims(value) -> tuple[int, ...]:
    if isinstance(value, str):
        try:
            return tuple(int(part) for part in value.lower().split("x"))
        except ValueError:
            raise ConfigError(f"cannot parse dims {value!r}; expected e.g. 8x8")
    return tuple(int(v) for v in value)


def _deep_merge(base: dict, override: dict) -> dict:
    merged = dict(base)
    for key, value in override.items():
        if isinstance(value, dict) and isinstance(merged.get(key), dict):
            merged[key] = _deep_merge(merged[key], value)
        else:
            merged[key] = value
    return merged


def _set_dotted(entry: dict, path: str, value) -> None:
    parts = path.split(".")
    node = entry
    for part in parts[:-1]:
        node = node.setdefault(part, {})
        if not isinstance(node, dict):
            raise ConfigError(f"grid path {path!r} collides with a scalar")
    node[parts[-1]] = value


def expand_entries(data: dict) -> list[dict]:
    """Apply defaults + grid expansion, returning one dict per job."""
    defaults = data.get("defaults", {})
    entries: list[dict] = []
    grid = data.get("grid", {})
    if grid:
        if not all(isinstance(v, list) and v for v in grid.values()):
            raise ConfigError("every grid value must be a non-empty list")
        paths = list(grid)
        for combo in itertools.product(*(grid[p] for p in paths)):
            entry: dict = {}
            for path, value in zip(paths, combo):
                _set_dotted(entry, path, value)
            entries.append(entry)
    entries.extend(data.get("jobs", []))
    if not entries:
        raise ConfigError("campaign defines no jobs (need 'grid' and/or 'jobs')")
    return [_deep_merge(defaults, entry) for entry in entries]


def spec_from_entry(entry: dict) -> JobSpec:
    """Build one JobSpec from a merged campaign entry."""
    if "workload" not in entry:
        raise ConfigError("campaign entry needs a 'workload' recipe")
    protocol = entry.get("protocol", "clrp")
    wave = None
    if protocol != "wormhole" or "wave" in entry:
        wave = WaveConfig(**entry.get("wave", {}))
    config = NetworkConfig(
        topology=entry.get("topology", "mesh"),
        dims=_parse_dims(entry.get("dims", (8, 8))),
        protocol=protocol,
        wormhole=WormholeConfig(**entry.get("wormhole", {})),
        wave=wave,
        seed=int(entry.get("seed", 0)),
    )
    workload = recipe_from_dict(entry["workload"])
    label = entry.get("label") or _default_label(config, entry["workload"])
    kwargs = {name: entry[name] for name in _SPEC_FIELDS if name in entry}
    return JobSpec(config=config, workload=workload, label=label, **kwargs)


def _default_label(config: NetworkConfig, workload: dict) -> str:
    shape = "x".join(str(d) for d in config.dims)
    parts = [f"{config.protocol}", f"{shape}-{config.topology}"]
    load = workload.get("load")
    if load is not None:
        parts.append(f"@{load:g}")
    if config.seed:
        parts.append(f"#{config.seed}")
    return " ".join(parts)


def parse_campaign(data: dict, default_name: str = "campaign") -> tuple[str, list[JobSpec]]:
    """Expand an in-memory campaign document into ``(name, specs)``.

    The same expansion the batch runner applies to campaign files, so a
    document POSTed to the job server (:mod:`repro.service`) yields
    exactly the specs -- and exactly the content keys -- a local
    ``repro batch`` of that file would.
    """
    if not isinstance(data, dict):
        raise ConfigError("campaign must be a JSON object")
    name = str(data.get("name", default_name))
    specs = [spec_from_entry(entry) for entry in expand_entries(data)]
    return name, specs


def load_campaign(path) -> tuple[str, list[JobSpec]]:
    """Parse a campaign file into ``(name, specs)``."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigError(f"cannot read campaign {path}: {exc.strerror or exc}")
    except json.JSONDecodeError as exc:
        raise ConfigError(f"campaign {path} is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise ConfigError(f"campaign {path} must be a JSON object")
    return parse_campaign(data, default_name=path.stem)
