"""Sharded sqlite result store: the service-scale backend.

Layout under one root directory::

    <root>/
      index.db            key -> shard name (cross-campaign dedup index)
      shards/<name>.db    full records for one campaign

Each shard's ``records`` table uses the JobSpec content-hash key as
PRIMARY KEY -- that is the index the cache lookups ride -- and stores
the canonical record dict (:func:`~repro.orchestrate.store.make_record`)
as a JSON blob, so a record round-trips bit-identically with the JSONL
backend (``copy_records`` / ``repro store convert``).

Why shard per campaign?  A million-job tenant appends only to its own
campaign's database file, so write contention and file growth stay
per-campaign while the small global index keeps cross-campaign dedup a
single lookup: a spec already computed under *any* campaign (or tenant)
is a cache hit for every later one.  Writes are last-record-wins
(``INSERT OR REPLACE``), matching JSONL replay semantics, and sqlite's
own locking makes concurrent multi-process appends safe.
"""

from __future__ import annotations

import json
import re
import sqlite3
from pathlib import Path
from typing import Iterator

from repro.orchestrate.store import (
    DEFAULT_CAMPAIGN,
    BaseResultStore,
    CompactStats,
    make_record,
)

_SHARD_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    key      TEXT PRIMARY KEY,
    status   TEXT NOT NULL,
    campaign TEXT NOT NULL,
    record   TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_status ON records(status);
"""

_INDEX_SCHEMA = """
CREATE TABLE IF NOT EXISTS keys (
    key   TEXT PRIMARY KEY,
    shard TEXT NOT NULL
);
"""


def shard_name(campaign: str) -> str:
    """Filesystem-safe shard name for a campaign label."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", campaign).strip("._") or "default"
    return slug[:80]


class SqliteResultStore(BaseResultStore):
    """Per-campaign sharded sqlite store with a global key index."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        (self.root / "shards").mkdir(parents=True, exist_ok=True)
        self._index = self._open(self.root / "index.db", _INDEX_SCHEMA)
        self._shards: dict[str, sqlite3.Connection] = {}

    @staticmethod
    def _open(path: Path, schema: str) -> sqlite3.Connection:
        conn = sqlite3.connect(path, check_same_thread=False)
        conn.executescript(schema)
        conn.commit()
        return conn

    def _shard(self, name: str) -> sqlite3.Connection:
        conn = self._shards.get(name)
        if conn is None:
            conn = self._open(
                self.root / "shards" / f"{name}.db", _SHARD_SCHEMA
            )
            self._shards[name] = conn
        return conn

    def _shard_names(self) -> list[str]:
        on_disk = {p.stem for p in (self.root / "shards").glob("*.db")}
        return sorted(on_disk | set(self._shards))

    def _shard_of(self, key: str) -> str | None:
        row = self._index.execute(
            "SELECT shard FROM keys WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    # -- BaseResultStore ------------------------------------------------

    def __len__(self) -> int:
        row = self._index.execute("SELECT COUNT(*) FROM keys").fetchone()
        return int(row[0])

    def get(self, key: str) -> dict | None:
        shard = self._shard_of(key)
        if shard is None:
            return None
        row = self._shard(shard).execute(
            "SELECT record FROM records WHERE key = ?", (key,)
        ).fetchone()
        return json.loads(row[0]) if row else None

    def keys(self) -> list[str]:
        return [
            row[0]
            for row in self._index.execute("SELECT key FROM keys ORDER BY key")
        ]

    def records(self) -> Iterator[dict]:
        for key in self.keys():
            record = self.get(key)
            if record is not None:
                yield record

    def record(
        self,
        key: str,
        *,
        spec_dict: dict,
        status: str,
        metrics: dict | None = None,
        failure: dict | None = None,
        elapsed_s: float = 0.0,
        attempts: int = 1,
        campaign: str = DEFAULT_CAMPAIGN,
        recorded_at: float | None = None,
    ) -> dict:
        entry = make_record(
            key,
            spec_dict=spec_dict,
            status=status,
            metrics=metrics,
            failure=failure,
            elapsed_s=elapsed_s,
            attempts=attempts,
            campaign=campaign,
            recorded_at=recorded_at,
        )
        shard = shard_name(campaign)
        previous = self._shard_of(key)
        if previous is not None and previous != shard:
            # Last-record-wins across campaigns too: the key moves to
            # the new campaign's shard and the stale copy goes away.
            stale = self._shard(previous)
            stale.execute("DELETE FROM records WHERE key = ?", (key,))
            stale.commit()
        conn = self._shard(shard)
        conn.execute(
            "INSERT OR REPLACE INTO records (key, status, campaign, record) "
            "VALUES (?, ?, ?, ?)",
            (key, entry["status"], entry["campaign"], json.dumps(entry)),
        )
        conn.commit()
        self._index.execute(
            "INSERT OR REPLACE INTO keys (key, shard) VALUES (?, ?)",
            (key, shard),
        )
        self._index.commit()
        return entry

    def compact(self) -> CompactStats:
        """Sqlite is last-record-wins at write time; reclaim space only.

        There is no stale history to drop (``INSERT OR REPLACE`` already
        keeps one record per key), so compaction VACUUMs each shard and
        reports zero dropped records -- the CLI works uniformly across
        backends.
        """
        for name in self._shard_names():
            self._shard(name).execute("VACUUM")
        self._index.execute("VACUUM")
        return CompactStats(kept=len(self), dropped=0)

    def close(self) -> None:
        for conn in self._shards.values():
            conn.close()
        self._shards.clear()
        self._index.close()

    def describe(self) -> dict:
        shards = self._shard_names()
        return {
            "backend": "sqlite",
            "path": str(self.root),
            "records": len(self),
            "shards": shards,
        }

    # -- sqlite extras --------------------------------------------------

    def campaign_keys(self, campaign: str) -> list[str]:
        """Keys recorded under one campaign (its shard's contents)."""
        name = shard_name(campaign)
        if name not in self._shard_names():
            return []
        return [
            row[0]
            for row in self._shard(name).execute(
                "SELECT key FROM records ORDER BY key"
            )
        ]
