"""Parallel experiment orchestration.

Turns experiment campaigns into declarative, picklable
:class:`~repro.orchestrate.spec.JobSpec`\\ s executed by a
multiprocessing worker pool (:func:`~repro.orchestrate.pool.run_jobs`)
with per-job timeouts, bounded crash retry and structured failure
records, backed by a content-hash JSONL result store
(:class:`~repro.orchestrate.store.ResultStore`) that gives campaigns
caching and resume for free.  Serial execution is the ``jobs=1``
degenerate case of the same code path, so parallel results are
bit-identical to serial ones by construction.
"""

from repro.orchestrate.campaign import (
    SERVICE_FIELDS,
    expand_entries,
    load_campaign,
    parse_campaign,
    spec_from_entry,
)
from repro.orchestrate.pool import (
    FAILURE_CRASH,
    FAILURE_EXCEPTION,
    FAILURE_TIMEOUT,
    JobOutcome,
    PoolProgress,
    run_jobs,
)
from repro.orchestrate.recipes import (
    build_workload,
    explicit_recipe,
    known_recipes,
    materialize_spec,
    register_recipe,
)
from repro.orchestrate.runner import (
    delivery_ratio,
    execute_job,
    metrics_to_experiment_result,
    result_to_metrics,
)
from repro.orchestrate.spec import JobSpec, WorkloadRecipe, recipe_from_dict
from repro.orchestrate.store import (
    BaseResultStore,
    CompactStats,
    ResultStore,
    copy_records,
    open_store,
)
from repro.orchestrate.store_sqlite import SqliteResultStore

__all__ = [
    "BaseResultStore",
    "CompactStats",
    "SqliteResultStore",
    "copy_records",
    "open_store",
    "FAILURE_CRASH",
    "FAILURE_EXCEPTION",
    "FAILURE_TIMEOUT",
    "JobOutcome",
    "JobSpec",
    "PoolProgress",
    "ResultStore",
    "WorkloadRecipe",
    "build_workload",
    "delivery_ratio",
    "execute_job",
    "expand_entries",
    "explicit_recipe",
    "known_recipes",
    "load_campaign",
    "materialize_spec",
    "parse_campaign",
    "SERVICE_FIELDS",
    "metrics_to_experiment_result",
    "recipe_from_dict",
    "register_recipe",
    "result_to_metrics",
    "run_jobs",
    "spec_from_entry",
]
