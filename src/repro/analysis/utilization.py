"""Channel-utilization analysis.

The wave-switching bandwidth argument is ultimately about *links*: wormhole
switching wastes the bandwidth of channels held by blocked worms, while
circuits stream at the wave clock over channels they own exclusively.
This module turns a finished run into per-link utilization figures:

* **wormhole utilization** — flits transmitted per directed link divided
  by elapsed cycles (1.0 = the link never idled);
* **circuit utilization** — payload flits streamed across each directed
  link by wave transfers, normalised by elapsed cycles *and* the circuit
  streaming rate, i.e. the fraction of the wave channel's capacity used;
* concentration statistics (max, mean, Gini coefficient) that expose
  hotspots.

Circuit attribution uses the wave plane's persistent per-channel tally
(``plane.streamed_by_channel``), not the circuit table: circuits torn
down by CLRP replacement or fault recovery keep their streamed flits in
the numerator.

Warmup exclusion works on *deltas*: take a :func:`snapshot_utilization`
at the end of warmup and pass it as ``baseline`` so both numerator and
denominator cover the same window.  Passing ``since_cycle`` alone (the
old warmup API, which shrank only the denominator and could report
utilization above 1.0) is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network

#: Summary kinds accepted by :meth:`UtilizationReport.summary`.
SUMMARY_KINDS = ("wormhole", "circuit")


@dataclass
class UtilizationReport:
    """Per-link utilization of one finished run."""

    cycles: int
    # Directed link (node, port) -> utilization in [0, ~1].
    wormhole: dict[tuple[int, int], float] = field(default_factory=dict)
    circuit: dict[tuple[int, int, int], float] = field(default_factory=dict)

    @staticmethod
    def _gini(values: list[float]) -> float:
        """Gini coefficient: 0 = perfectly even, ->1 = one hot link."""
        xs = sorted(values)
        n = len(xs)
        total = sum(xs)
        if n == 0 or total == 0:
            return 0.0
        cum = 0.0
        weighted = 0.0
        for i, x in enumerate(xs, start=1):
            cum += x
            weighted += cum
        # Standard formula: G = (n + 1 - 2 * sum(cum_i)/total) / n
        return (n + 1 - 2 * weighted / total) / n

    def summary(self, kind: str = "wormhole") -> dict[str, float]:
        if kind not in SUMMARY_KINDS:
            raise ValueError(
                f"unknown utilization kind {kind!r}; expected one of "
                f"{', '.join(SUMMARY_KINDS)}"
            )
        values = list(
            (self.wormhole if kind == "wormhole" else self.circuit).values()
        )
        if not values:
            return {"mean": 0.0, "max": 0.0, "gini": 0.0}
        return {
            "mean": sum(values) / len(values),
            "max": max(values),
            "gini": self._gini(values),
        }


@dataclass(frozen=True)
class UtilizationSnapshot:
    """Counter state at one instant, for windowed (post-warmup) measures."""

    cycle: int
    # Directed link (node, port) -> cumulative flits transmitted.
    link_flits: dict[tuple[int, int], int]
    # Wave channel (node, port, switch) -> cumulative flits streamed.
    streamed: dict[tuple[int, int, int], int]


def snapshot_utilization(network: "Network") -> UtilizationSnapshot:
    """Capture the utilization counters at the network's current cycle."""
    link_flits = {
        (router.node, port): flits
        for router in network.routers
        for port, flits in enumerate(router.link_flits)
        if router.downstream[port] is not None
    }
    streamed = (
        dict(network.plane.streamed_by_channel)
        if network.plane is not None
        else {}
    )
    return UtilizationSnapshot(
        cycle=network.cycle, link_flits=link_flits, streamed=streamed
    )


def measure_utilization(
    network: "Network",
    *,
    since_cycle: int = 0,
    baseline: UtilizationSnapshot | None = None,
) -> UtilizationReport:
    """Build a :class:`UtilizationReport` from a (finished) network.

    With no arguments the report covers the whole run.  To exclude a
    warmup prefix, snapshot at the end of warmup and pass it back::

        base = snapshot_utilization(net)   # at cycle W
        ... run the measured window ...
        report = measure_utilization(net, baseline=base)

    Both numerators and the denominator are then deltas over the same
    ``[base.cycle, net.cycle)`` window, so every utilization lands in
    [0, 1] (up to the streaming-rate normalisation).  ``since_cycle``
    alone is rejected: subtracting warmup cycles from the denominator
    while keeping whole-run numerators inflates utilization past 1.0.
    """
    if baseline is not None:
        if since_cycle and since_cycle != baseline.cycle:
            raise ValueError(
                f"since_cycle={since_cycle} conflicts with "
                f"baseline.cycle={baseline.cycle}"
            )
        since_cycle = baseline.cycle
    elif since_cycle:
        raise ValueError(
            "since_cycle without a baseline snapshot would divide "
            "whole-run flit totals by a warmup-shortened denominator; "
            "capture snapshot_utilization(network) at the warmup "
            "boundary and pass it as baseline="
        )
    cycles = max(1, network.cycle - since_cycle)
    base_links = baseline.link_flits if baseline is not None else {}
    base_streamed = baseline.streamed if baseline is not None else {}
    report = UtilizationReport(cycles=cycles)
    for router in network.routers:
        for port, flits in enumerate(router.link_flits):
            if router.downstream[port] is None:
                continue
            key = (router.node, port)
            report.wormhole[key] = (flits - base_links.get(key, 0)) / cycles
    if network.plane is not None:
        rate = network.plane.config.flits_per_cycle
        capacity = cycles * rate
        for key, flits in network.plane.streamed_by_channel.items():
            delta = flits - base_streamed.get(key, 0)
            if delta:
                report.circuit[key] = delta / capacity
    return report
