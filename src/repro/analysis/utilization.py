"""Channel-utilization analysis.

The wave-switching bandwidth argument is ultimately about *links*: wormhole
switching wastes the bandwidth of channels held by blocked worms, while
circuits stream at the wave clock over channels they own exclusively.
This module turns a finished run into per-link utilization figures:

* **wormhole utilization** — flits transmitted per directed link divided
  by elapsed cycles (1.0 = the link never idled);
* **circuit utilization** — payload flits streamed across each directed
  link by wave transfers, normalised by elapsed cycles *and* the circuit
  streaming rate, i.e. the fraction of the wave channel's capacity used;
* concentration statistics (max, mean, Gini coefficient) that expose
  hotspots.

Circuit attribution uses the circuit table: every completed transfer
pushed ``message.length`` flits across each hop of its circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network


@dataclass
class UtilizationReport:
    """Per-link utilization of one finished run."""

    cycles: int
    # Directed link (node, port) -> utilization in [0, ~1].
    wormhole: dict[tuple[int, int], float] = field(default_factory=dict)
    circuit: dict[tuple[int, int, int], float] = field(default_factory=dict)

    @staticmethod
    def _gini(values: list[float]) -> float:
        """Gini coefficient: 0 = perfectly even, ->1 = one hot link."""
        xs = sorted(values)
        n = len(xs)
        total = sum(xs)
        if n == 0 or total == 0:
            return 0.0
        cum = 0.0
        weighted = 0.0
        for i, x in enumerate(xs, start=1):
            cum += x
            weighted += cum
        # Standard formula: G = (n + 1 - 2 * sum(cum_i)/total) / n
        return (n + 1 - 2 * weighted / total) / n

    def summary(self, kind: str = "wormhole") -> dict[str, float]:
        values = list(
            (self.wormhole if kind == "wormhole" else self.circuit).values()
        )
        if not values:
            return {"mean": 0.0, "max": 0.0, "gini": 0.0}
        return {
            "mean": sum(values) / len(values),
            "max": max(values),
            "gini": self._gini(values),
        }


def measure_utilization(network: "Network", *, since_cycle: int = 0) -> UtilizationReport:
    """Build a :class:`UtilizationReport` from a (finished) network.

    ``since_cycle`` subtracts a warmup prefix from the denominator; the
    numerators are whole-run totals, so use 0 unless the run was reset.
    """
    cycles = max(1, network.cycle - since_cycle)
    report = UtilizationReport(cycles=cycles)
    for router in network.routers:
        for port, flits in enumerate(router.link_flits):
            if router.downstream[port] is None:
                continue
            report.wormhole[(router.node, port)] = flits / cycles
    if network.plane is not None:
        rate = network.plane.config.flits_per_cycle
        capacity = cycles * rate
        flits_by_channel: dict[tuple[int, int, int], int] = {}
        for circuit in network.plane.table.circuits.values():
            if circuit.flits_streamed == 0:
                continue
            for key in circuit.hop_channels():
                flits_by_channel[key] = (
                    flits_by_channel.get(key, 0) + circuit.flits_streamed
                )
        for key, flits in flits_by_channel.items():
            report.circuit[key] = flits / capacity
    return report
