"""Experiment driver: one call per simulated configuration.

:func:`run_experiment` builds a network, drives a workload to completion
(or a cycle budget) and returns the measured metrics the benchmark
harness prints.  :func:`run_load_sweep` repeats over offered loads for
throughput/latency curves with saturation detection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.network.network import Network
from repro.sim.config import NetworkConfig
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.rng import SimRandom
from repro.topology.faults import FaultSet


@dataclass
class ExperimentResult:
    """Everything one configuration run yields."""

    label: str
    sim: SimulationResult
    mean_latency: float
    p95_latency: float
    throughput: float  # accepted flits/node/cycle over the measured window
    delivered: int
    injected: int
    mode_breakdown: dict[str, int] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.injected if self.injected else math.nan


def run_experiment(
    config: NetworkConfig,
    workload,
    *,
    label: str = "",
    max_cycles: int = 200_000,
    warmup: int = 0,
    deadlock_check_interval: int = 0,
    progress_timeout: int = 0,
    faults: FaultSet | None = None,
    network: Network | None = None,
    sampler=None,
    on_cycle=None,
) -> ExperimentResult:
    """Simulate one configuration against one workload.

    Args:
        warmup: messages delivered before this cycle are excluded from the
            throughput window (latency stats still include everything,
            matching common interconnect methodology for finite runs).
        network: pre-built network (for fault experiments needing a shared
            FaultSet built against the network's topology); otherwise one
            is built from ``config``.
        sampler: optional :class:`~repro.observe.metrics.NetworkSampler`
            passed through to the :class:`Simulator`.
        on_cycle: optional per-cycle callback passed through to the
            :class:`Simulator` (disables idle fast-forward; used by the
            fuzzing invariant harness).
    """
    net = network if network is not None else Network(config, faults=faults)
    sim = Simulator(
        net,
        workload,
        deadlock_check_interval=deadlock_check_interval,
        progress_timeout=progress_timeout,
        sampler=sampler,
        on_cycle=on_cycle,
    )
    result = sim.run(max_cycles)
    stats = net.stats
    delivered = stats.delivered_records()
    window_end = max((m.delivered for m in delivered), default=result.cycles)
    throughput_total = stats.throughput_flits_per_cycle(warmup, window_end + 1)
    per_node = (
        throughput_total / net.topology.num_nodes
        if not math.isnan(throughput_total)
        else math.nan
    )
    hist = stats.latency_histogram()
    return ExperimentResult(
        label=label or config.describe(),
        sim=result,
        mean_latency=stats.mean_latency(),
        p95_latency=hist.percentile(95),
        throughput=per_node,
        delivered=len(delivered),
        injected=result.injected,
        mode_breakdown=stats.mode_breakdown(),
        counters=dict(stats.counters),
    )


def run_load_sweep(
    make_config,
    make_workload,
    loads,
    *,
    max_cycles: int = 100_000,
    warmup: int = 1000,
    label: str = "",
    jobs: int = 1,
    store=None,
    progress=None,
) -> list[tuple[float, ExperimentResult]]:
    """Sweep offered load; serially, stop early past saturation.

    Args:
        make_config: ``() -> NetworkConfig`` (fresh per point).
        make_workload: ``(load) -> workload list``.
        loads: offered loads (flits/node/cycle), ascending.
        jobs: worker processes (``repro.orchestrate``); ``1`` runs
            serially in-process.
        store: optional :class:`~repro.orchestrate.store.ResultStore`
            for caching/resume (routes execution through the
            orchestrator even when ``jobs == 1``).
        progress: optional orchestrator progress callback.

    Serially, a point is *saturated* when fewer than 90% of injected
    messages were delivered within the cycle budget; the sweep runs one
    saturated point (to show the knee) and then stops.  With ``jobs > 1``
    or a ``store``, all points run (there is no serial knee to cut at)
    through :func:`repro.orchestrate.run_jobs`: results are merged in
    job order and are bit-identical to a serial run; failed points are
    omitted from the returned list (their failure records live in the
    store / progress events).
    """
    if jobs <= 1 and store is None and progress is None:
        out: list[tuple[float, ExperimentResult]] = []
        for load in loads:
            config = make_config()
            workload = make_workload(load)
            result = run_experiment(
                config,
                workload,
                label=f"{label}@{load:g}",
                max_cycles=max_cycles,
                warmup=warmup,
            )
            out.append((load, result))
            if result.injected and result.delivery_ratio < 0.9:
                break
        return out

    from repro.orchestrate import (
        materialize_spec,
        metrics_to_experiment_result,
        run_jobs,
    )

    specs = [
        materialize_spec(
            make_config(),
            make_workload(load),
            label=f"{label}@{load:g}",
            max_cycles=max_cycles,
            warmup=warmup,
        )
        for load in loads
    ]
    outcomes = run_jobs(specs, jobs=jobs, store=store, progress=progress)
    return [
        (load, metrics_to_experiment_result(outcome.metrics))
        for load, outcome in zip(loads, outcomes)
        if outcome.ok
    ]


def run_dynamic_fault_sweep(
    make_config,
    make_workload,
    mtbfs,
    *,
    protocols=("clrp", "carp", "wormhole"),
    mttr: int = 0,
    max_cycles: int = 60_000,
    label: str = "E7b",
    jobs: int = 1,
    store=None,
    progress=None,
) -> dict:
    """E7b: delivered throughput vs dynamic link-fault rate, per protocol.

    Each sweep point runs the *same* traffic under a seeded random fault
    campaign (links killed with network-wide mean ``mtbf`` cycles between
    kills, healed after ``mttr`` cycles when nonzero), so any throughput
    degradation is attributable to the faults.  Include ``0`` in
    ``mtbfs`` for the fault-free baseline.

    Args:
        make_config: ``(protocol) -> NetworkConfig`` (fresh per point;
            carries the seed that derives the fault schedule).
        make_workload: ``(protocol) -> workload list``.
        mtbfs: mean-cycles-between-kills points; ``0`` = no faults.
        protocols: protocols to compare (paper's CLRP/CARP/wormhole).
        jobs / store / progress: orchestrator knobs as in
            :func:`run_load_sweep`.

    Returns ``{protocol: [(mtbf, ExperimentResult), ...]}`` with failed
    points omitted (their failure records live in the store / progress
    events).
    """
    from repro.orchestrate import (
        materialize_spec,
        metrics_to_experiment_result,
        run_jobs,
    )

    pairs = [(proto, mtbf) for proto in protocols for mtbf in mtbfs]
    specs = [
        materialize_spec(
            make_config(proto),
            make_workload(proto),
            label=f"{label}/{proto}@mtbf={mtbf:g}",
            max_cycles=max_cycles,
            mtbf=mtbf,
            mttr=mttr if mtbf else 0,
        )
        for proto, mtbf in pairs
    ]
    outcomes = run_jobs(specs, jobs=jobs, store=store, progress=progress)
    out: dict = {proto: [] for proto in protocols}
    for (proto, mtbf), outcome in zip(pairs, outcomes):
        if outcome.ok:
            out[proto].append(
                (mtbf, metrics_to_experiment_result(outcome.metrics))
            )
    return out


def derive_seeded_rng(seed: int, label: str) -> SimRandom:
    """Convenience for benchmarks needing workload RNGs per sweep point."""
    return SimRandom(seed).fork(label)


def find_saturation_load(
    make_config,
    make_workload,
    *,
    lo: float = 0.02,
    hi: float = 1.0,
    tolerance: float = 0.02,
    max_cycles: int = 60_000,
    delivery_threshold: float = 0.95,
    store=None,
) -> float:
    """Binary-search the saturation point of a configuration.

    A load is *sustainable* when at least ``delivery_threshold`` of the
    injected messages drain within the cycle budget.  Returns the highest
    sustainable load found, to within ``tolerance``.

    Probes execute through the orchestrator (serially -- the search is
    inherently sequential), so passing a ``store`` caches each probed
    load: repeating or refining a search re-simulates only new probes.

    Args:
        make_config: ``() -> NetworkConfig`` (fresh per probe).
        make_workload: ``(load) -> workload list``.
        store: optional :class:`~repro.orchestrate.store.ResultStore`.
    """
    if not 0 < lo < hi:
        raise ValueError(f"need 0 < lo < hi, got [{lo}, {hi}]")

    from repro.orchestrate import materialize_spec, run_jobs

    def sustainable(load: float) -> bool:
        spec = materialize_spec(
            make_config(),
            make_workload(load),
            label=f"saturation@{load:g}",
            max_cycles=max_cycles,
        )
        [outcome] = run_jobs([spec], jobs=1, store=store)
        if not outcome.ok:
            raise SimulationError(
                f"saturation probe at load {load:g} failed: "
                f"{outcome.failure['message']}"
            )
        metrics = outcome.metrics
        if metrics["injected"] == 0:
            return True
        return (
            metrics["delivered"] / metrics["injected"] >= delivery_threshold
        )

    if not sustainable(lo):
        return 0.0
    if sustainable(hi):
        return hi
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if sustainable(mid):
            lo = mid
        else:
            hi = mid
    return lo


def run_seed_sweep(
    make_config,
    make_workload,
    seeds,
    *,
    max_cycles: int = 100_000,
    label: str = "",
    jobs: int = 1,
    store=None,
    progress=None,
) -> dict:
    """Repeat one experiment across seeds; report mean and spread.

    Args:
        make_config: ``(seed) -> NetworkConfig``.
        make_workload: ``(seed) -> workload list``.
        jobs: worker processes (``repro.orchestrate``); ``1`` = serial.
        store: optional result store for caching/resume.
        progress: optional orchestrator progress callback.

    Returns a dict with per-seed results plus ``latency_mean`` /
    ``latency_std`` / ``throughput_mean`` / ``throughput_std`` over the
    delivered runs -- the error bars for any headline number.  Seed
    replications are independent, so this parallelises embarrassingly;
    merged results keep seed order regardless of completion order.
    """
    if jobs <= 1 and store is None and progress is None:
        results = []
        for seed in seeds:
            results.append(
                run_experiment(
                    make_config(seed),
                    make_workload(seed),
                    label=f"{label}#{seed}",
                    max_cycles=max_cycles,
                )
            )
    else:
        from repro.orchestrate import (
            materialize_spec,
            metrics_to_experiment_result,
            run_jobs,
        )

        specs = [
            materialize_spec(
                make_config(seed),
                make_workload(seed),
                label=f"{label}#{seed}",
                max_cycles=max_cycles,
            )
            for seed in seeds
        ]
        outcomes = run_jobs(specs, jobs=jobs, store=store, progress=progress)
        results = [
            metrics_to_experiment_result(outcome.metrics)
            for outcome in outcomes
            if outcome.ok
        ]

    def _mean(xs):
        return sum(xs) / len(xs) if xs else math.nan

    def _std(xs):
        if len(xs) < 2:
            return 0.0
        m = _mean(xs)
        return math.sqrt(sum((x - m) ** 2 for x in xs) / (len(xs) - 1))

    latencies = [r.mean_latency for r in results if not math.isnan(r.mean_latency)]
    throughputs = [r.throughput for r in results if not math.isnan(r.throughput)]
    return {
        "results": results,
        "latency_mean": _mean(latencies),
        "latency_std": _std(latencies),
        "throughput_mean": _mean(throughputs),
        "throughput_std": _std(throughputs),
    }
