"""Experiment running and reporting for the benchmark harness."""

from repro.analysis.breakdown import format_breakdown, latency_breakdown
from repro.analysis.experiments import (
    ExperimentResult,
    find_saturation_load,
    run_experiment,
    run_load_sweep,
    run_seed_sweep,
)
from repro.analysis.timeline import TimelineTracker, TimelineWindow
from repro.analysis.report import format_series, format_table
from repro.analysis.utilization import (
    UtilizationReport,
    UtilizationSnapshot,
    measure_utilization,
    snapshot_utilization,
)

__all__ = [
    "ExperimentResult",
    "TimelineTracker",
    "TimelineWindow",
    "find_saturation_load",
    "format_breakdown",
    "latency_breakdown",
    "run_seed_sweep",
    "UtilizationReport",
    "UtilizationSnapshot",
    "format_series",
    "format_table",
    "measure_utilization",
    "snapshot_utilization",
    "run_experiment",
    "run_load_sweep",
]
