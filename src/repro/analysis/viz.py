"""Terminal visualisation: mesh heat maps and link-load sketches.

Pure-text rendering (no plotting dependencies) for quick looks at where
traffic concentrates:

* :func:`node_heatmap` -- a 2-D mesh coloured by any per-node scalar
  (deliveries, injections, cache evictions...), rendered with a density
  ramp;
* :func:`link_loadmap` -- the mesh drawn with its horizontal/vertical
  links weighted by utilization, exposing hot rows/columns at a glance.

Used by the saturation example and handy in any interactive session.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network

# Density ramp from cold to hot.
RAMP = " .:-=+*#%@"


def _bucket(value: float, top: float) -> str:
    if top <= 0:
        return RAMP[0]
    idx = int(value / top * (len(RAMP) - 1) + 0.5)
    return RAMP[max(0, min(idx, len(RAMP) - 1))]


def node_heatmap(
    network: "Network",
    metric: Callable[[int], float],
    *,
    title: str = "",
) -> str:
    """Render a per-node scalar over a 2-D mesh/torus as a text heat map.

    Args:
        metric: maps a node id to its value (e.g.
            ``lambda n: net.interfaces[n].messages_delivered``).
    """
    topo = network.topology
    if not topo.cartesian or topo.n_dims != 2:
        raise ConfigError("node_heatmap needs a 2-D Cartesian topology")
    rows, cols = topo.dims
    values = [[metric(topo.node_at((r, c))) for c in range(cols)]
              for r in range(rows)]
    top = max(max(row) for row in values)
    lines = []
    if title:
        lines.append(f"{title} (max {top:g})")
    for r in range(rows):
        lines.append(" ".join(_bucket(v, top) for v in values[r]))
    lines.append(f"ramp: '{RAMP}' = 0 .. max")
    return "\n".join(lines)


def link_loadmap(network: "Network", *, title: str = "") -> str:
    """Sketch a 2-D mesh with links weighted by wormhole utilization.

    Horizontal links render between node cells; vertical links on the
    interleaving rows.  Each link shows the *busier direction* of the
    pair.  Nodes render as ``o``.
    """
    topo = network.topology
    if not topo.cartesian or topo.n_dims != 2:
        raise ConfigError("link_loadmap needs a 2-D Cartesian topology")
    from repro.analysis.utilization import measure_utilization

    report = measure_utilization(network)
    util = report.wormhole
    rows, cols = topo.dims

    def load(node: int, port: int) -> float:
        a = util.get((node, port), 0.0)
        nbr = topo.neighbor(node, port)
        if nbr is None:
            return a
        b = util.get((nbr, topo.reverse_port(node, port)), 0.0)
        return max(a, b)

    top = max(util.values(), default=0.0)
    lines = []
    if title:
        lines.append(f"{title} (max link utilization {top:.3f})")
    for r in range(rows):
        # Node row: o <h-link> o <h-link> o ...
        cells = []
        for c in range(cols):
            node = topo.node_at((r, c))
            cells.append("o")
            if c + 1 < cols:
                # Port along dimension 1 (columns) upward.
                h = load(node, 2)  # dim 1 plus = port 2
                cells.append(_bucket(h, top) * 3)
        lines.append("".join(cells))
        if r + 1 < rows:
            # Vertical link row.
            cells = []
            for c in range(cols):
                node = topo.node_at((r, c))
                v = load(node, 0)  # dim 0 plus = port 0
                cells.append(_bucket(v, top))
                if c + 1 < cols:
                    cells.append("   ")
            lines.append("".join(cells))
    lines.append(f"ramp: '{RAMP}'")
    return "\n".join(lines)
