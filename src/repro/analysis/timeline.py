"""Windowed time series of a running simulation.

:class:`TimelineTracker` hooks a :class:`~repro.sim.engine.Simulator` (via
``on_cycle``) and records, per fixed-width window:

* accepted throughput (delivered payload flits / node / cycle),
* mean latency of the messages delivered in the window,
* outstanding message count at the window boundary.

This is what turns a finite run into the familiar warmup / steady-state /
drain picture, and provides a principled steady-state detector for
measurement windows (used by tests; the benchmark harness uses fixed
warmups for reproducibility).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network


@dataclass
class TimelineWindow:
    start: int
    end: int
    delivered: int
    flits: int
    mean_latency: float
    outstanding: int

    @property
    def throughput(self) -> float:
        return self.flits / (self.end - self.start)


@dataclass
class TimelineTracker:
    """Collects per-window delivery statistics during a run.

    Usage::

        tracker = TimelineTracker(window=500)
        Simulator(net, workload, on_cycle=tracker.on_cycle).run(...)
        for w in tracker.windows: ...
    """

    window: int = 500
    windows: list[TimelineWindow] = field(default_factory=list)
    _seen: set = field(default_factory=set)
    _last_boundary: int = 0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigError(f"window must be >= 1, got {self.window}")

    def on_cycle(self, network: "Network") -> None:
        if network.cycle - self._last_boundary < self.window:
            return
        start = self._last_boundary
        end = network.cycle
        self._last_boundary = end
        new = [
            m
            for m in network.stats.messages.values()
            if m.delivered >= 0 and m.msg_id not in self._seen
        ]
        for m in new:
            self._seen.add(m.msg_id)
        flits = sum(m.length for m in new)
        mean_latency = (
            sum(m.latency for m in new) / len(new) if new else float("nan")
        )
        self.windows.append(
            TimelineWindow(
                start=start,
                end=end,
                delivered=len(new),
                flits=flits,
                mean_latency=mean_latency,
                outstanding=network.outstanding_messages(),
            )
        )

    def finalize(self, network: "Network") -> None:
        """Record the trailing partial window (call after the run ends)."""
        if network.cycle > self._last_boundary:
            saved = self.window
            try:
                self.window = network.cycle - self._last_boundary
                self.on_cycle(network)
            finally:
                self.window = saved

    # -- analysis helpers -------------------------------------------------

    def steady_state_start(self, *, rel_tolerance: float = 0.25) -> int | None:
        """First window boundary after which throughput stays within
        ``rel_tolerance`` of the remaining windows' mean.

        Returns the cycle, or None if the run never settles (fewer than
        three windows, or persistent drift).
        """
        ws = self.windows
        if len(ws) < 3:
            return None
        for i in range(len(ws) - 2):
            tail = ws[i:]
            mean = sum(w.throughput for w in tail) / len(tail)
            if mean == 0:
                continue
            if all(
                abs(w.throughput - mean) <= rel_tolerance * mean for w in tail
            ):
                return ws[i].start
        return None

    def peak_throughput(self) -> float:
        return max((w.throughput for w in self.windows), default=0.0)
