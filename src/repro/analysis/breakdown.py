"""Latency decomposition: where a message's cycles actually went.

Every :class:`~repro.sim.stats.MessageRecord` carries enough timestamps to
split end-to-end latency into:

* **source queueing** -- creation to injection (waiting behind earlier
  messages to the same destination, cache-slot waits, buffer
  re-allocations, injection-buffer backpressure);
* **setup share** -- for circuit messages that triggered an
  establishment, the cycles the setup added (``setup_cycles``);
* **transport** -- the rest: flits actually moving.

The decomposition is reported per switching mode, which makes protocol
behaviour legible at a glance: circuit hits should be almost pure
transport; `circuit_forced` messages carry the victim-release wait in
their setup share; wormhole messages under load carry their blocking time
in transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.report import format_table
from repro.sim.stats import MessageRecord, StatsCollector

if TYPE_CHECKING:  # pragma: no cover
    pass


@dataclass
class ModeBreakdown:
    """Mean latency split for one switching mode."""

    mode: str
    count: int
    mean_total: float
    mean_queueing: float
    mean_setup: float
    mean_transport: float


def _split(record: MessageRecord) -> tuple[int, int, int]:
    """(queueing, setup, transport) for one delivered record."""
    queueing = max(0, record.injected - record.created)
    setup = min(record.setup_cycles, queueing)
    # Setup overlaps the queueing window (the message waits while its
    # circuit establishes), so count it inside queueing, not on top.
    queueing_only = queueing - setup
    transport = record.delivered - record.injected
    return queueing_only, setup, transport


def latency_breakdown(stats: StatsCollector) -> list[ModeBreakdown]:
    """Per-mode decomposition over all delivered messages."""
    groups: dict[str, list[MessageRecord]] = {}
    for record in stats.delivered_records():
        if record.mode is None or record.injected < 0:
            continue
        groups.setdefault(record.mode.value, []).append(record)
    out = []
    for mode, records in sorted(groups.items()):
        n = len(records)
        parts = [_split(r) for r in records]
        out.append(
            ModeBreakdown(
                mode=mode,
                count=n,
                mean_total=sum(r.latency for r in records) / n,
                mean_queueing=sum(p[0] for p in parts) / n,
                mean_setup=sum(p[1] for p in parts) / n,
                mean_transport=sum(p[2] for p in parts) / n,
            )
        )
    return out


def format_breakdown(stats: StatsCollector) -> str:
    """Render the decomposition as an aligned table."""
    rows = [
        (b.mode, b.count, b.mean_total, b.mean_queueing, b.mean_setup,
         b.mean_transport)
        for b in latency_breakdown(stats)
    ]
    return format_table(
        ["mode", "messages", "total", "queueing", "setup", "transport"],
        rows,
    )
