"""Plain-text tables for benchmark output.

The benchmark harness prints the same rows/series the paper's evaluation
reasons about; these helpers keep that output aligned and diff-friendly
(EXPERIMENTS.md embeds them verbatim).
"""

from __future__ import annotations

from typing import Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned text table with a header separator."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence) -> str:
    """Render one (x, y) series as two aligned columns."""
    return format_table([name, "value"], list(zip(xs, ys)))
