"""Exception hierarchy for the wave-switching reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class TopologyError(ReproError):
    """A topology query was invalid (bad node, bad port, bad coordinates)."""


class RoutingError(ReproError):
    """A routing function could not produce a legal output port."""


class ProtocolError(ReproError):
    """A switching-protocol state machine reached an illegal state.

    This is the "should never happen" error: the CLRP/CARP/PCS engines raise
    it when an invariant from the paper's proofs is violated (e.g. a probe
    waiting on a channel owned by a circuit being established, which
    Theorem 1 explicitly forbids).
    """


class DeadlockError(ReproError):
    """The runtime deadlock detector found a cycle in the wait-for graph.

    Carries the offending cycle for diagnosis.
    """

    def __init__(self, message: str, cycle: list | None = None) -> None:
        super().__init__(message)
        self.cycle = cycle if cycle is not None else []


class LivelockError(ReproError):
    """The progress monitor decided the network stopped making progress."""


class SimulationError(ReproError):
    """The simulation engine was driven incorrectly (e.g. run after stop)."""
