"""Network assembly: messages, network interfaces and the Network itself.

:class:`~repro.network.network.Network` glues one topology, one wormhole
router per node, one network interface (NI) per node and -- unless running
the wormhole-only baseline -- one shared
:class:`~repro.circuits.plane.WavePlane` into a steppable machine, which
:class:`~repro.sim.engine.Simulator` then drives.
"""

from repro.network.interface import NetworkInterface
from repro.network.message import Message, MessageFactory
from repro.network.network import Network

__all__ = ["Message", "MessageFactory", "Network", "NetworkInterface"]
