"""Messages: what workloads produce and the network delivers.

A message is a unit of end-to-end communication: ``length`` flits
(including the header flit, matching how the paper counts "128-flit
messages") from ``src`` to ``dst``, created by the workload at cycle
``created``.

Which switching path carries the message is *not* a property of the
message -- it is decided by the protocol engine at the source NI (CLRP
decides automatically; CARP follows compiler directives; the baseline
always uses wormhole).  ``circuit_hint`` carries the CARP compiler's
advice when present.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Message:
    msg_id: int
    src: int
    dst: int
    length: int
    created: int
    # CARP compiler advice: True = expect a circuit, False = wormhole,
    # None = no advice (CLRP and the baseline ignore this field).
    circuit_hint: bool | None = None
    # Set by the wave plane when the delivery notification has fired, so
    # a transfer lingering until its last ack cannot deliver twice.
    delivery_notified: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError(f"message length must be >= 1 flit, got {self.length}")
        if self.src == self.dst:
            raise ValueError(f"self-message at node {self.src}")
        if self.created < 0:
            raise ValueError(f"created must be >= 0, got {self.created}")


class MessageFactory:
    """Allocates unique message ids for a run's workloads."""

    def __init__(self) -> None:
        self._next = 0

    def make(
        self,
        src: int,
        dst: int,
        length: int,
        created: int,
        circuit_hint: bool | None = None,
    ) -> Message:
        msg = Message(
            msg_id=self._next,
            src=src,
            dst=dst,
            length=length,
            created=created,
            circuit_hint=circuit_hint,
        )
        self._next += 1
        return msg
