"""Active-set registries: the bookkeeping behind O(active) stepping.

A cycle-accurate simulator spends most of its time asking components
"do you have anything to do?".  At low load the answer is almost always
no, so :class:`ActivityTracker` inverts the question: routers and NIs
*register* themselves when they gain work (a flit arrival, a queued
worm, a pending buffer re-allocation) and *deregister* when they drain.
``Network.step()`` then touches only registered components, and
``Network.is_idle()`` collapses to a couple of counter checks.

Exactness contract (see DESIGN.md §9):

* ``active_routers`` holds exactly the routers whose ``busy()`` is True
  (some input VC buffers a flit).  Registration happens in
  ``WormholeRouter._enqueue`` on the empty->non-empty transition and
  deregistration in ``_move_flit`` on the non-empty->empty transition.
* ``active_nis`` holds every NI whose ``pre_cycle`` hook could do
  something next cycle: an injection backlog with free router buffer
  space, pending acks/retransmits, or an engine with per-cycle work.
  An NI whose backlog is blocked on buffer space parks itself -- the
  router re-registers it when a flit leaves an injection-row buffer
  (``WormholeRouter.ni_active_set`` / ``VectorizedCore.active_nis``),
  which is the only way space frees.  An NI may be registered
  spuriously for a cycle; that is harmless because ``pre_cycle`` on a
  drained or blocked NI is a no-op, exactly as it was in the O(N) loop.
* ``ni_queue_flits`` counts flits sitting in NI injection queues
  (``sum(ni.pending_wormhole_flits())`` kept incrementally).
* ``engine_pending`` counts messages parked inside protocol engines
  awaiting a circuit (``sum(ni.pending_engine_messages())`` kept
  incrementally via :meth:`CircuitEngineBase._note_pending`).

The idleness predicate ``is_idle()`` therefore never consults the
*step* registries (whose contents may be conservatively stale for one
cycle); it only reads the exact counters plus the wave plane's in-flight
lists, which keeps it byte-identical to the old O(N) scan.
"""

from __future__ import annotations


class ActivityTracker:
    """Per-network registries and counters for active-set stepping."""

    __slots__ = ("active_routers", "active_nis", "ni_queue_flits",
                 "engine_pending")

    def __init__(self) -> None:
        # Node indices of routers with at least one buffered flit.
        self.active_routers: set[int] = set()
        # Node indices of NIs whose pre_cycle hook must run.
        self.active_nis: set[int] = set()
        # Flits queued in NI injection queues, network-wide.
        self.ni_queue_flits: int = 0
        # Messages held by protocol engines awaiting circuits.
        self.engine_pending: int = 0

    # -- exactness check (used by tests, not by the hot path) -----------

    def validate(self, network) -> None:
        """Assert every counter against the O(N) ground truth."""
        busy = {r.node for r in network.routers if r.busy()}
        if busy != self.active_routers:
            raise AssertionError(
                f"router registry drift: registered={sorted(self.active_routers)}"
                f" busy={sorted(busy)}"
            )
        queued = sum(ni.pending_wormhole_flits() for ni in network.interfaces)
        if queued != self.ni_queue_flits:
            raise AssertionError(
                f"ni_queue_flits drift: counter={self.ni_queue_flits}"
                f" actual={queued}"
            )
        # ``engine_pending`` counts messages parked in protocol engines
        # *plus* messages the reliability layer still tracks as unacked
        # (both register via ``note_pending`` and both pin idleness).
        pending = sum(
            ni.pending_engine_messages() + len(ni._unacked)
            for ni in network.interfaces
        )
        if pending != self.engine_pending:
            raise AssertionError(
                f"engine_pending drift: counter={self.engine_pending}"
                f" actual={pending}"
            )
        # Step registry may be a superset (spurious for one cycle), never
        # a subset: missing a component with work would stall the sim.
        # A backlogged NI only *needs* registration while some injection
        # VC with queued flits has router buffer space -- a fully blocked
        # backlog parks until the router's space-freed wake-up.
        needy = set()
        for ni in network.interfaces:
            if ni.engine is not None and ni.engine.needs_cycle():
                needy.add(ni.node)
            elif any(
                queue and ni.router.injection_space(vc) > 0
                for vc, queue in enumerate(ni._queues)
            ):
                needy.add(ni.node)
        missing = needy - self.active_nis
        if missing:
            raise AssertionError(f"NIs with work not registered: {sorted(missing)}")
        # With the vectorized backend attached, also assert its flat
        # arrays against the per-object ground truth (same spirit: the
        # fast path's bookkeeping must never drift from what a full scan
        # would reconstruct).
        core = getattr(network, "_core", None)
        if core is not None and core.attached:
            core.validate(network)
