"""The Network: topology + routers + NIs + wave plane, steppable by cycle.

``Network.step()`` advances one base-clock cycle:

1. every NI runs its protocol engine and pumps wormhole injection;
2. the wave plane advances control flits, probes and transfers;
3. every S0 router routes eligible headers (RC/VA);
4. every S0 router moves flits (SA/ST/LT) with credit return.

The per-cycle ordering is fixed and documented so runs are exactly
reproducible; all intra-cycle interactions are pipelined by the
"arrived this cycle may not move this cycle" rule in the router.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.circuits.plane import WavePlane
from repro.core.baseline import WormholeOnlyEngine
from repro.core.carp import CARPEngine, CircuitClose, CircuitOpen
from repro.core.circuit_cache import CircuitCache
from repro.core.clrp import CLRPEngine
from repro.core.replacement import make_replacement
from repro.core.wave_router import WaveRouter
from repro.errors import ConfigError
from repro.network.activity import ActivityTracker
from repro.network.interface import NetworkInterface
from repro.network.vectorized import VectorizedCore
from repro.network.message import Message
from repro.sim.config import NetworkConfig
from repro.sim.events import EventKind
from repro.sim.rng import SimRandom
from repro.sim.stats import LossRecord, MessageRecord, StatsCollector
from repro.topology import build_topology
from repro.topology.faults import KILL, FaultSchedule, FaultSet
from repro.wormhole.router import WormholeRouter
from repro.wormhole.routing import make_routing

if TYPE_CHECKING:  # pragma: no cover
    pass


class Network:
    """A complete simulated machine."""

    def __init__(
        self,
        config: NetworkConfig,
        *,
        faults: FaultSet | None = None,
        rng: SimRandom | None = None,
    ) -> None:
        self.config = config
        self.stats = StatsCollector()
        self.rng = rng if rng is not None else SimRandom(config.seed)
        self.topology = build_topology(config.topology, config.dims)
        self.faults = faults
        # Dynamic fault schedules drain their due events at the top of
        # every step; a plain static FaultSet has no events to drain.
        self.fault_schedule: FaultSchedule | None = (
            faults if isinstance(faults, FaultSchedule) else None
        )
        self.cycle = 0
        self.work_counter = 0
        self.log = None  # event log, set by attach_event_log
        # Active-set registries: step() touches only registered components
        # and is_idle() reads counters instead of scanning every node.
        self.activity = ActivityTracker()

        routing = make_routing(
            config.wormhole.routing, self.topology, config.wormhole.vcs
        )
        # Routers first (delivery callbacks are rebound by the NIs).
        self.routers: list[WormholeRouter] = [
            WormholeRouter(
                node=n,
                topology=self.topology,
                config=config.wormhole,
                routing=routing,
                stats=self.stats,
                deliver=lambda flit, cycle: None,  # NI rebinds below
                faults=faults,
            )
            for n in range(self.topology.num_nodes)
        ]
        for node in range(self.topology.num_nodes):
            for port in self.topology.connected_ports(node):
                nbr = self.topology.neighbor(node, port)
                assert nbr is not None
                self.routers[node].connect(
                    port, self.routers[nbr], self.topology.reverse_port(node, port)
                )

        self.interfaces: list[NetworkInterface] = [
            NetworkInterface(n, self.routers[n], self.stats, self.topology.distance)
            for n in range(self.topology.num_nodes)
        ]
        for router in self.routers:
            router.active_set = self.activity.active_routers
            router.ni_active_set = self.activity.active_nis
            router.drop_sink = self._on_worm_poisoned
        for ni in self.interfaces:
            ni.tracker = self.activity
            if config.reliability is not None:
                ni.configure_reliability(config.reliability, self._deliver_ack)

        # Wave plane and protocol engines.
        self.plane: WavePlane | None = None
        self.wave_routers: list[WaveRouter] = []
        if config.protocol == "wormhole":
            for ni in self.interfaces:
                ni.set_engine(
                    WormholeOnlyEngine(ni.node, ni, self.stats, self.topology)
                )
        else:
            wave = config.wave
            if wave is None:  # pragma: no cover - guarded by NetworkConfig
                raise ConfigError("wave protocols need a WaveConfig")
            self.plane = WavePlane(self.topology, wave, self.stats, faults)
            self.plane.deliver_message = self._deliver_circuit_message
            engine_cls = CLRPEngine if config.protocol == "clrp" else CARPEngine
            for ni in self.interfaces:
                cache = CircuitCache(
                    wave.circuit_cache_size,
                    make_replacement(wave.replacement, self.rng.fork(f"repl{ni.node}")),
                )
                engine = engine_cls(
                    ni.node, ni, self.stats, self.topology, self.plane, cache
                )
                ni.set_engine(engine)
                self.plane.register_engine(ni.node, engine)
            self.wave_routers = [
                WaveRouter(self.routers[n], self.plane.units[n])
                for n in range(self.topology.num_nodes)
            ]

        # Struct-of-arrays stepping core, built lazily on the first
        # vectorized step (after all wiring above is final).
        self._core: VectorizedCore | None = None
        if config.backend == "reference":
            self.step = self.step_reference  # type: ignore[method-assign]
        elif config.backend == "vectorized":
            self.step = self.step_vectorized  # type: ignore[method-assign]

    def attach_event_log(self, log) -> None:
        """Enable protocol event tracing (:mod:`repro.sim.events`).

        Accepts any sink speaking the ``emit`` protocol -- an
        :class:`~repro.sim.events.EventLog` or a bounded
        :class:`~repro.observe.trace.Tracer` ring buffer -- and wires it
        into every emitting component: the wave plane, the protocol
        engines, the wormhole routers (worm head/tail advance) and the
        network interfaces (retransmits).
        """
        self.log = log
        if self.plane is not None:
            self.plane.log = log
        for router in self.routers:
            router.log = log
        for ni in self.interfaces:
            ni.log = log
            if ni.engine is not None:
                ni.engine.log = log
        # The core caches per-router log references; rebuild it.
        if self._core is not None:
            if self._core.attached:
                self._core.detach()
            self._core = None

    # -- injection -------------------------------------------------------

    def inject(self, item) -> None:
        """Feed one workload item (message or CARP directive) in."""
        if isinstance(item, Message):
            self.stats.new_message(
                MessageRecord(
                    msg_id=item.msg_id,
                    src=item.src,
                    dst=item.dst,
                    length=item.length,
                    created=item.created,
                )
            )
            self.interfaces[item.src].on_message(item, self.cycle)
        elif isinstance(item, (CircuitOpen, CircuitClose)):
            self.interfaces[item.node].on_directive(item, self.cycle)
        else:
            raise ConfigError(f"cannot inject {type(item).__name__}")

    def _deliver_circuit_message(self, msg: Message, cycle: int) -> None:
        self.interfaces[msg.dst].on_circuit_delivery(msg, cycle)

    def _deliver_ack(self, src: int, msg_id: int, due: int) -> None:
        """Reliability-layer ack arriving back at the source NI."""
        self.interfaces[src].receive_ack(msg_id, due)

    # -- dynamic faults -----------------------------------------------------

    def _apply_due_faults(self, cycle: int) -> None:
        """Drain the schedule's events due at ``cycle`` and react.

        Each event is applied (fault-set membership changes) *before* its
        protocol reaction runs, and events are processed in schedule
        order so same-cycle heal/kill sequences stay order-faithful.
        """
        sched = self.fault_schedule
        assert sched is not None
        for ev in sched.pop_due(cycle):
            sched.apply(ev)
            self.work_counter += 1
            nbr = self.topology.neighbor(ev.node, ev.port)
            assert nbr is not None
            if ev.kind == KILL:
                self.stats.bump("fault.links_killed")
                if self.log is not None:
                    self.log.emit(
                        cycle, EventKind.LINK_KILLED, ev.node, ev.port, nbr=nbr
                    )
                self._react_link_killed(ev.node, ev.port, cycle)
                if self.topology.bidirectional:
                    # fail_link killed the reverse direction too.
                    self._react_link_killed(
                        nbr, self.topology.reverse_port(ev.node, ev.port), cycle
                    )
            else:
                self.stats.bump("fault.links_healed")
                if self.log is not None:
                    self.log.emit(
                        cycle, EventKind.LINK_HEALED, ev.node, ev.port, nbr=nbr
                    )

    def _react_link_killed(self, node: int, port: int, cycle: int) -> None:
        """Protocol reaction to one *directed* link going down."""
        if self.plane is not None:
            self.plane.on_link_killed(node, port, cycle)
        # Worms routed across the dead link exist (as routes) only at its
        # endpoint router; purge them network-wide.
        for msg_id in sorted(self.routers[node].worms_routed_via(port)):
            self._purge_worm(msg_id, node, cycle)

    def _purge_worm(self, msg_id: int, node: int, cycle: int) -> None:
        removed = 0
        for router in self.routers:
            removed += router.purge_message(msg_id)
        rec = self.stats.messages.get(msg_id)
        if rec is not None:
            removed += self.interfaces[rec.src].purge_pending(msg_id)
        self.stats.bump("fault.worms_purged")
        self.stats.record_loss(
            LossRecord(
                cycle=cycle, msg_id=msg_id, node=node,
                reason="link_down", flits=removed,
            )
        )
        if self.log is not None:
            self.log.emit(cycle, EventKind.WORM_DROPPED, node, msg_id,
                          flits=removed, reason="link_down")

    def _on_worm_poisoned(self, msg_id: int, node: int, cycle: int,
                          reason: str) -> None:
        """A router poisoned a worm whose every route is faulty: the
        flits drain and are dropped, so record the loss once here."""
        self.stats.record_loss(
            LossRecord(cycle=cycle, msg_id=msg_id, node=node, reason=reason)
        )
        if self.log is not None:
            self.log.emit(cycle, EventKind.WORM_DROPPED, node, msg_id,
                          reason=reason)

    # -- time ---------------------------------------------------------------

    def step(self) -> None:
        """Advance one cycle, touching only *active* components.

        Cycle-exact with :meth:`step_reference` (the original O(N) loop):

        * NIs run in sorted node order; an NI's ``pre_cycle`` never
          activates another NI, and on a drained NI it is a no-op, so
          iterating a sorted snapshot of the registry matches the full
          scan exactly.
        * Skipping the wave plane when it is idle is safe because
          ``WavePlane.step`` over empty probe/flit/transfer lists has no
          effect.
        * Routers run in sorted node order for both phases (credit
          returns flow upstream mid-traversal, so order matters).  The
          snapshot taken before the route phase equals the live busy set:
          ``route_phase`` never en/de-queues flits, and a router first
          activated *during* the traversal loop holds only flits with
          ``arrival == cycle + 1``, for which ``traversal_phase`` is a
          guaranteed no-op in the reference loop too.
        """
        cycle = self.cycle
        if self.fault_schedule is not None and self.fault_schedule.has_due(cycle):
            self._apply_due_faults(cycle)
        work = 0
        tracker = self.activity
        if tracker.active_nis:
            for idx in sorted(tracker.active_nis):
                work += self.interfaces[idx].pre_cycle(cycle)
        plane = self.plane
        if plane is not None and not plane.is_idle():
            before = plane.work_done
            plane.step(cycle)
            work += plane.work_done - before
        if tracker.active_routers:
            order = sorted(tracker.active_routers)
            routers = self.routers
            for idx in order:
                routers[idx].route_phase(cycle)
            for idx in order:
                work += routers[idx].traversal_phase(cycle)
        self.work_counter += work
        self.cycle = cycle + 1

    def step_vectorized(self) -> None:
        """Advance one cycle with the struct-of-arrays wormhole core.

        NI/plane scheduling is identical to :meth:`step`; the router
        phases run inside :class:`~repro.network.vectorized.VectorizedCore`
        over flat channel-state arrays, in the same sorted node order and
        the same per-``_active``-set iteration order, so results stay
        bit-identical to :meth:`step_reference`.  Fault reactions hand
        state back to the router objects first (they purge worms through
        the object API); introspection goes through
        :meth:`materialize_views`.
        """
        cycle = self.cycle
        if self.fault_schedule is not None and self.fault_schedule.has_due(cycle):
            if self._core is not None and self._core.attached:
                self._core.detach()
            self._apply_due_faults(cycle)
        work = 0
        tracker = self.activity
        if tracker.active_nis:
            for idx in sorted(tracker.active_nis):
                work += self.interfaces[idx].pre_cycle(cycle)
        plane = self.plane
        if plane is not None and not plane.is_idle():
            before = plane.work_done
            plane.step(cycle)
            work += plane.work_done - before
        if tracker.active_routers:
            core = self._core
            if core is None:
                core = self._core = VectorizedCore(self)
            if not core.attached:
                core.attach()
            work += core.step(cycle, sorted(tracker.active_routers))
        self.work_counter += work
        self.cycle = cycle + 1

    def materialize_views(self) -> None:
        """Refresh router-object state from the vectorized core's arrays.

        No-op on the other backends (the objects are already live).
        Needed before anything reads per-router routing/credit state
        directly: the deadlock detector, the invariant harness, tests.
        """
        if self._core is not None and self._core.attached:
            self._core.materialize()

    def step_reference(self) -> None:
        """The original O(num_nodes) loop, kept as the executable spec
        for the cycle-exactness tests (see tests/integration/
        test_cycle_exact.py)."""
        cycle = self.cycle
        if self.fault_schedule is not None and self.fault_schedule.has_due(cycle):
            self._apply_due_faults(cycle)
        work = 0
        for ni in self.interfaces:
            work += ni.pre_cycle(cycle)
        if self.plane is not None:
            before = self.plane.work_done
            self.plane.step(cycle)
            work += self.plane.work_done - before
        for router in self.routers:
            if router.busy():
                router.route_phase(cycle)
        for router in self.routers:
            if router.busy():
                work += router.traversal_phase(cycle)
        self.work_counter += work
        self.cycle = cycle + 1

    def run(self, cycles: int) -> None:
        """Convenience: step ``cycles`` times (tests and examples)."""
        for _ in range(cycles):
            self.step()

    # -- state queries ------------------------------------------------------

    def is_idle(self) -> bool:
        """O(1) idleness from the exact activity counters.

        Deliberately does *not* consult the step registries (an NI may
        stay registered one spurious cycle); the counters below mirror
        the old O(N) scan bit for bit.
        """
        tracker = self.activity
        if tracker.active_routers:
            return False
        if tracker.ni_queue_flits or tracker.engine_pending:
            return False
        if self.plane is not None and not self.plane.is_idle():
            return False
        return True

    def recovery_pending(self) -> bool:
        """True while any source NI holds unacked messages or queued acks.

        Only meaningful with ``config.reliability`` set; the livelock
        monitor uses this to distinguish "waiting out a retransmission
        timer" from a genuine stall.
        """
        if self.config.reliability is None:
            return False
        return any(ni.recovery_pending() for ni in self.interfaces)

    def outstanding_messages(self) -> int:
        return self.stats.outstanding

    def check_deadlock(self) -> None:
        """Raise :class:`~repro.errors.DeadlockError` on a wait-for cycle."""
        from repro.verify.deadlock import assert_no_deadlock

        self.materialize_views()
        assert_no_deadlock(self)
