"""Struct-of-arrays stepping core for the wormhole data path.

The active-set core (DESIGN.md §9) made stepping O(active components),
but each flit movement still pays object-graph prices: attribute chains,
``InputVC``/``OutputVC`` method calls, a ``stats.bump`` dict update per
event, and a fresh ``routing.candidates`` computation per blocked header
per cycle.  At saturation that is the entire bill.

:class:`VectorizedCore` flattens the per-channel scalar state of every
router into arrays indexed by a global virtual-channel number and
advances one cycle of the whole wormhole subsystem per :meth:`step`
call.  The layout splits state in two:

* **Shared by reference** -- flit deques, the per-router ``_active``
  sets, the round-robin dicts, ``link_flits`` and the activity
  registries are the *same objects* the routers own.  Mutating them
  through the core preserves both the observable state and -- crucially
  for bit-identity -- the *iteration order* of the ``_active`` sets,
  which the arbitration and routing loops inherit.
* **Core-owned scalars** -- per-input-VC route/msg, per-output-VC
  credits/owner, ejection-channel owners and the VC-allocation rotation
  live in flat lists while the core is attached, and are written back to
  the router objects on :meth:`detach` (full hand-back, e.g. around
  fault reactions) or :meth:`materialize` (read-only refresh for
  introspection: deadlock detector, invariant harness, tests).

The bit-identity contract (``work_counter``, delivered records, stats
counters) against ``Network.step_reference`` is enforced by
``tests/integration/test_cycle_exact.py`` over every protocol/topology
combination, with fault schedules and the reliability layer enabled,
plus the ``tests/corpus/`` fuzz reproducers.

An optional numba kernel behind this same interface is the obvious next
step for the flat arrays; the container image does not ship numba, so
the pure-Python loops below are the only implementation for now.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ProtocolError
from repro.sim.events import EventKind
from repro.wormhole.flit import DROP_PORT, EJECT_PORT

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network

# Sentinel for "no route" in the flat route arrays; distinct from every
# real port index and from the EJECT/INJECT/DROP sentinels (-1/-2/-3).
UNROUTED = -10

# (counter-attribute, stats name) pairs flushed once per step.
_COUNTERS = (
    ("c_routed", "wormhole.headers_routed"),
    ("c_va_stall", "wormhole.va_stall"),
    ("c_eject_stall", "wormhole.eject_vc_stall"),
    ("c_credit_stall", "wormhole.credit_stall"),
    ("c_moved", "wormhole.flits_moved"),
    ("c_ejected", "wormhole.flits_ejected"),
    ("c_dropped", "wormhole.flits_dropped"),
    ("c_poisoned", "wormhole.worms_poisoned"),
)


class VectorizedCore:
    """Flat-array wormhole stepping over a :class:`Network`'s routers."""

    def __init__(self, network: "Network") -> None:
        self.network = network
        routers = network.routers
        topo = network.topology
        cfg = network.config.wormhole
        self.N = N = topo.num_nodes
        self.P = P = topo.num_ports
        self.W = W = cfg.vcs
        self.PI = PI = P + 1  # physical input ports + injection port
        self.M = PI * W  # round-robin modulus, matches the object core
        self.delay = cfg.router_delay
        self.max_credits = cfg.buffer_depth
        self.routing = routers[0].routing
        self.faults = network.faults
        self.stats = network.stats
        self.drop_sink = routers[0].drop_sink
        self.active_routers = network.activity.active_routers
        self.active_nis = network.activity.active_nis
        self.base_in = [n * PI * W for n in range(N)]
        self.base_out = [n * P * W for n in range(N)]

        n_ivc = N * PI * W
        n_ovc = N * P * W
        # Shared-by-reference views (refreshed on attach).
        self.buf: list = [None] * n_ivc
        self.act: list = [r._active for r in routers]
        self.rr: list = [r._rr for r in routers]
        self.link_flits: list = [r.link_flits for r in routers]
        self.deliver: list = [r.deliver for r in routers]
        self.logs: list = [r.log for r in routers]
        # Core-owned scalars (synced on attach/detach/materialize).
        self.route_port = [UNROUTED] * n_ivc
        self.route_vc = [0] * n_ivc
        # Absolute output-VC index of the route when it targets a
        # physical port (-1 otherwise): saves recomputing
        # ``base_out + port*W + vc`` on every credit check and move.
        self.route_ovc = [-1] * n_ivc
        self.msg = [-1] * n_ivc
        self.credits = [0] * n_ovc
        self.owner = [-1] * n_ovc  # owning ivc index, -1 when free
        self.eject_owner = [-1] * (N * W)
        self.va_rr = [0] * N
        # Static wiring, derived once from the router graph.
        self.up_ovc = [-1] * n_ivc
        self.down_ivc = [-1] * n_ovc
        self.down_node = [-1] * n_ovc
        self.down_key: list = [None] * n_ovc
        self.connected = [False] * (N * P)
        for node, router in enumerate(routers):
            for port in range(P):
                down = router.downstream[port]
                if down is None:
                    continue
                self.connected[node * P + port] = True
                nbr, their_port = down
                for vc in range(W):
                    o = self.base_out[node] + port * W + vc
                    self.down_ivc[o] = self.base_in[nbr.node] + their_port * W + vc
                    self.down_node[o] = nbr.node
                    self.down_key[o] = (their_port, vc)
                    # The downstream input VC credits this output VC.
                    self.up_ovc[self.down_ivc[o]] = o
        # Routing tiers cached per input VC while the same (header flit,
        # dateline bits) pair sits parked at the buffer head; candidates()
        # is pure in those inputs, so a blocked header stops recomputing
        # its options every cycle.
        self.tiers_cache: list = [None] * n_ivc
        # VA-blocked headers skip the allocator scan entirely.  Within an
        # attached epoch the fault set is frozen (fault events detach the
        # core first), so a stalled header's eligible output VCs are a
        # fixed set and the stall can only end when one of them frees --
        # which happens solely on a tail departure.  ``blocked[i]`` is 0
        # (scan), 1 (va-stalled) or 2 (eject-stalled); ``watch[o]`` /
        # ``eject_watch[node]`` list the input VCs to wake when owner
        # ``o`` / any ejection channel of ``node`` clears.  Spurious
        # wakes (stale entries) just trigger one re-scan and re-park.
        self.blocked = [0] * n_ivc
        self.watch: list = [[] for _ in range(n_ovc)]
        self.eject_watch: list = [[] for _ in range(N)]
        # Credit-stalled worms skip the head-flit/credit re-check in the
        # traversal gather: a worm routed to output VC ``o`` with zero
        # credits stays unmovable until ``credits[o]`` goes 0 -> 1, and
        # ``owner[o]`` already names the one input VC to wake then.
        self.cstalled = [False] * n_ivc
        self.attached = False
        for name, _ in _COUNTERS:
            setattr(self, name, 0)

    # -- attach / detach -------------------------------------------------

    def attach(self) -> None:
        """Copy router-object scalar state into the flat arrays."""
        W = self.W
        routers = self.network.routers
        route_port, route_vc, msg = self.route_port, self.route_vc, self.msg
        route_ovc = self.route_ovc
        for node, router in enumerate(routers):
            bi = self.base_in[node]
            bo_node = self.base_out[node]
            for row in router.inputs:
                for ivc in row:
                    i = bi + ivc.port * W + ivc.vc
                    self.buf[i] = ivc.buffer
                    if ivc.route is None:
                        route_port[i] = UNROUTED
                        route_ovc[i] = -1
                        msg[i] = -1
                    else:
                        route_port[i], route_vc[i] = ivc.route
                        route_ovc[i] = (
                            bo_node + route_port[i] * W + route_vc[i]
                            if route_port[i] >= 0 else -1
                        )
                        msg[i] = ivc.msg
            bo = self.base_out[node]
            for row in router.outputs:
                for out in row:
                    o = bo + out.port * W + out.vc
                    self.credits[o] = out.credits
                    if out.owner is None:
                        self.owner[o] = -1
                    else:
                        self.owner[o] = bi + out.owner[0] * W + out.owner[1]
            for ev in range(W):
                key = router.eject_owner[ev]
                self.eject_owner[node * W + ev] = (
                    -1 if key is None else bi + key[0] * W + key[1]
                )
            self.va_rr[node] = router._va_rr
            self.logs[node] = router.log
        # Fault state may have changed while detached: drop every stall
        # flag and watcher so each parked header re-scans once.
        self.blocked = [0] * len(self.blocked)
        self.cstalled = [False] * len(self.cstalled)
        for w in self.watch:
            w.clear()
        for w in self.eject_watch:
            w.clear()
        self.attached = True

    def materialize(self) -> None:
        """Write the arrays back into the router objects, staying
        attached (the arrays remain authoritative)."""
        W = self.W
        route_port, route_vc, msg = self.route_port, self.route_vc, self.msg
        for node, router in enumerate(self.network.routers):
            bi = self.base_in[node]
            for row in router.inputs:
                for ivc in row:
                    i = bi + ivc.port * W + ivc.vc
                    if route_port[i] == UNROUTED:
                        ivc.route = None
                        ivc.msg = None
                    else:
                        ivc.route = (route_port[i], route_vc[i])
                        ivc.msg = msg[i]
            bo = self.base_out[node]
            for row in router.outputs:
                for out in row:
                    o = bo + out.port * W + out.vc
                    out.credits = self.credits[o]
                    own = self.owner[o]
                    out.owner = (
                        None if own < 0
                        else ((own - bi) // W, (own - bi) % W)
                    )
            for ev in range(W):
                own = self.eject_owner[node * W + ev]
                router.eject_owner[ev] = (
                    None if own < 0 else ((own - bi) // W, (own - bi) % W)
                )
            router._va_rr = self.va_rr[node]

    def detach(self) -> None:
        """Hand state back to the router objects (fault reactions, event
        log rewiring); a later :meth:`attach` re-syncs."""
        self.materialize()
        self.attached = False

    # -- one cycle -------------------------------------------------------

    def step(self, cycle: int, order: list[int]) -> int:
        """Route + traverse every router in ``order`` (sorted node ids);
        returns flits moved (the network's work signal).

        Both phases are inlined into this one function on purpose: it
        runs once per cycle, so every ``self`` attribute the per-key
        loops need is hoisted into a local exactly once instead of once
        per router (the route/traverse bodies execute a few million
        times per simulated second at saturation).

        Iterating the live ``_active`` sets is safe in both loops: the
        route phase neither en/de-queues flits nor touches the sets (the
        drop sink only records the loss centrally), and the traversal
        gather does not mutate them either -- removals happen in the
        arbitration loop after the gather is complete.  The iteration
        order is exactly the object core's.
        """
        work = 0
        W = self.W
        P = self.P
        M = self.M
        delay = self.delay
        base_in = self.base_in
        base_out = self.base_out
        acts = self.act
        buf = self.buf
        route_port = self.route_port
        route_vc = self.route_vc
        route_ovc = self.route_ovc
        msg = self.msg
        owner = self.owner
        credits = self.credits
        eject_owner = self.eject_owner
        va_rr = self.va_rr
        blocked = self.blocked
        cstalled = self.cstalled
        watch = self.watch
        eject_watch = self.eject_watch
        tiers_cache = self.tiers_cache
        faults = self.faults
        connected = self.connected
        candidates = self.routing.candidates
        note_hop = self.routing.note_hop
        drop_sink = self.drop_sink
        up_ovc = self.up_ovc
        max_credits = self.max_credits
        down_ivc = self.down_ivc
        down_node = self.down_node
        down_key = self.down_key
        active_routers = self.active_routers
        active_nis = self.active_nis
        rrs = self.rr
        delivers = self.deliver
        links = self.link_flits
        logs = self.logs
        EJ = EJECT_PORT
        c_routed = c_va = c_ej_stall = c_cred = 0
        c_moved = c_ejected = c_poisoned = 0
        try:
            # -- RC/VA over every active router ------------------------
            for node in order:
                bi = base_in[node]
                bo = base_out[node]
                cp = node * P
                for key in acts[node]:
                    i = bi + key[0] * W + key[1]
                    if route_port[i] != UNROUTED:
                        continue
                    bl = blocked[i]
                    if bl:
                        # Parked on a full allocator: the header's
                        # eligibility checks all passed when it parked
                        # and cannot regress, so only the stall counter
                        # advances until a wake fires.
                        if bl == 1:
                            c_va += 1
                        else:
                            c_ej_stall += 1
                        continue
                    f = buf[i][0]
                    if not f.is_head or cycle < f.arrival + delay:
                        continue
                    if f.dst == node:
                        eb = node * W
                        granted = -1
                        for ev in range(W):
                            if eject_owner[eb + ev] < 0:
                                granted = ev
                                break
                        if granted < 0:
                            c_ej_stall += 1
                            blocked[i] = 2
                            eject_watch[node].append(i)
                            continue
                        eject_owner[eb + granted] = i
                        route_port[i] = EJ
                        route_vc[i] = granted
                        msg[i] = f.msg_id
                        continue
                    cache = tiers_cache[i]
                    if (
                        cache is not None
                        and cache[0] is f
                        and cache[1] == f.dateline_bits
                    ):
                        tiers = cache[2]
                    else:
                        tiers = candidates(node, f.dst, f)
                        tiers_cache[i] = (f, f.dateline_bits, tiers)
                    # Inlined _free_output_vc: among free VCs pick most
                    # credits, ties broken by the rotating port offset.
                    choice_port = -1
                    choice_vc = 0
                    va = va_rr[node]
                    for tier in tiers:
                        n = len(tier)
                        if n == 0:
                            continue
                        start = va % n
                        best_key = -1
                        for j in range(n):
                            port, vcs = tier[(start + j) % n]
                            if faults is not None and faults.is_faulty(
                                node, port
                            ):
                                continue
                            if not connected[cp + port]:
                                continue
                            ob = bo + port * W
                            for vc in vcs:
                                o = ob + vc
                                if owner[o] < 0 and credits[o] > best_key:
                                    best_key = credits[o]
                                    choice_port = port
                                    choice_vc = vc
                        if best_key >= 0:
                            break
                    if choice_port < 0:
                        if faults is not None and self._all_routes_faulty(
                            node, tiers
                        ):
                            route_port[i] = DROP_PORT
                            route_vc[i] = 0
                            msg[i] = f.msg_id
                            c_poisoned += 1
                            if drop_sink is not None:
                                drop_sink(f.msg_id, node, cycle, "no_route")
                            continue
                        c_va += 1
                        blocked[i] = 1
                        for tier in tiers:
                            for port, vcs in tier:
                                if faults is not None and faults.is_faulty(
                                    node, port
                                ):
                                    continue
                                if not connected[cp + port]:
                                    continue
                                ob = bo + port * W
                                for vc in vcs:
                                    watch[ob + vc].append(i)
                        continue
                    o = bo + choice_port * W + choice_vc
                    owner[o] = i
                    route_port[i] = choice_port
                    route_vc[i] = choice_vc
                    route_ovc[i] = o
                    msg[i] = f.msg_id
                    va_rr[node] = va + 1
                    c_routed += 1
            # -- SA/ST/LT over every active router ---------------------
            for node in order:
                act = acts[node]
                if not act:
                    continue
                used = 0  # bitmask over granted input ports
                if faults is not None:
                    dropped, used = self._drain_poisoned(node, cycle)
                    work += dropped
                    if not act:
                        continue
                bi = base_in[node]
                requests: dict = {}
                for key in act:
                    i = bi + key[0] * W + key[1]
                    if cstalled[i]:
                        # Still waiting on a downstream credit; the wake
                        # below clears this the moment one is returned.
                        c_cred += 1
                        continue
                    rp = route_port[i]
                    if rp >= 0:
                        if buf[i][0].arrival >= cycle:
                            continue
                        if credits[route_ovc[i]] <= 0:
                            c_cred += 1
                            cstalled[i] = True
                            continue
                    elif rp != EJ:
                        continue  # UNROUTED, or DROP (drained above)
                    elif buf[i][0].arrival >= cycle:
                        continue
                    lst = requests.get(rp)
                    if lst is None:
                        requests[rp] = [(key, i)]
                    else:
                        lst.append((key, i))
                if not requests:
                    continue
                rr = rrs[node]
                log = logs[node]
                for rp, reqs in requests.items():
                    if len(reqs) == 1:
                        # Lone requester: wins outright; the rotation
                        # pointer is still advanced past it, exactly as
                        # the object core does.
                        key, i = reqs[0]
                        if used >> key[0] & 1:
                            continue
                    else:
                        # Round-robin winner: nearest local VC index at
                        # or after the pointer.  Distances are unique,
                        # so no sort is needed to match min() over the
                        # object core's sorted request list.
                        ptr = rr.get(rp, 0)
                        best_d = M
                        key = None
                        i = -1
                        for k, j in reqs:
                            if used >> k[0] & 1:
                                continue
                            d = j - bi - ptr
                            if d < 0:
                                d += M
                            if d < best_d:
                                best_d = d
                                key = k
                                i = j
                        if key is None:
                            continue
                    nxt = i - bi + 1
                    rr[rp] = nxt if nxt < M else 0
                    used |= 1 << key[0]
                    # -- the winner's flit moves (ST/LT, inlined) ------
                    b = buf[i]
                    f = b.popleft()
                    if not b:
                        act.discard(key)
                        if not act:
                            active_routers.discard(node)
                    up = up_ovc[i]
                    if up >= 0:
                        c = credits[up] + 1
                        if c > max_credits:
                            raise ProtocolError(
                                f"credit overflow on node {node} input "
                                f"({key[0]},{key[1]})"
                            )
                        credits[up] = c
                        if c == 1:
                            own = owner[up]
                            if own >= 0:
                                cstalled[own] = False
                    else:
                        # No upstream router: an injection-row buffer just
                        # gained a slot, so wake the local NI to pump.
                        active_nis.add(node)
                    work += 1
                    if rp == EJ:
                        delivers[node](f, cycle)
                        if f.is_tail:
                            eject_owner[node * W + route_vc[i]] = -1
                            route_port[i] = UNROUTED
                            msg[i] = -1
                            ew = eject_watch[node]
                            if ew:
                                for x in ew:
                                    blocked[x] = 0
                                ew.clear()
                        c_ejected += 1
                        continue
                    if f.is_head:
                        note_hop(node, rp, f)
                    o = route_ovc[i]
                    credits[o] -= 1
                    dnode = down_node[o]
                    dact = acts[dnode]
                    f.arrival = cycle
                    if not dact:
                        active_routers.add(dnode)
                    buf[down_ivc[o]].append(f)
                    dact.add(down_key[o])
                    links[node][rp] += 1
                    c_moved += 1
                    if log is not None and (f.is_head or f.is_tail):
                        log.emit(
                            cycle,
                            EventKind.WORM_HEAD_ADVANCE if f.is_head
                            else EventKind.WORM_TAIL_ADVANCE,
                            node, f.msg_id, port=rp, to=dnode,
                        )
                    if f.is_tail:
                        owner[o] = -1
                        route_port[i] = UNROUTED
                        msg[i] = -1
                        w = watch[o]
                        if w:
                            for x in w:
                                blocked[x] = 0
                            w.clear()
        finally:
            # On the ProtocolError path the partial tallies still reach
            # the per-step flush.
            self.c_routed += c_routed
            self.c_va_stall += c_va
            self.c_eject_stall += c_ej_stall
            self.c_credit_stall += c_cred
            self.c_moved += c_moved
            self.c_ejected += c_ejected
            self.c_poisoned += c_poisoned
            self._flush_counters()
        return work

    def _flush_counters(self) -> None:
        bump = self.stats.bump
        for name, counter in _COUNTERS:
            n = getattr(self, name)
            if n:
                bump(counter, n)
                setattr(self, name, 0)

    def _all_routes_faulty(self, node: int, tiers) -> bool:
        faults = self.faults
        assert faults is not None
        cp = node * self.P
        saw_candidate = False
        for tier in tiers:
            for port, _vcs in tier:
                if not self.connected[cp + port]:
                    continue
                saw_candidate = True
                if not faults.is_faulty(node, port):
                    return False
        return saw_candidate

    def _drain_poisoned(self, node: int, cycle: int) -> tuple[int, int]:
        """Discard one flit per poisoned worm, crediting upstream."""
        dropped = 0
        used = 0
        act = self.act[node]
        W = self.W
        bi = self.base_in[node]
        for key in list(act):
            port, vc = key
            i = bi + port * W + vc
            if self.route_port[i] != DROP_PORT:
                continue
            b = self.buf[i]
            f = b[0]
            if f.arrival >= cycle:
                continue
            b.popleft()
            if not b:
                act.discard(key)
                if not act:
                    self.active_routers.discard(node)
            up = self.up_ovc[i]
            if up >= 0:
                c = self.credits[up] + 1
                if c > self.max_credits:
                    raise ProtocolError(
                        f"credit overflow on node {node} input ({port},{vc})"
                    )
                self.credits[up] = c
                if c == 1:
                    own = self.owner[up]
                    if own >= 0:
                        self.cstalled[own] = False
            else:
                self.active_nis.add(node)
            self.c_dropped += 1
            if f.is_tail:
                self.route_port[i] = UNROUTED
                self.msg[i] = -1
            used |= 1 << port
            dropped += 1
        return dropped, used

    # -- drift validation (tests; ActivityTracker.validate-style) --------

    def validate(self, network: "Network") -> None:
        """Assert the flat arrays against per-object ground truth.

        Ground truth is recomputed from the *shared* primitives (the flit
        deques and wiring), never from the stale object scalars, so this
        can run every cycle while the core is attached.  Uses numpy for
        the whole-array credit-conservation check.
        """
        import numpy as np

        W, P = self.W, self.P
        n_ovc = self.N * P * W
        # Credit conservation: every connected output VC's credits plus
        # the downstream buffer occupancy equals the buffer depth.
        credits = np.asarray(self.credits)
        down = np.asarray(self.down_ivc)
        conn = down >= 0
        occ = np.asarray(
            [len(self.buf[d]) if d >= 0 else 0 for d in self.down_ivc]
        )
        bad = conn & (credits + occ != self.max_credits)
        if bad.any():
            o = int(np.flatnonzero(bad)[0])
            raise AssertionError(
                f"credit drift at ovc {o}: credits={self.credits[o]} "
                f"downstream occupancy={occ[o]} depth={self.max_credits}"
            )
        # Ownership bijection: owner[o] == i  <=>  i is routed to o.
        for o in range(n_ovc):
            own = self.owner[o]
            if own >= 0:
                node = o // (P * W)
                local = o - self.base_out[node]
                if (
                    self.route_port[own] != local // W
                    or self.route_vc[own] != local % W
                ):
                    raise AssertionError(
                        f"owner drift: ovc {o} claims ivc {own}, whose route "
                        f"is ({self.route_port[own]},{self.route_vc[own]})"
                    )
        for node in range(self.N):
            bi = self.base_in[node]
            bo = self.base_out[node]
            for local in range(self.PI * W):
                i = bi + local
                rp = self.route_port[i]
                if rp == UNROUTED:
                    if self.msg[i] != -1:
                        raise AssertionError(
                            f"msg set on unrouted ivc {i}: {self.msg[i]}"
                        )
                    continue
                if self.msg[i] < 0:
                    raise AssertionError(f"routed ivc {i} has no msg id")
                if rp >= 0:
                    o = bo + rp * W + self.route_vc[i]
                    if self.owner[o] != i:
                        raise AssertionError(
                            f"route drift: ivc {i} -> ovc {o} owned by "
                            f"{self.owner[o]}"
                        )
                elif rp == EJECT_PORT:
                    e = node * W + self.route_vc[i]
                    if self.eject_owner[e] != i:
                        raise AssertionError(
                            f"eject drift: ivc {i} -> channel {e} owned by "
                            f"{self.eject_owner[e]}"
                        )
                # Routed worms must carry a consistent msg id at the head.
                b = self.buf[i]
                if b and b[0].msg_id != self.msg[i] and rp != DROP_PORT:
                    raise AssertionError(
                        f"msg drift at ivc {i}: head flit {b[0].msg_id} "
                        f"vs recorded {self.msg[i]}"
                    )
            # The shared active set must mirror buffer occupancy exactly.
            expect = {
                (local // W, local % W)
                for local in range(self.PI * W)
                if self.buf[bi + local]
            }
            if expect != self.act[node]:
                raise AssertionError(
                    f"active-set drift at node {node}: "
                    f"{sorted(self.act[node])} vs {sorted(expect)}"
                )
