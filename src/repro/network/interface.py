"""Network interface (NI): where the local processor meets the network.

Per node, the NI owns:

* the **wormhole injection queues** -- worms waiting to stream into the
  router's injection virtual channels (the "from local processor" path of
  Fig. 1/2), paced by buffer space;
* the **delivery side** -- flits ejected by S0 and messages arriving over
  circuits both land here and are recorded as delivered;
* the node's **protocol engine** (CLRP / CARP / baseline), which it
  drives every cycle, and -- through the engine -- the Circuit Cache
  ("those registers are located in the network interface of every node",
  section 2).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.errors import ProtocolError
from repro.sim.config import SwitchingMode
from repro.sim.stats import StatsCollector
from repro.wormhole.flit import Flit, make_worm
from repro.wormhole.router import WormholeRouter

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.base import ProtocolEngine
    from repro.network.activity import ActivityTracker
    from repro.network.message import Message


class _PendingWorm:
    """A message's flits queued for one injection VC."""

    __slots__ = ("message", "flits", "next_index")

    def __init__(self, message: "Message", flits: list[Flit]) -> None:
        self.message = message
        self.flits = flits
        self.next_index = 0

    @property
    def done(self) -> bool:
        return self.next_index >= len(self.flits)

    @property
    def remaining(self) -> int:
        return len(self.flits) - self.next_index


class NetworkInterface:
    """One node's NI: injection, delivery and the protocol engine."""

    def __init__(
        self,
        node: int,
        router: WormholeRouter,
        stats: StatsCollector,
        distance_fn,
    ) -> None:
        self.node = node
        self.router = router
        self.stats = stats
        self.distance = distance_fn
        self.engine: "ProtocolEngine | None" = None
        # Shared active-set registries (None when driven standalone).
        self.tracker: "ActivityTracker | None" = None
        w = router.config.vcs
        self._queues: list[deque[_PendingWorm]] = [deque() for _ in range(w)]
        self.flits_delivered = 0
        self.messages_delivered = 0
        router.deliver = self.on_flit_delivered

    # -- protocol glue -----------------------------------------------------

    def set_engine(self, engine: "ProtocolEngine") -> None:
        self.engine = engine

    # -- active-set hooks --------------------------------------------------

    def request_cycle(self) -> None:
        """Register for per-cycle stepping (engine gained cycle work)."""
        if self.tracker is not None:
            self.tracker.active_nis.add(self.node)

    def note_pending(self, delta: int) -> None:
        """Engine-held message count changed (idleness bookkeeping)."""
        if self.tracker is not None:
            self.tracker.engine_pending += delta

    def _step_work_remains(self) -> bool:
        return any(self._queues) or (
            self.engine is not None and self.engine.needs_cycle()
        )

    def on_message(self, msg: "Message", cycle: int) -> None:
        if self.engine is None:
            raise ProtocolError(f"node {self.node} has no protocol engine")
        self.engine.on_message(msg, cycle)

    def on_directive(self, directive, cycle: int) -> None:
        if self.engine is None:
            raise ProtocolError(f"node {self.node} has no protocol engine")
        self.engine.on_directive(directive, cycle)

    # -- wormhole sending ----------------------------------------------------

    def send_wormhole(self, msg: "Message", mode: SwitchingMode, cycle: int) -> None:
        """Queue a message for injection through S0.

        If static faults sever every S0 path to the destination the
        message is *dropped* and counted (deterministic wormhole routing
        is not fault-tolerant; wedging the injection queue forever would
        just hide that fact from the experiment).
        """
        from repro.wormhole.routing import wormhole_path_available

        rec = self.stats.messages[msg.msg_id]
        if not wormhole_path_available(
            self.router.routing, msg.src, msg.dst, self.router.faults
        ):
            rec.mode = SwitchingMode.DROPPED
            self.stats.bump("wormhole.undeliverable_dropped")
            self.stats.bump(f"mode.{SwitchingMode.DROPPED.value}")
            return
        rec.mode = mode
        rec.hops = self.distance(msg.src, msg.dst)
        self.stats.bump(f"mode.{mode.value}")
        flits = make_worm(msg.msg_id, msg.dst, msg.length)
        # Shortest queue (by flits) keeps head-of-line blocking down.
        vc = min(
            range(len(self._queues)),
            key=lambda v: sum(p.remaining for p in self._queues[v]),
        )
        self._queues[vc].append(_PendingWorm(msg, flits))
        if self.tracker is not None:
            self.tracker.ni_queue_flits += len(flits)
            self.tracker.active_nis.add(self.node)

    def _pump_injection(self, cycle: int) -> int:
        pushed = 0
        for vc, queue in enumerate(self._queues):
            while queue:
                worm = queue[0]
                space = self.router.injection_space(vc)
                if space <= 0:
                    break
                while space > 0 and not worm.done:
                    flit = worm.flits[worm.next_index]
                    if worm.next_index == 0:
                        rec = self.stats.messages[worm.message.msg_id]
                        rec.injected = cycle
                    self.router.inject_flit(flit, vc, cycle)
                    worm.next_index += 1
                    space -= 1
                    pushed += 1
                if worm.done:
                    queue.popleft()
                else:
                    break
        if pushed and self.tracker is not None:
            self.tracker.ni_queue_flits -= pushed
        return pushed

    # -- per-cycle -------------------------------------------------------------

    def pre_cycle(self, cycle: int) -> int:
        """Engine hook plus injection pumping; returns flits injected.

        Deregisters from the active set once drained (no queued worms and
        no engine cycle work); idempotent, so the O(N) reference loop may
        keep calling it on idle NIs with no observable difference.
        """
        if self.engine is not None:
            self.engine.on_cycle(cycle)
        pushed = self._pump_injection(cycle)
        if self.tracker is not None and not self._step_work_remains():
            self.tracker.active_nis.discard(self.node)
        return pushed

    # -- delivery ---------------------------------------------------------------

    def on_flit_delivered(self, flit: Flit, cycle: int) -> None:
        """Ejection callback from the S0 router."""
        self.flits_delivered += 1
        if flit.dst != self.node:
            raise ProtocolError(
                f"flit for node {flit.dst} ejected at node {self.node}"
            )
        if flit.is_tail:
            rec = self.stats.messages[flit.msg_id]
            if rec.delivered >= 0:
                raise ProtocolError(f"message {flit.msg_id} delivered twice")
            self.stats.mark_delivered(flit.msg_id, cycle)
            self.messages_delivered += 1

    def on_circuit_delivery(self, msg: "Message", cycle: int) -> None:
        """A wave transfer's last flit arrived here."""
        if msg.dst != self.node:
            raise ProtocolError(
                f"circuit message for node {msg.dst} delivered at {self.node}"
            )
        rec = self.stats.messages[msg.msg_id]
        if rec.delivered >= 0:
            raise ProtocolError(f"message {msg.msg_id} delivered twice")
        self.stats.mark_delivered(msg.msg_id, cycle)
        self.messages_delivered += 1

    # -- introspection -----------------------------------------------------------

    def pending_wormhole_flits(self) -> int:
        return sum(p.remaining for q in self._queues for p in q)

    def pending_engine_messages(self) -> int:
        return self.engine.pending_count() if self.engine is not None else 0

    def is_idle(self) -> bool:
        return (
            self.pending_wormhole_flits() == 0
            and self.pending_engine_messages() == 0
        )
