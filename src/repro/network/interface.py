"""Network interface (NI): where the local processor meets the network.

Per node, the NI owns:

* the **wormhole injection queues** -- worms waiting to stream into the
  router's injection virtual channels (the "from local processor" path of
  Fig. 1/2), paced by buffer space;
* the **delivery side** -- flits ejected by S0 and messages arriving over
  circuits both land here and are recorded as delivered;
* the node's **protocol engine** (CLRP / CARP / baseline), which it
  drives every cycle, and -- through the engine -- the Circuit Cache
  ("those registers are located in the network interface of every node",
  section 2).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.errors import ProtocolError
from repro.sim.config import ReliabilityConfig, SwitchingMode
from repro.sim.events import EventKind, EventLog
from repro.sim.stats import DeliveryFailure, StatsCollector
from repro.wormhole.flit import Flit, make_worm
from repro.wormhole.router import WormholeRouter

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.base import ProtocolEngine
    from repro.network.activity import ActivityTracker
    from repro.network.message import Message


class _TrackedMessage:
    """Reliability state for one unacknowledged message at its source."""

    __slots__ = ("message", "deadline", "timeout", "attempts")

    def __init__(self, message: "Message", deadline: int, timeout: int) -> None:
        self.message = message
        self.deadline = deadline
        self.timeout = timeout
        self.attempts = 0  # retransmissions performed so far


class _PendingWorm:
    """A message's flits queued for one injection VC."""

    __slots__ = ("message", "flits", "next_index")

    def __init__(self, message: "Message", flits: list[Flit]) -> None:
        self.message = message
        self.flits = flits
        self.next_index = 0

    @property
    def done(self) -> bool:
        return self.next_index >= len(self.flits)

    @property
    def remaining(self) -> int:
        return len(self.flits) - self.next_index


class NetworkInterface:
    """One node's NI: injection, delivery and the protocol engine."""

    def __init__(
        self,
        node: int,
        router: WormholeRouter,
        stats: StatsCollector,
        distance_fn,
    ) -> None:
        self.node = node
        self.router = router
        self.stats = stats
        self.distance = distance_fn
        self.engine: "ProtocolEngine | None" = None
        # Bound per-cycle engine hooks, or None when the engine inherits
        # the base no-ops (the wormhole baseline): pre_cycle then skips
        # the calls entirely, which it performs once per active NI per
        # cycle, network-wide.
        self._engine_on_cycle: Callable[[int], None] | None = None
        self._engine_needs_cycle: Callable[[], bool] | None = None
        # Shared active-set registries (None when driven standalone).
        self.tracker: "ActivityTracker | None" = None
        w = router.config.vcs
        self._queues: list[deque[_PendingWorm]] = [deque() for _ in range(w)]
        # Static injection-side facts, cached off the router object: the
        # injection pump runs every cycle on every active NI.
        self._depth = router.config.buffer_depth
        self._inject_port = router.inject_port
        self._inject_row = router.inputs[router.inject_port]
        self.flits_delivered = 0
        self.messages_delivered = 0
        router.deliver = self.on_flit_delivered
        # End-to-end reliability (None = layer disabled, zero overhead).
        self.reliability: ReliabilityConfig | None = None
        self._ack_send: Callable[[int, int, int], None] | None = None
        self._unacked: dict[int, _TrackedMessage] = {}
        self._timeout_heap: list[tuple[int, int]] = []
        self._ack_heap: list[tuple[int, int]] = []
        # Optional event trace (set by Network.attach_event_log).
        self.log: EventLog | None = None

    # -- protocol glue -----------------------------------------------------

    def set_engine(self, engine: "ProtocolEngine") -> None:
        from repro.core.base import ProtocolEngine

        self.engine = engine
        cls = type(engine)
        self._engine_on_cycle = (
            None if cls.on_cycle is ProtocolEngine.on_cycle
            else engine.on_cycle
        )
        self._engine_needs_cycle = (
            None if cls.needs_cycle is ProtocolEngine.needs_cycle
            else engine.needs_cycle
        )

    def configure_reliability(
        self,
        config: ReliabilityConfig,
        ack_send: Callable[[int, int, int], None],
    ) -> None:
        """Enable per-message acks and retransmission.

        ``ack_send(src, msg_id, due)`` routes an acknowledgment to the
        source NI (the network wires this to ``receive_ack`` on the
        right interface).
        """
        self.reliability = config
        self._ack_send = ack_send

    # -- active-set hooks --------------------------------------------------

    def request_cycle(self) -> None:
        """Register for per-cycle stepping (engine gained cycle work)."""
        if self.tracker is not None:
            self.tracker.active_nis.add(self.node)

    def note_pending(self, delta: int) -> None:
        """Engine-held message count changed (idleness bookkeeping)."""
        if self.tracker is not None:
            self.tracker.engine_pending += delta

    def _step_work_remains(self) -> bool:
        # A non-empty injection queue does NOT keep the NI registered:
        # after ``_pump_injection`` every non-empty queue is blocked on
        # router buffer space, and the router re-registers this NI the
        # moment a flit leaves an injection-row buffer (``ni_active_set``
        # in WormholeRouter / ``active_nis`` in VectorizedCore).  Until
        # then another ``pre_cycle`` would be a guaranteed no-op.
        return (
            bool(self._unacked)
            or bool(self._ack_heap)
            or (
                self._engine_needs_cycle is not None
                and self._engine_needs_cycle()
            )
        )

    def on_message(self, msg: "Message", cycle: int) -> None:
        if self.engine is None:
            raise ProtocolError(f"node {self.node} has no protocol engine")
        if self.reliability is not None and msg.msg_id not in self._unacked:
            tracked = _TrackedMessage(
                msg,
                deadline=cycle + self.reliability.timeout,
                timeout=self.reliability.timeout,
            )
            self._unacked[msg.msg_id] = tracked
            heapq.heappush(self._timeout_heap, (tracked.deadline, msg.msg_id))
            self.note_pending(1)
            self.request_cycle()
        self.engine.on_message(msg, cycle)

    def on_directive(self, directive, cycle: int) -> None:
        if self.engine is None:
            raise ProtocolError(f"node {self.node} has no protocol engine")
        self.engine.on_directive(directive, cycle)

    # -- wormhole sending ----------------------------------------------------

    def send_wormhole(self, msg: "Message", mode: SwitchingMode, cycle: int) -> None:
        """Queue a message for injection through S0.

        If static faults sever every S0 path to the destination the
        message is *dropped* and counted (deterministic wormhole routing
        is not fault-tolerant; wedging the injection queue forever would
        just hide that fact from the experiment).
        """
        from repro.wormhole.routing import wormhole_path_available

        rec = self.stats.messages[msg.msg_id]
        if not wormhole_path_available(
            self.router.routing, msg.src, msg.dst, self.router.faults
        ):
            rec.mode = SwitchingMode.DROPPED
            self.stats.bump("wormhole.undeliverable_dropped")
            self.stats.bump(f"mode.{SwitchingMode.DROPPED.value}")
            return
        rec.mode = mode
        rec.hops = self.distance(msg.src, msg.dst)
        self.stats.bump(f"mode.{mode.value}")
        flits = make_worm(msg.msg_id, msg.dst, msg.length)
        # Shortest queue (by flits) keeps head-of-line blocking down.
        vc = min(
            range(len(self._queues)),
            key=lambda v: sum(p.remaining for p in self._queues[v]),
        )
        self._queues[vc].append(_PendingWorm(msg, flits))
        if self.tracker is not None:
            self.tracker.ni_queue_flits += len(flits)
            self.tracker.active_nis.add(self.node)

    def _pump_injection(self, cycle: int) -> int:
        pushed = 0
        router = self.router
        depth = self._depth
        inject_row = self._inject_row
        inject_port = self._inject_port
        for vc, queue in enumerate(self._queues):
            while queue:
                worm = queue[0]
                # injection_space(), with the occupancy read inlined --
                # this runs once per flit injected, network-wide.
                space = depth - len(inject_row[vc].buffer)
                if space <= 0:
                    break
                while space > 0 and not worm.done:
                    flit = worm.flits[worm.next_index]
                    if worm.next_index == 0:
                        rec = self.stats.messages[worm.message.msg_id]
                        rec.injected = cycle
                    router._enqueue(flit, inject_port, vc, cycle)
                    worm.next_index += 1
                    space -= 1
                    pushed += 1
                if worm.done:
                    queue.popleft()
                else:
                    break
        if pushed and self.tracker is not None:
            self.tracker.ni_queue_flits -= pushed
        return pushed

    # -- reliability -------------------------------------------------------

    def receive_ack(self, msg_id: int, due: int) -> None:
        """An ack from the destination NI will land here at ``due``."""
        heapq.heappush(self._ack_heap, (due, msg_id))
        self.request_cycle()

    def purge_pending(self, msg_id: int) -> int:
        """Drop not-yet-injected flits of ``msg_id`` (fault purge path).

        Returns the number of flits removed from the injection queues.
        """
        removed = 0
        for queue in self._queues:
            for worm in list(queue):
                if worm.message.msg_id != msg_id:
                    continue
                removed += worm.remaining
                queue.remove(worm)
        if removed and self.tracker is not None:
            self.tracker.ni_queue_flits -= removed
        return removed

    def recovery_pending(self) -> bool:
        """True while retransmit/ack timers guarantee future work here."""
        return bool(self._unacked) or bool(self._ack_heap)

    def _ack_delivery(self, rec, cycle: int) -> None:
        """Destination side: schedule the ack back to the source NI."""
        if self.reliability is None or self._ack_send is None:
            return
        delay = max(
            1, self.distance(rec.src, rec.dst) * self.reliability.ack_delay_per_hop
        )
        self._ack_send(rec.src, rec.msg_id, cycle + delay)

    def _reliability_cycle(self, cycle: int) -> int:
        """Process due acks and retransmit timers; returns work done."""
        rel = self.reliability
        assert rel is not None
        work = 0
        acks = self._ack_heap
        while acks and acks[0][0] <= cycle:
            _, msg_id = heapq.heappop(acks)
            tracked = self._unacked.pop(msg_id, None)
            if tracked is None:
                continue  # duplicate ack (retransmitted copy delivered too)
            self.note_pending(-1)
            self.stats.bump("reliability.acked")
            work += 1
        timeouts = self._timeout_heap
        while timeouts and timeouts[0][0] <= cycle:
            deadline, msg_id = heapq.heappop(timeouts)
            tracked = self._unacked.get(msg_id)
            if tracked is None or tracked.deadline != deadline:
                continue  # acked, or superseded by a later retransmit
            if tracked.attempts >= rel.max_retries:
                del self._unacked[msg_id]
                self.note_pending(-1)
                rec = self.stats.messages[msg_id]
                self.stats.record_delivery_failure(
                    DeliveryFailure(
                        msg_id=msg_id,
                        src=rec.src,
                        dst=rec.dst,
                        attempts=tracked.attempts + 1,
                        cycle=cycle,
                        reason="retransmit budget exhausted",
                    )
                )
                work += 1
                continue
            tracked.attempts += 1
            tracked.timeout = min(tracked.timeout * rel.backoff, rel.max_timeout)
            tracked.deadline = cycle + tracked.timeout
            heapq.heappush(timeouts, (tracked.deadline, msg_id))
            self.stats.bump("reliability.retransmits")
            if self.log is not None:
                self.log.emit(cycle, EventKind.RETRANSMIT, self.node, msg_id,
                              attempt=tracked.attempts,
                              timeout=tracked.timeout)
            work += 1
            assert self.engine is not None
            self.engine.on_message(tracked.message, cycle)
        return work

    # -- per-cycle -------------------------------------------------------------

    def pre_cycle(self, cycle: int) -> int:
        """Engine hook, reliability timers, injection pumping.

        Returns units of work done (flits injected plus reliability
        actions).  Deregisters from the active set once nothing can
        happen next cycle: no pending acks/retransmits, no engine cycle
        work, and any injection backlog blocked on router buffer space
        (the router wakes this NI when space frees).  Idempotent, so
        the O(N) reference loop may keep calling it on idle or blocked
        NIs with no observable difference.
        """
        hook = self._engine_on_cycle
        if hook is not None:
            hook(cycle)
        work = 0
        if self.reliability is not None:
            work += self._reliability_cycle(cycle)
        work += self._pump_injection(cycle)
        if self.tracker is not None and not self._step_work_remains():
            self.tracker.active_nis.discard(self.node)
        return work

    # -- delivery ---------------------------------------------------------------

    def on_flit_delivered(self, flit: Flit, cycle: int) -> None:
        """Ejection callback from the S0 router."""
        self.flits_delivered += 1
        if flit.dst != self.node:
            raise ProtocolError(
                f"flit for node {flit.dst} ejected at node {self.node}"
            )
        if flit.is_tail:
            rec = self.stats.messages[flit.msg_id]
            if rec.delivered >= 0:
                # A retransmitted copy of an already-delivered message is
                # normal under the reliability layer (e.g. the original
                # ack raced a timeout); without it, double delivery is a
                # protocol bug.
                if self.reliability is not None:
                    self.stats.bump("reliability.duplicates_suppressed")
                    return
                raise ProtocolError(f"message {flit.msg_id} delivered twice")
            self.stats.mark_delivered(flit.msg_id, cycle)
            self.messages_delivered += 1
            self._ack_delivery(rec, cycle)

    def on_circuit_delivery(self, msg: "Message", cycle: int) -> None:
        """A wave transfer's last flit arrived here."""
        if msg.dst != self.node:
            raise ProtocolError(
                f"circuit message for node {msg.dst} delivered at {self.node}"
            )
        rec = self.stats.messages[msg.msg_id]
        if rec.delivered >= 0:
            if self.reliability is not None:
                self.stats.bump("reliability.duplicates_suppressed")
                return
            raise ProtocolError(f"message {msg.msg_id} delivered twice")
        self.stats.mark_delivered(msg.msg_id, cycle)
        self.messages_delivered += 1
        self._ack_delivery(rec, cycle)

    # -- introspection -----------------------------------------------------------

    def pending_wormhole_flits(self) -> int:
        return sum(p.remaining for q in self._queues for p in q)

    def pending_engine_messages(self) -> int:
        return self.engine.pending_count() if self.engine is not None else 0

    def is_idle(self) -> bool:
        return (
            self.pending_wormhole_flits() == 0
            and self.pending_engine_messages() == 0
            and not self.recovery_pending()
        )
