"""The hybrid wave router of Fig. 2, as a structural composition.

A wave router bundles, per node:

* switch **S0** with its wormhole routing control unit -- our
  :class:`~repro.wormhole.router.WormholeRouter`;
* switches **S1..Sk** implementing circuit switching with wave pipelining
  -- represented by the reserved-channel state of the node's
  :class:`~repro.circuits.pcs_unit.PCSControlUnit` (a circuit-switched
  crossbar holds no flits, so its entire observable state *is* which
  input maps to which output);
* the **PCS routing control unit** -- the same
  :class:`~repro.circuits.pcs_unit.PCSControlUnit`, which owns the
  control channels, status registers and History Store.

Each physical channel of S0 is split into ``k + w`` virtual channels:
``k`` single-flit control channels (handled by the PCS unit) plus ``w``
wormhole data channels (handled by the wormhole unit) -- this class
exposes that accounting, which test F2 checks against the figure.
"""

from __future__ import annotations

from repro.circuits.pcs_unit import PCSControlUnit
from repro.wormhole.router import WormholeRouter


class WaveRouter:
    """One node's complete router: S0 plus the wave-switched side."""

    def __init__(self, wormhole: WormholeRouter, pcs: PCSControlUnit) -> None:
        if wormhole.node != pcs.node:
            raise ValueError(
                f"mismatched composition: S0 at node {wormhole.node}, "
                f"PCS unit at node {pcs.node}"
            )
        self.node = wormhole.node
        self.wormhole = wormhole
        self.pcs = pcs

    @property
    def num_wave_switches(self) -> int:
        """The paper's ``k``: wave-pipelined switches S1..Sk."""
        return self.pcs.num_switches

    @property
    def num_wormhole_vcs(self) -> int:
        """The paper's ``w``: virtual channels handled by S0."""
        return self.wormhole.config.vcs

    @property
    def virtual_channels_per_physical_channel(self) -> int:
        """Fig. 2: each S0 physical channel splits into ``k + w`` VCs
        (``k`` control channels + ``w`` wormhole channels)."""
        return self.num_wave_switches + self.num_wormhole_vcs

    def circuit_switch_state(self, switch: int) -> dict[tuple[int, int], tuple[int, int]]:
        """Input->output mapping currently configured in switch ``Si``.

        A wave-pipelined crossbar is stateless except for its configured
        connections; this reconstructs them from the Direct Channel
        Mappings restricted to ``switch``.
        """
        return {
            in_key: out_key
            for in_key, out_key in self.pcs.direct_map.items()
            if in_key[1] == switch
        }
