"""CLRP: the Cache-Like Routing Protocol (section 3.1 of the paper).

The network is handled as a cache of circuits.  On a message to a
destination with no cached circuit, the source establishes one in up to
three phases:

1. **Force clear** -- a probe with the Force bit reset searches each wave
   switch in turn (starting from the node's Initial Switch and cycling
   modulo ``k``), backtracking off busy channels (MB-m);
2. **Force set** -- the probe is re-sent with the Force bit set: blocked
   channels held by *established* circuits trigger a victim teardown
   (local circuits torn down directly, crossing circuits released via a
   control flit to their source); channels held by circuits *being
   established* still force a backtrack;
3. **Wormhole fallback** -- the message is simply sent through S0.

Messages arriving while a circuit exists ride it (circuit hits).  Cache
capacity pressure evicts a victim chosen by the replacement algorithm.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.circuits.circuit import Circuit
from repro.circuits.probe import Probe
from repro.core.base import CircuitEngineBase
from repro.core.circuit_cache import CacheEntryState, CircuitCacheEntry
from repro.errors import ProtocolError
from repro.sim.config import SwitchingMode
from repro.sim.events import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.message import Message


class CLRPEngine(CircuitEngineBase):
    """Per-node CLRP state machine."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Messages whose destination needs a cache slot that is being
        # freed by an eviction in flight.
        self._waiting_for_slot: deque["Message"] = deque()
        self.variant = self.plane.config.clrp_variant

    # -- section 3.1's simplification menu ---------------------------------

    def _phase1_switch_budget(self) -> int:
        """Switches phase 1 sweeps before setting the Force bit."""
        if self.variant in ("eager_force", "single_switch"):
            return 1
        return self.num_switches

    def _phase2_switch_budget(self) -> int:
        """Switches phase 2 sweeps before falling back to wormhole."""
        if self.variant == "single_switch":
            return 1
        return self.num_switches

    # -- message admission ----------------------------------------------

    def on_message(self, msg: "Message", cycle: int) -> None:
        entry = self.cache.lookup(msg.dst)
        if entry is not None:
            self._queue_message(entry, msg)
            self.stats.bump("clrp.lookup_hit")
            if entry.state is CacheEntryState.ESTABLISHED:
                self._try_start_transfer(entry, cycle)
            # SETTING_UP: the message flows once the ack returns.
            # RELEASING: circuit_released() re-opens for the queue.
            return
        self.stats.bump("clrp.lookup_miss")
        self._miss(msg, cycle)

    def _miss(self, msg: "Message", cycle: int) -> None:
        if not self.cache.full:
            self._open_entry(msg, cycle)
            return
        victim = self.cache.pick_victim(cycle)
        if victim is not None:
            if self.log is not None:
                self.log.emit(cycle, EventKind.CACHE_EVICT, self.node,
                              victim.dest, for_dest=msg.dst)
            self.stats.bump("clrp.cache_evictions")
            self._waiting_for_slot.append(msg)
            self._note_pending(1)
            self._release_entry(victim, cycle)
            return
        # Every entry is busy (in use, queued or setting up): nothing can
        # be evicted without waiting, so this message takes S0 instead of
        # stalling behind an unbounded eviction chain.
        self.stats.bump("clrp.cache_full_fallback")
        self._send_wormhole(msg, SwitchingMode.WORMHOLE_FALLBACK, cycle)

    def _open_entry(self, msg: "Message", cycle: int) -> None:
        switch = self.initial_switch()
        entry = CircuitCacheEntry(
            dest=msg.dst,
            initial_switch=switch,
            switch=switch,
            setup_started=cycle,
            created_at=cycle,
            trigger_msg_id=msg.msg_id,
        )
        self._queue_message(entry, msg)
        entry.phase = self._fresh_setup_phase()
        entry.forced = entry.phase >= 2  # "immediate_force" skips phase 1
        # The probe launched below is the first switch this phase sweeps:
        # the same accounting as the phase-2 restart in probe_failed, so
        # every phase probes exactly its budget's worth of switches.
        entry.switches_tried = 1
        self.cache.insert(entry)
        self.plane.launch_probe(
            self.node, msg.dst, switch, force=entry.phase == 2, cycle=cycle
        )

    # -- establishment phases ------------------------------------------------

    def probe_failed(self, probe: Probe, circuit: Circuit, cycle: int) -> None:
        entry = self.cache.lookup(circuit.dst)
        if entry is None or entry.state is not CacheEntryState.SETTING_UP:
            raise ProtocolError(
                f"node {self.node}: probe failure for dest {circuit.dst} "
                "without a setting-up cache entry"
            )
        budget = (
            self._phase1_switch_budget()
            if entry.phase == 1
            else self._phase2_switch_budget()
        )
        if entry.switches_tried > budget:
            raise ProtocolError(
                f"node {self.node}: dest {entry.dest} phase {entry.phase} "
                f"swept {entry.switches_tried} switches, budget is {budget} "
                f"(variant {self.variant!r})"
            )
        if entry.switches_tried < budget:
            # Try the next switch modulo k; Initial Switch guarantees we
            # stop after one full cycle.  The Force bit comes from the
            # entry's phase, not the failed probe: a fault-aborted attempt
            # reports through a synthetic unforced probe.
            entry.switch = (entry.switch + 1) % self.num_switches
            entry.switches_tried += 1
            self.plane.launch_probe(
                self.node, entry.dest, entry.switch, force=entry.phase >= 2,
                cycle=cycle
            )
            return
        if entry.phase == 1:
            # Phase 2: Force bit set, restart from the Initial Switch.
            entry.phase = 2
            entry.forced = True
            entry.switch = entry.initial_switch
            entry.switches_tried = 1
            if self.log is not None:
                self.log.emit(cycle, EventKind.PHASE_CHANGE, self.node,
                              entry.dest, phase=2)
            self.stats.bump("clrp.phase2_entered")
            self.plane.launch_probe(
                self.node, entry.dest, entry.switch, force=True, cycle=cycle
            )
            return
        # Phase 3: wormhole fallback for everything queued.
        if self.log is not None:
            self.log.emit(cycle, EventKind.PHASE_CHANGE, self.node,
                          entry.dest, phase=3)
        self.stats.bump("clrp.phase3_fallbacks")
        while entry.queue:
            queued = self._pop_queued(entry)
            self._send_wormhole(queued, SwitchingMode.WORMHOLE_FALLBACK, cycle)
        self.cache.remove(entry.dest)
        self._on_slot_freed(cycle)

    def _fresh_setup_phase(self) -> int:
        return 2 if self.variant == "immediate_force" else 1

    # -- slot recycling ------------------------------------------------------

    def _reopen_entry(self, entry: CircuitCacheEntry, cycle: int) -> None:
        super()._reopen_entry(entry, cycle)
        # The teardown this engine triggered to free a slot was overtaken
        # by new traffic to the victim's destination: the slot is gone.
        # Re-dispatch the waiting messages -- _miss will pick another
        # victim or fall back to wormhole, so nobody waits on a slot that
        # will never free.
        if self._waiting_for_slot:
            self._redispatch_waiting(cycle)

    def _redispatch_waiting(self, cycle: int) -> None:
        waiting = list(self._waiting_for_slot)
        self._waiting_for_slot.clear()
        self._note_pending(-len(waiting))
        for msg in waiting:
            entry = self.cache.lookup(msg.dst)
            if entry is not None:
                self._queue_message(entry, msg)
                if entry.state is CacheEntryState.ESTABLISHED:
                    self._try_start_transfer(entry, cycle)
            elif not self.cache.full:
                self._open_entry(msg, cycle)
            else:
                self._miss(msg, cycle)

    def _on_slot_freed(self, cycle: int) -> None:
        self._redispatch_waiting(cycle)

    def pending_count(self) -> int:
        return super().pending_count() + len(self._waiting_for_slot)
