"""The paper's contribution: CLRP and CARP on top of the wave substrate.

* :mod:`repro.core.circuit_cache` -- the Circuit Cache registers (Fig. 5)
  kept in every node's network interface.
* :mod:`repro.core.replacement` -- replacement algorithms for the cache
  (the paper leaves the policy open; we provide LRU, LFU, FIFO, random).
* :mod:`repro.core.clrp` -- the Cache-Like Routing Protocol (section 3.1):
  the network handled as a cache of circuits, with the three-phase
  Force-bit establishment procedure.
* :mod:`repro.core.carp` -- the Compiler Aided Routing Protocol (section
  3.2): explicit open/close directives.
* :mod:`repro.core.baseline` -- the wormhole-only engine used as the
  comparison baseline in every benchmark.
* :mod:`repro.core.wave_router` -- the hybrid router of Fig. 2 as a
  structural composition (S0 + S1..Sk + both routing control units).
"""

from repro.core.baseline import WormholeOnlyEngine
from repro.core.carp import CARPEngine, CircuitClose, CircuitOpen, Directive
from repro.core.circuit_cache import CacheEntryState, CircuitCache, CircuitCacheEntry
from repro.core.clrp import CLRPEngine
from repro.core.replacement import (
    FIFOReplacement,
    LFUReplacement,
    LRUReplacement,
    RandomReplacement,
    ReplacementPolicy,
    make_replacement,
)
from repro.core.wave_router import WaveRouter

__all__ = [
    "CARPEngine",
    "CLRPEngine",
    "CacheEntryState",
    "CircuitCache",
    "CircuitCacheEntry",
    "CircuitClose",
    "CircuitOpen",
    "Directive",
    "FIFOReplacement",
    "LFUReplacement",
    "LRUReplacement",
    "RandomReplacement",
    "ReplacementPolicy",
    "WaveRouter",
    "WormholeOnlyEngine",
    "make_replacement",
]
