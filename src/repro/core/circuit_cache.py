"""The Circuit Cache registers (Fig. 5), one per network interface.

Each entry records, exactly as the paper lists them:

* **Initial Switch** -- the first wave switch tried, so a retrying probe
  never searches the same switch twice;
* **Switch** -- the switch currently being searched / in use;
* **Channel** -- the output channel used at the source node;
* **Dest** -- the destination node of the circuit;
* **Ack Returned** -- the circuit is ready to be used;
* **In-use** -- a message is in transit (protects against teardown);
* **Replace** -- accounting for the replacement algorithm (here
  ``last_used`` / ``use_count`` / ``created_at``, covering LRU, LFU and
  FIFO).

On top of the registers the entry carries the simulation-side state the
CLRP/CARP engines drive: the establishment phase, queued messages, and
pending-release flags.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Sequence

from repro.errors import ProtocolError
from repro.core.replacement import ReplacementPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.circuits.circuit import Circuit
    from repro.network.message import Message


class CacheEntryState(Enum):
    SETTING_UP = "setting_up"
    ESTABLISHED = "established"
    RELEASING = "releasing"


@dataclass
class CircuitCacheEntry:
    """One Circuit Cache register set (Fig. 5) plus engine state."""

    dest: int
    initial_switch: int
    switch: int
    state: CacheEntryState = CacheEntryState.SETTING_UP
    circuit: "Circuit | None" = None
    # Engine bookkeeping.
    phase: int = 1  # CLRP phase (1/2) or CARP sweep count
    forced: bool = False  # establishment used a Force-bit probe (CLRP ph. 2)
    switches_tried: int = 1
    setup_started: int = 0
    pending_release: bool = False
    queue: deque = field(default_factory=deque)  # Messages awaiting the circuit
    # The message whose arrival triggered this establishment (for per-
    # message mode accounting: it is *not* a cache hit).
    trigger_msg_id: int = -1
    # Replace field accounting.
    created_at: int = 0
    last_used: int = 0
    use_count: int = 0
    # End-point message buffers (section 2), used when the WaveConfig has
    # model_buffers on: current allocation and when a re-allocation in
    # progress completes.
    buffer_flits: int = 0
    buffer_ready_at: int = 0

    # -- Fig. 5 register views -------------------------------------------

    @property
    def ack_returned(self) -> bool:
        """The Ack Returned bit: circuit confirmed usable."""
        return self.state is CacheEntryState.ESTABLISHED

    @property
    def in_use(self) -> bool:
        """The In-use bit, mirrored from the circuit."""
        return self.circuit is not None and self.circuit.in_use

    @property
    def channel(self) -> int | None:
        """The Channel field: output port used at the source node."""
        if self.circuit is None or not self.circuit.path:
            return None
        return self.circuit.path[0][1]

    def evictable(self) -> bool:
        """May the replacement algorithm victimise this entry right now?

        Only an established, idle, queue-free circuit can be torn down
        without violating the In-use protection or abandoning a setup in
        flight.
        """
        return (
            self.state is CacheEntryState.ESTABLISHED
            and not self.in_use
            and not self.queue
            and not self.pending_release
        )


class CircuitCache:
    """Fixed-capacity map ``dest -> CircuitCacheEntry`` with replacement.

    The cache never holds two entries for the same destination: the paper
    establishes (at most) one circuit per communicating pair per source.
    """

    def __init__(self, capacity: int, policy: ReplacementPolicy) -> None:
        if capacity < 1:
            raise ProtocolError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.policy = policy
        self.entries: dict[int, CircuitCacheEntry] = {}
        # circuit_id -> entry, kept consistent through insert/remove and
        # the bind/unbind lifecycle so control-flit events resolve their
        # cache entry in O(1) instead of scanning every entry.
        self._by_circuit: dict[int, CircuitCacheEntry] = {}

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def lookup(self, dest: int) -> CircuitCacheEntry | None:
        return self.entries.get(dest)

    def insert(self, entry: CircuitCacheEntry) -> None:
        if entry.dest in self.entries:
            raise ProtocolError(f"duplicate cache entry for dest {entry.dest}")
        if self.full:
            raise ProtocolError("cache full; evict before inserting")
        self.entries[entry.dest] = entry
        if entry.circuit is not None:
            self._by_circuit[entry.circuit.circuit_id] = entry

    def remove(self, dest: int) -> CircuitCacheEntry:
        try:
            entry = self.entries.pop(dest)
        except KeyError:
            raise ProtocolError(f"no cache entry for dest {dest}") from None
        if entry.circuit is not None:
            self._by_circuit.pop(entry.circuit.circuit_id, None)
        return entry

    def bind_circuit(self, entry: CircuitCacheEntry, circuit: "Circuit") -> None:
        """Attach an established circuit to ``entry``, indexing it by id."""
        if entry.circuit is not None:
            self._by_circuit.pop(entry.circuit.circuit_id, None)
        entry.circuit = circuit
        self._by_circuit[circuit.circuit_id] = entry

    def unbind_circuit(self, entry: CircuitCacheEntry) -> None:
        """Detach ``entry``'s circuit (released or being re-opened)."""
        if entry.circuit is not None:
            self._by_circuit.pop(entry.circuit.circuit_id, None)
            entry.circuit = None

    def evictable_entries(self) -> list[CircuitCacheEntry]:
        return [e for e in self.entries.values() if e.evictable()]

    def pick_victim(self, cycle: int) -> CircuitCacheEntry | None:
        """Replacement decision; None when nothing can be evicted."""
        candidates = self.evictable_entries()
        if not candidates:
            return None
        return self.policy.select_victim(candidates, cycle)

    def note_use(self, entry: CircuitCacheEntry, cycle: int) -> None:
        self.policy.on_use(entry, cycle)

    def pending_messages(self) -> int:
        """Messages queued across all entries (for idleness checks)."""
        return sum(len(e.queue) for e in self.entries.values())

    def find_by_circuit(self, circuit_id: int) -> CircuitCacheEntry | None:
        return self._by_circuit.get(circuit_id)
