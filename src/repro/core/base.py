"""Shared machinery of the per-node protocol engines.

:class:`ProtocolEngine` is the interface the network interface and wave
plane drive; :class:`CircuitEngineBase` adds the circuit lifecycle shared
by CLRP and CARP: starting transfers when a circuit is free, serialising
messages on the In-use bit, honouring release requests after the current
message only (as the deadlock proof requires), and re-opening circuits
for messages left queued by a victim teardown.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.circuits.circuit import Circuit, CircuitState
from repro.circuits.plane import WavePlane
from repro.circuits.probe import Probe
from repro.circuits.wave import WaveTransfer
from repro.core.circuit_cache import CacheEntryState, CircuitCache, CircuitCacheEntry
from repro.errors import ProtocolError
from repro.sim.config import SwitchingMode
from repro.sim.events import EventKind, EventLog
from repro.sim.stats import StatsCollector
from repro.topology.base import Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.interface import NetworkInterface
    from repro.network.message import Message


class ProtocolEngine:
    """Interface every switching protocol implements at each node."""

    def __init__(
        self,
        node: int,
        interface: "NetworkInterface",
        stats: StatsCollector,
        topology: Topology,
    ) -> None:
        self.node = node
        self.interface = interface
        self.stats = stats
        self.topology = topology
        # Optional protocol event trace, shared with the wave plane.
        self.log: EventLog | None = None

    # -- driven by the network interface ---------------------------------

    def on_message(self, msg: "Message", cycle: int) -> None:
        raise NotImplementedError

    def on_directive(self, directive, cycle: int) -> None:
        raise ProtocolError(
            f"{type(self).__name__} does not accept directives "
            "(only CARP is compiler-aided)"
        )

    def on_cycle(self, cycle: int) -> None:
        """Per-cycle hook; most engines need none."""

    def needs_cycle(self) -> bool:
        """True while :meth:`on_cycle` has work, so the owning NI knows to
        stay in the network's active set (active-set stepping)."""
        return False

    def pending_count(self) -> int:
        """Messages held by this engine awaiting a circuit."""
        return 0

    # -- driven by the wave plane (no-ops for the wormhole baseline) ------

    def circuit_established(self, circuit: Circuit, cycle: int) -> None:
        raise ProtocolError(f"{type(self).__name__} owns no circuits")

    def probe_failed(self, probe: Probe, circuit: Circuit, cycle: int) -> None:
        raise ProtocolError(f"{type(self).__name__} owns no probes")

    def release_requested(self, circuit: Circuit, cycle: int) -> None:
        raise ProtocolError(f"{type(self).__name__} owns no circuits")

    def circuit_released(self, circuit: Circuit, cycle: int) -> None:
        raise ProtocolError(f"{type(self).__name__} owns no circuits")

    def transfer_completed(self, transfer: WaveTransfer, cycle: int) -> None:
        raise ProtocolError(f"{type(self).__name__} owns no transfers")

    def circuit_fault(self, circuit: Circuit, cycle: int) -> None:
        raise ProtocolError(f"{type(self).__name__} owns no circuits")


class CircuitEngineBase(ProtocolEngine):
    """Circuit lifecycle common to CLRP and CARP."""

    def __init__(
        self,
        node: int,
        interface: "NetworkInterface",
        stats: StatsCollector,
        topology: Topology,
        plane: WavePlane,
        cache: CircuitCache,
    ) -> None:
        super().__init__(node, interface, stats, topology)
        self.plane = plane
        self.cache = cache
        self.num_switches = plane.config.num_switches
        # Entries whose next transfer waits on a buffer re-allocation.
        self._buffer_waits: dict[int, CircuitCacheEntry] = {}

    # -- helpers -----------------------------------------------------------

    def _note_pending(self, delta: int) -> None:
        """Report a change in engine-held message count to the network's
        idleness counters (via the owning NI)."""
        self.interface.note_pending(delta)

    def _queue_message(self, entry: CircuitCacheEntry, msg: "Message") -> None:
        """Park ``msg`` on ``entry`` until its circuit can carry it."""
        entry.queue.append(msg)
        self._note_pending(1)

    def _pop_queued(self, entry: CircuitCacheEntry) -> "Message":
        """Take the next message off ``entry``'s queue."""
        msg = entry.queue.popleft()
        self._note_pending(-1)
        return msg

    def initial_switch(self) -> int:
        """The paper's suggestion generalised: neighbouring nodes start on
        different switches, e.g. ``1 + (x + y) mod k`` on a 2D mesh."""
        return self.topology.switch_offset(self.node) % self.num_switches

    def _record(self, msg: "Message"):
        return self.stats.messages[msg.msg_id]

    def _entry_for(self, circuit: Circuit) -> CircuitCacheEntry | None:
        entry = self.cache.lookup(circuit.dst)
        if entry is None:
            return None
        # Only match if the entry really tracks this circuit attempt (a
        # newer attempt to the same dest would have a different circuit).
        if entry.circuit is not None and entry.circuit is not circuit:
            return None
        return entry

    def _fallback_mode(self) -> SwitchingMode:
        return SwitchingMode.WORMHOLE_FALLBACK

    def _send_wormhole(self, msg: "Message", mode: SwitchingMode, cycle: int) -> None:
        self.interface.send_wormhole(msg, mode, cycle)

    def _circuit_message_mode(
        self, entry: CircuitCacheEntry, msg: "Message"
    ) -> SwitchingMode:
        """Per-message accounting of how the circuit was obtained."""
        if msg.msg_id != entry.trigger_msg_id:
            return SwitchingMode.CIRCUIT_HIT
        if entry.forced:
            return SwitchingMode.CIRCUIT_FORCED
        return SwitchingMode.CIRCUIT_NEW

    def _try_start_transfer(self, entry: CircuitCacheEntry, cycle: int) -> None:
        if (
            entry.state is not CacheEntryState.ESTABLISHED
            or entry.circuit is None
            or entry.circuit.in_use
            or not entry.queue
        ):
            return
        if self.plane.config.model_buffers and not self._buffers_ready(
            entry, cycle
        ):
            return
        msg: "Message" = self._pop_queued(entry)
        transfer = self.plane.start_transfer(entry.circuit, msg, cycle)
        self.cache.note_use(entry, cycle)
        rec = self._record(msg)
        rec.injected = cycle
        rec.hops = entry.circuit.length
        rec.mode = self._circuit_message_mode(entry, msg)
        self.stats.bump(f"mode.{rec.mode.value}")
        del transfer  # tracked by the plane

    def _buffers_ready(self, entry: CircuitCacheEntry, cycle: int) -> bool:
        """Section 2's end-point buffer discipline.

        The buffers allocated when the circuit was established are reused
        by every message; a message longer than the current allocation
        forces a re-allocation costing ``buffer_realloc_penalty`` cycles
        of messaging-layer work before the transfer can start.
        """
        if cycle < entry.buffer_ready_at:
            self._buffer_waits[entry.dest] = entry
            self.interface.request_cycle()
            return False
        head: "Message" = entry.queue[0]
        if head.length > entry.buffer_flits:
            entry.buffer_flits = head.length
            if self.log is not None:
                self.log.emit(cycle, EventKind.BUFFER_REALLOC, self.node,
                              entry.dest, flits=head.length)
            self.stats.bump("circuit.buffer_reallocs")
            penalty = self.plane.config.buffer_realloc_penalty
            if penalty == 0:
                return True
            entry.buffer_ready_at = cycle + penalty
            self._buffer_waits[entry.dest] = entry
            self.interface.request_cycle()
            return False
        return True

    def needs_cycle(self) -> bool:
        return bool(self._buffer_waits)

    def on_cycle(self, cycle: int) -> None:
        if not self._buffer_waits:
            return
        due = [
            dest
            for dest, entry in self._buffer_waits.items()
            if cycle >= entry.buffer_ready_at
        ]
        for dest in due:
            entry = self._buffer_waits.pop(dest)
            if self.cache.lookup(dest) is entry:
                self._try_start_transfer(entry, cycle)

    def _release_entry(self, entry: CircuitCacheEntry, cycle: int) -> None:
        if entry.circuit is None or entry.state is not CacheEntryState.ESTABLISHED:
            raise ProtocolError(
                f"node {self.node}: cannot release entry for dest "
                f"{entry.dest} in state {entry.state.value}"
            )
        entry.state = CacheEntryState.RELEASING
        entry.pending_release = False
        self.plane.start_teardown(entry.circuit, cycle)

    # -- wave plane callbacks ------------------------------------------------

    def circuit_established(self, circuit: Circuit, cycle: int) -> None:
        entry = self.cache.lookup(circuit.dst)
        if entry is None or entry.state is not CacheEntryState.SETTING_UP:
            # Nobody wants this circuit any more; tear it straight down.
            self.plane.start_teardown(circuit, cycle)
            self.stats.bump("circuit.orphan_teardowns")
            return
        self.cache.bind_circuit(entry, circuit)
        entry.state = CacheEntryState.ESTABLISHED
        entry.created_at = cycle
        entry.last_used = cycle
        if self.plane.config.model_buffers and entry.buffer_flits == 0:
            # "A reasonably large buffer can be allocated" -- CLRP does
            # not know the longest message yet; CARP pre-sizes from its
            # directive and never reaches this default.
            entry.buffer_flits = self.plane.config.default_buffer_flits
        if entry.trigger_msg_id >= 0:
            rec = self.stats.messages.get(entry.trigger_msg_id)
            if rec is not None:
                rec.setup_cycles = cycle - entry.setup_started
        self.stats.bump(
            "circuit.established_forced" if entry.forced else
            "circuit.established_free"
        )
        self._try_start_transfer(entry, cycle)
        if entry.pending_release and not entry.in_use and not entry.queue:
            self._release_entry(entry, cycle)

    def release_requested(self, circuit: Circuit, cycle: int) -> None:
        if circuit.state is CircuitState.SETTING_UP:
            # The request overtook the establishment callback (possible
            # only under exotic timing); honour it once the ack lands.
            entry = self.cache.lookup(circuit.dst)
            if entry is not None and entry.state is CacheEntryState.SETTING_UP:
                entry.pending_release = True
            return
        if circuit.state is not CircuitState.ESTABLISHED:
            return  # already releasing or dead: duplicate request, ignore
        entry = self._entry_for(circuit)
        if entry is None:
            # Circuit no longer tracked (shouldn't happen, but releasing is
            # always safe if it's idle).
            if not circuit.in_use:
                self.plane.start_teardown(circuit, cycle)
            return
        if entry.state is CacheEntryState.RELEASING:
            return
        if entry.in_use:
            # Tear down right after the message in transit completes --
            # exactly the In-use discipline of the proof.  Messages still
            # queued will re-open a circuit afterwards.
            entry.pending_release = True
            self.stats.bump("clrp.release_deferred_in_use")
        else:
            self._release_entry(entry, cycle)

    def transfer_completed(self, transfer: WaveTransfer, cycle: int) -> None:
        circuit = transfer.circuit
        entry = self._entry_for(circuit)
        if entry is None:
            if circuit.state is CircuitState.ESTABLISHED and not circuit.in_use:
                self.plane.start_teardown(circuit, cycle)
            return
        if entry.pending_release:
            self._release_entry(entry, cycle)
            return
        self._try_start_transfer(entry, cycle)

    def circuit_released(self, circuit: Circuit, cycle: int) -> None:
        entry = self.cache.lookup(circuit.dst)
        if entry is None or entry.circuit is not circuit:
            return
        self.cache.unbind_circuit(entry)
        if entry.queue:
            self._reopen_entry(entry, cycle)
        else:
            self.cache.remove(entry.dest)
            self._on_slot_freed(cycle)

    def circuit_fault(self, circuit: Circuit, cycle: int) -> None:
        """A dead link severed this circuit; the plane is tearing it
        down.  Invalidate the cache entry so no new transfer starts; when
        the teardown completes, ``circuit_released`` re-opens (around the
        fault) for any messages still queued, or frees the slot."""
        entry = self._entry_for(circuit)
        if entry is None or entry.state is not CacheEntryState.ESTABLISHED:
            return
        entry.state = CacheEntryState.RELEASING
        entry.pending_release = False
        self._buffer_waits.pop(entry.dest, None)
        self.stats.bump("cache.fault_invalidations")

    # -- subclass hooks ---------------------------------------------------

    def _fresh_setup_phase(self) -> int:
        """Phase a brand-new establishment starts in (CLRP variants
        may skip phase 1 and probe with Force immediately)."""
        return 1

    def _reopen_entry(self, entry: CircuitCacheEntry, cycle: int) -> None:
        """A victimised circuit still had queued messages: set up afresh."""
        entry.state = CacheEntryState.SETTING_UP
        self.cache.unbind_circuit(entry)
        entry.phase = self._fresh_setup_phase()
        entry.forced = entry.phase >= 2
        entry.switch = entry.initial_switch
        entry.switches_tried = 1
        entry.setup_started = cycle
        entry.pending_release = False
        entry.trigger_msg_id = entry.queue[0].msg_id
        self.stats.bump("clrp.reopens")
        self.plane.launch_probe(
            self.node, entry.dest, entry.switch, force=entry.phase >= 2,
            cycle=cycle
        )

    def _on_slot_freed(self, cycle: int) -> None:
        """A cache slot became free; subclasses may admit waiting work."""

    def pending_count(self) -> int:
        return self.cache.pending_messages()
