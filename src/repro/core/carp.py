"""CARP: the Compiler Aided Routing Protocol (section 3.2 of the paper).

The compiler (or programmer) decides when a circuit is worth having and
emits explicit directives:

* :class:`CircuitOpen` -- establish a circuit to a destination *before*
  the messages need it (the paper's analogue of cache prefetching);
* :class:`CircuitClose` -- tear it down when the communication phase ends.

Probes carry the Force bit **clear** -- CARP never tears down other
circuits.  If a circuit cannot be established across any switch (after
``max_setup_retries`` full sweeps), the affected messages simply use
wormhole switching through S0, as do all messages the compiler never
asked a circuit for.

The "compiler" itself -- a static analyser that scans a workload's message
stream and emits directives -- lives in :mod:`repro.traffic.compiler`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from repro.circuits.circuit import Circuit
from repro.circuits.probe import Probe
from repro.core.base import CircuitEngineBase
from repro.core.circuit_cache import CacheEntryState, CircuitCacheEntry
from repro.errors import ProtocolError
from repro.sim.config import SwitchingMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.message import Message


@dataclass
class CircuitOpen:
    """Directive: establish a circuit ``node -> dst`` at cycle ``created``.

    ``buffer_flits`` carries the compiler's knowledge of the longest
    message of the set (section 2: "buffer size is determined by the
    longest message of the set"), so CARP end-point buffers never need
    re-allocation.
    """

    node: int
    dst: int
    created: int
    buffer_flits: int | None = None


@dataclass
class CircuitClose:
    """Directive: tear down the circuit ``node -> dst`` at cycle ``created``."""

    node: int
    dst: int
    created: int


Directive = Union[CircuitOpen, CircuitClose]


class CARPEngine(CircuitEngineBase):
    """Per-node CARP state machine."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.max_setup_retries = self.plane.config.max_setup_retries
        # (dst, buffer_flits) opens waiting for an eviction to finish.
        self._pending_opens: list[tuple[int, int | None]] = []

    # -- directives -------------------------------------------------------

    def on_directive(self, directive: Directive, cycle: int) -> None:
        if directive.node != self.node:
            raise ProtocolError(
                f"directive for node {directive.node} delivered to {self.node}"
            )
        if isinstance(directive, CircuitOpen):
            self._open(directive.dst, cycle, directive.buffer_flits)
        elif isinstance(directive, CircuitClose):
            self._close(directive.dst, cycle)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unknown directive {directive!r}")

    def _open(
        self, dst: int, cycle: int, buffer_flits: int | None = None
    ) -> None:
        if self.cache.lookup(dst) is not None:
            self.stats.bump("carp.open_already_present")
            return
        if self.cache.full:
            victim = self.cache.pick_victim(cycle)
            if victim is None:
                # Nothing evictable: drop the open; messages fall back to
                # wormhole, which is always available.
                self.stats.bump("carp.open_dropped_cache_full")
                return
            self.stats.bump("carp.open_evictions")
            self._release_entry(victim, cycle)
            # The slot frees when the teardown completes; remember to open.
            self._pending_opens.append((dst, buffer_flits))
            return
        switch = self.initial_switch()
        entry = CircuitCacheEntry(
            dest=dst,
            initial_switch=switch,
            switch=switch,
            setup_started=cycle,
            created_at=cycle,
        )
        if buffer_flits is not None:
            entry.buffer_flits = buffer_flits
        # sweeps_done counts full all-switches passes (CARP retry knob).
        entry.phase = 1
        self.cache.insert(entry)
        self.stats.bump("carp.opens")
        self.plane.launch_probe(self.node, dst, switch, force=False, cycle=cycle)

    def _close(self, dst: int, cycle: int) -> None:
        entry = self.cache.lookup(dst)
        if entry is None:
            self.stats.bump("carp.close_no_entry")
            return
        self.stats.bump("carp.closes")
        if entry.state is CacheEntryState.SETTING_UP:
            # Close overtook the setup; release as soon as it establishes.
            entry.pending_release = True
            return
        if entry.state is CacheEntryState.RELEASING:
            return
        if entry.in_use or entry.queue:
            entry.pending_release = True
        else:
            self._release_entry(entry, cycle)

    # -- messages ---------------------------------------------------------

    def on_message(self, msg: "Message", cycle: int) -> None:
        entry = self.cache.lookup(msg.dst)
        if entry is not None and entry.state is not CacheEntryState.RELEASING:
            self._queue_message(entry, msg)
            self.stats.bump("carp.circuit_sends")
            if entry.state is CacheEntryState.ESTABLISHED:
                self._try_start_transfer(entry, cycle)
            return
        if msg.circuit_hint:
            # The compiler expected a circuit but none is open (setup
            # failed, closed early, or the open was dropped).
            self.stats.bump("carp.hinted_fallback")
            self._send_wormhole(msg, SwitchingMode.WORMHOLE_FALLBACK, cycle)
        else:
            self._send_wormhole(msg, SwitchingMode.WORMHOLE, cycle)

    def _circuit_message_mode(
        self, entry: CircuitCacheEntry, msg: "Message"
    ) -> SwitchingMode:
        # Under CARP every circuit message rides a prefetched circuit; the
        # establishment was never triggered by a message.
        return SwitchingMode.CIRCUIT_HIT

    # -- establishment outcome ------------------------------------------------

    def probe_failed(self, probe: Probe, circuit: Circuit, cycle: int) -> None:
        entry = self.cache.lookup(circuit.dst)
        if entry is None or entry.state is not CacheEntryState.SETTING_UP:
            raise ProtocolError(
                f"node {self.node}: CARP probe failure for dest {circuit.dst} "
                "without a setting-up cache entry"
            )
        if entry.switches_tried < self.num_switches:
            entry.switch = (entry.switch + 1) % self.num_switches
            entry.switches_tried += 1
            self.plane.launch_probe(
                self.node, entry.dest, entry.switch, force=False, cycle=cycle
            )
            return
        if entry.phase < self.max_setup_retries:
            # Another full sweep over all switches.
            entry.phase += 1
            entry.switch = entry.initial_switch
            entry.switches_tried = 1
            self.stats.bump("carp.setup_retries")
            self.plane.launch_probe(
                self.node, entry.dest, entry.switch, force=False, cycle=cycle
            )
            return
        # Give up: queued messages use wormhole switching.
        self.stats.bump("carp.setup_failed")
        while entry.queue:
            queued = self._pop_queued(entry)
            self._send_wormhole(queued, SwitchingMode.WORMHOLE_FALLBACK, cycle)
        self.cache.remove(entry.dest)
        self._on_slot_freed(cycle)

    # -- slot recycling ---------------------------------------------------

    def _on_slot_freed(self, cycle: int) -> None:
        while self._pending_opens and not self.cache.full:
            dst, buffer_flits = self._pending_opens.pop(0)
            if self.cache.lookup(dst) is None:
                self._open(dst, cycle, buffer_flits)

    def _reopen_entry(self, entry: CircuitCacheEntry, cycle: int) -> None:
        # A CARP circuit with queued messages was torn down (eviction or a
        # close racing sends).  CARP does not chase circuits: the queued
        # messages take wormhole switching instead.
        while entry.queue:
            queued = self._pop_queued(entry)
            self._send_wormhole(queued, SwitchingMode.WORMHOLE_FALLBACK, cycle)
        self.cache.remove(entry.dest)
        self._on_slot_freed(cycle)
