"""The wormhole-only baseline engine.

Every message uses S0.  This is the machine the paper's companion work
compares wave switching against; every benchmark sweeps it alongside CLRP
and CARP.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.base import ProtocolEngine
from repro.sim.config import SwitchingMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.message import Message


class WormholeOnlyEngine(ProtocolEngine):
    """Sends everything through the wormhole subsystem."""

    def on_message(self, msg: "Message", cycle: int) -> None:
        self.interface.send_wormhole(msg, SwitchingMode.WORMHOLE, cycle)
