"""Replacement algorithms for the Circuit Cache.

The paper says only that "a replacement algorithm selects the circuit to
be torn down" and that the Replace field "stores accounting information
regarding the use of the circuit. The meaning of this field depends on the
replacement algorithm."  We provide the classic menu -- LRU, LFU, FIFO and
random -- and an ablation benchmark (E8) compares them.

A policy sees only a list of *evictable* cache entries (established, not
in use, nothing queued) and each entry's Replace accounting; it returns
the victim.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigError
from repro.sim.rng import SimRandom

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.circuit_cache import CircuitCacheEntry


class ReplacementPolicy(ABC):
    """Chooses a victim among evictable Circuit Cache entries."""

    name: str = "abstract"

    @abstractmethod
    def select_victim(
        self, entries: Sequence["CircuitCacheEntry"], cycle: int
    ) -> "CircuitCacheEntry":
        """Return the entry to evict.  ``entries`` is non-empty."""

    def on_use(self, entry: "CircuitCacheEntry", cycle: int) -> None:
        """Update the entry's Replace accounting on every circuit use."""
        entry.last_used = cycle
        entry.use_count += 1


class LRUReplacement(ReplacementPolicy):
    """Least recently used: evict the coldest circuit."""

    name = "lru"

    def select_victim(self, entries, cycle):
        return min(entries, key=lambda e: (e.last_used, e.dest))


class LFUReplacement(ReplacementPolicy):
    """Least frequently used: evict the least popular circuit.

    Ties break on recency (then dest for determinism), so a brand-new
    circuit is not immediately victimised over an equally-counted old one.
    """

    name = "lfu"

    def select_victim(self, entries, cycle):
        return min(entries, key=lambda e: (e.use_count, e.last_used, e.dest))


class FIFOReplacement(ReplacementPolicy):
    """First-in first-out: evict the oldest-established circuit."""

    name = "fifo"

    def select_victim(self, entries, cycle):
        return min(entries, key=lambda e: (e.created_at, e.dest))


class RandomReplacement(ReplacementPolicy):
    """Uniform random eviction (the zero-information baseline).

    The draw is made over candidates sorted by ``(created_at, dest)``,
    never over the caller's list order: the evictable list inherits
    cache-dict iteration order, a side effect of the cache's mutation
    history, and pinning the ordering keeps identical seeds evicting
    identical victims as the surrounding code evolves.
    """

    name = "random"

    def __init__(self, rng: SimRandom) -> None:
        self._stream = rng.stream("replacement")

    def select_victim(self, entries, cycle):
        ordered = sorted(entries, key=lambda e: (e.created_at, e.dest))
        return ordered[self._stream.randrange(len(ordered))]


def make_replacement(name: str, rng: SimRandom) -> ReplacementPolicy:
    """Build a policy from its configuration name."""
    if name == "lru":
        return LRUReplacement()
    if name == "lfu":
        return LFUReplacement()
    if name == "fifo":
        return FIFOReplacement()
    if name == "random":
        return RandomReplacement(rng)
    raise ConfigError(f"unknown replacement policy {name!r}")
