"""Property-based protocol fuzzing with failure shrinking.

The paper proves CLRP/CARP deadlock- and livelock-free; the curated test
suite spot-checks those theorems on hand-picked scenarios.  This module
explores the protocol state space mechanically:

* :func:`generate_spec` draws a randomized scenario -- topology, traffic
  pattern and load, protocol and variant, cache size, replacement
  policy, faults, seeds -- from a seeded :class:`~repro.sim.rng.SimRandom`
  stream, as a plain :class:`~repro.orchestrate.spec.JobSpec`.  Fuzz jobs
  are ordinary jobs, so the orchestration pool, result store and resume
  machinery all apply unchanged.

* :class:`InvariantHarness` rides the simulator's ``on_cycle`` hook and
  checks, every ``invariants_every`` cycles: the structural invariants
  (channel exclusivity, register/table consistency, credit sanity), the
  activity ledger (flit and pending-count conservation), cache-entry
  state-machine legality including per-phase switch budgets, probe/ack
  pairing against the circuit table, and the wait-graph deadlock
  detector.  At end of run it audits delivered-or-reported: every
  injected message must be delivered, dropped-with-reason, lost to a
  recorded fault, or a recorded delivery failure -- never silently gone.

* :func:`shrink` reduces a failing spec to a minimal reproducer by a
  greedy fixpoint over structural shrinking transformations (less
  traffic, smaller machine, fewer resources), accepting a candidate only
  when it fails with the *same* exception type.  The result is dumped as
  replayable JobSpec JSON (:func:`dump_reproducer` / :func:`load_spec`).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.circuit_cache import CacheEntryState
from repro.errors import ConfigError, ProtocolError, ReproError
from repro.orchestrate.pool import JobOutcome, run_jobs
from repro.orchestrate.runner import execute_job
from repro.orchestrate.spec import JobSpec, WorkloadRecipe
from repro.sim.config import NetworkConfig, WaveConfig, WormholeConfig
from repro.sim.rng import SimRandom
from repro.topology import build_topology
from repro.verify.deadlock import assert_no_deadlock
from repro.verify.invariants import check_all_invariants


# -- the per-cycle invariant harness -------------------------------------


class InvariantHarness:
    """Protocol-invariant oracle for fuzzed runs.

    Attach :meth:`on_cycle` to the simulator; call :meth:`finish` with
    the :class:`~repro.sim.engine.SimulationResult` after the run.  Every
    violation raises :class:`~repro.errors.ProtocolError` (or the
    detector's :class:`~repro.errors.DeadlockError`), which the pool
    reports as the job's failure.
    """

    def __init__(self, network, every: int = 1) -> None:
        if every < 1:
            raise ConfigError(f"harness cadence must be >= 1, got {every}")
        self.network = network
        self.every = every
        self.checks_run = 0

    # Each check is a method so failures name themselves in tracebacks.

    def on_cycle(self, net) -> None:
        if net.cycle % self.every:
            return
        check_all_invariants(net)
        net.activity.validate(net)
        self._check_cache_entries(net)
        self._check_probe_pairing(net)
        assert_no_deadlock(net)
        self.checks_run += 1

    def _check_cache_entries(self, net) -> None:
        """Cache-entry state machine: legal states, legal phase budgets."""
        for ni in net.interfaces:
            engine = getattr(ni, "engine", None)
            if engine is None or not hasattr(engine, "cache"):
                continue
            for entry in engine.cache.entries.values():
                if not isinstance(entry.state, CacheEntryState):
                    raise ProtocolError(
                        f"node {ni.node}: cache entry {entry.dest} in "
                        f"illegal state {entry.state!r}"
                    )
                if entry.phase not in (1, 2):
                    raise ProtocolError(
                        f"node {ni.node}: cache entry {entry.dest} in "
                        f"illegal phase {entry.phase}"
                    )
                if entry.switches_tried < 1:
                    raise ProtocolError(
                        f"node {ni.node}: cache entry {entry.dest} counts "
                        f"{entry.switches_tried} switches tried; the probe "
                        "in flight is always switch >= 1"
                    )
                if hasattr(engine, "_phase1_switch_budget"):
                    budget = (
                        engine._phase1_switch_budget()
                        if entry.phase == 1
                        else engine._phase2_switch_budget()
                    )
                    if entry.switches_tried > budget:
                        raise ProtocolError(
                            f"node {ni.node}: dest {entry.dest} phase "
                            f"{entry.phase} swept {entry.switches_tried} "
                            f"switches, budget is {budget}"
                        )

    def _check_probe_pairing(self, net) -> None:
        """Probes pair with setting-up circuits; counters balance."""
        plane = getattr(net, "plane", None)
        if plane is None:
            return
        for probe in plane.probes:
            circuit = plane.table.circuits.get(probe.circuit_id)
            if circuit is None:
                raise ProtocolError(
                    f"probe {probe.probe_id} references unknown circuit "
                    f"{probe.circuit_id}"
                )
            if circuit.state.value != "setting_up":
                raise ProtocolError(
                    f"probe {probe.probe_id} in flight for circuit "
                    f"{probe.circuit_id} in state {circuit.state.value}"
                )
        stats = net.stats
        resolved = stats.count("probe.succeeded") + stats.count("probe.failed")
        in_flight = stats.count("probe.launched") - resolved
        # Fault aborts of already-succeeded probes report through a ghost
        # probe.failed bump without a matching launch, so with dynamic
        # faults the identity weakens to an inequality.
        ghosts = stats.count("probe.fault_aborts")
        if not ghosts and len(plane.probes) != in_flight:
            raise ProtocolError(
                f"probe ledger: {len(plane.probes)} in flight but counters "
                f"say {in_flight} (launched - succeeded - failed)"
            )
        if ghosts and len(plane.probes) < in_flight:
            raise ProtocolError(
                f"probe ledger: {len(plane.probes)} in flight, counters "
                f"say >= {in_flight} even allowing {ghosts} fault aborts"
            )

    def finish(self, result) -> None:
        """End-of-run audit; call after the simulator returns.

        Accepts either a :class:`~repro.sim.engine.SimulationResult` or
        the :class:`~repro.analysis.experiments.ExperimentResult`
        wrapping one.
        """
        net = self.network
        sim = getattr(result, "sim", result)
        if sim.completed:
            self._check_delivered_or_reported(net)
            plane = getattr(net, "plane", None)
            if plane is not None and plane.probes:
                raise ProtocolError(
                    f"run drained with {len(plane.probes)} probes in flight"
                )
            pending = sum(
                ni.engine.pending_count()
                for ni in net.interfaces
                if getattr(ni, "engine", None) is not None
            )
            if pending:
                raise ProtocolError(
                    f"run drained with {pending} messages still pending "
                    "in protocol engines"
                )
        self.checks_run += 1

    def _check_delivered_or_reported(self, net) -> None:
        stats = net.stats
        lost = {rec.msg_id for rec in stats.losses}
        failed = {f.msg_id for f in stats.delivery_failures}
        for msg_id, rec in stats.messages.items():
            if rec.delivered >= 0:
                continue
            if msg_id in lost or msg_id in failed:
                continue
            mode = getattr(rec.mode, "value", None)
            if mode == "dropped":
                continue
            raise ProtocolError(
                f"message {msg_id} ({rec.src}->{rec.dst}, mode {mode}) "
                "neither delivered nor reported lost/failed/dropped"
            )


# -- scenario generation -------------------------------------------------

_TOPOLOGIES: tuple[tuple[str, tuple[int, ...]], ...] = (
    ("mesh", (4,)),
    ("mesh", (3, 3)),
    ("mesh", (4, 4)),
    ("torus", (4,)),
    ("torus", (3, 3)),
    ("torus", (4, 4)),
    ("hypercube", (2, 2, 2)),
    ("fullmesh", (6,)),
    ("fullmesh", (9,)),
    ("min", (2, 2, 2)),
    ("min", (3, 3)),
)
_PROTOCOLS = ("wormhole", "clrp", "clrp", "carp")  # weight towards CLRP
_VARIANTS = ("standard", "eager_force", "single_switch", "immediate_force")
_REPLACEMENTS = ("lru", "lfu", "fifo", "random")
_PATTERNS = ("uniform", "uniform", "neighbor", "hotspot")


def generate_spec(index: int, master_seed: int = 0) -> JobSpec:
    """Draw one randomized-but-valid scenario as a plain JobSpec.

    Scenario ``(master_seed, index)`` is fully deterministic: the spec --
    and therefore, by the spec determinism contract, its result -- never
    changes across runs, processes or machines.
    """
    rng = SimRandom(master_seed).stream(f"fuzz.{index}")
    topology, dims = _TOPOLOGIES[rng.randrange(len(_TOPOLOGIES))]
    protocol = _PROTOCOLS[rng.randrange(len(_PROTOCOLS))]

    routing = "adaptive" if rng.random() < 0.3 else "dor"
    classes = 2 if topology == "torus" else 1
    min_vcs = classes + 1 if routing == "adaptive" else classes
    wormhole = WormholeConfig(
        vcs=rng.randrange(min_vcs, min_vcs + 2),
        buffer_depth=rng.choice((1, 2, 4)),
        routing=routing,
        router_delay=rng.choice((0, 1)),
    )
    wave = None
    if protocol != "wormhole":
        wave = WaveConfig(
            num_switches=rng.randrange(1, 4),
            misroute_budget=rng.randrange(0, 3),
            circuit_cache_size=rng.randrange(1, 5),
            replacement=rng.choice(_REPLACEMENTS),
            clrp_variant=rng.choice(_VARIANTS),
        )
    fault_fraction = 0.0
    mtbf = mttr = 0
    # Static faults drop undeliverable DOR worms by design; keep them to
    # a minority of scenarios so most runs assert full delivery.
    if rng.random() < 0.15:
        fault_fraction = rng.choice((0.02, 0.05))
    elif rng.random() < 0.1:
        mtbf = rng.randrange(3_000, 12_000)
        mttr = rng.choice((0, 800))

    pattern = _PATTERNS[rng.randrange(len(_PATTERNS))]
    if topology == "min" and pattern == "neighbor":
        # A MIN terminal's only neighbour is a switch; keep the draw count
        # identical so other scenarios are unaffected.
        pattern = "uniform"
    workload = WorkloadRecipe.make(
        "uniform",
        pattern=pattern,
        load=round(rng.uniform(0.05, 0.55), 3),
        length=rng.choice((2, 8, 24, 48)),
        duration=rng.randrange(150, 900),
    )
    config = NetworkConfig(
        topology=topology,
        dims=dims,
        protocol=protocol,
        wormhole=wormhole,
        wave=wave,
        seed=rng.randrange(1 << 30),
    )
    return JobSpec(
        config=config,
        workload=workload,
        label=f"fuzz-{master_seed}-{index}",
        max_cycles=120_000,
        fault_fraction=fault_fraction,
        mtbf=mtbf,
        mttr=mttr,
        deadlock_check_interval=67,
        progress_timeout=40_000,
        invariants_every=rng.randrange(1, 5),
    )


# -- shrinking -----------------------------------------------------------


def failure_signature(spec: JobSpec) -> str | None:
    """Execute a spec in-process; the failing exception type or None."""
    try:
        execute_job(spec)
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        return type(exc).__name__
    return None


def signature_of_outcome(outcome: JobOutcome) -> str:
    """Exception type name from a pool failure record."""
    message = (outcome.failure or {}).get("message", "")
    return message.split(":", 1)[0].strip() or "UnknownFailure"


def _with_workload(spec: JobSpec, **updates) -> JobSpec | None:
    params = dict(spec.workload.as_dict())
    kind = params.pop("kind")
    params.update(updates)
    try:
        return dataclasses.replace(
            spec, workload=WorkloadRecipe.make(kind, **params)
        )
    except ReproError:
        return None


def _with_config(spec: JobSpec, **updates) -> JobSpec | None:
    # dataclasses.replace re-runs __post_init__, so an individually
    # sensible shrink (halve a radix, drop a dimension) can violate a
    # cross-field constraint and raise.  Candidate construction must be
    # total: a shrink rule that produces an invalid config yields
    # nothing instead of blowing up the whole shrink loop (the exception
    # would propagate through the generator, past shrink()'s per-
    # candidate guard, and lose the original reproducer).
    try:
        return dataclasses.replace(
            spec, config=dataclasses.replace(spec.config, **updates)
        )
    except ReproError:
        return None


def _with_wave(spec: JobSpec, **updates) -> JobSpec | None:
    if spec.config.wave is None:
        return spec
    try:
        return _with_config(
            spec, wave=dataclasses.replace(spec.config.wave, **updates)
        )
    except ReproError:
        return None


def _candidate_valid(candidate: JobSpec) -> bool:
    """A shrink candidate must be buildable, not merely constructible.

    ``NetworkConfig.__post_init__`` validates field shapes but the
    topology constructors enforce more (a ``min`` is a k-ary n-fly with
    k >= 2, n >= 1 and ``terminals = k**n``; a hypercube needs radix 2
    everywhere) -- probe ``build_topology`` so a mid-shrink dims edit
    can never hand the executor a topology it rejects, which would
    surface as a spurious TopologyError signature or, worse, match a
    TopologyError-flavoured original failure and "shrink" towards
    garbage configs.
    """
    try:
        build_topology(candidate.config.topology, candidate.config.dims)
        candidate.key()  # validates serialisability too
    except (ReproError, ValueError):
        return False
    return True


def _shrink_candidates(spec: JobSpec):
    """Valid strictly-simpler variants of a failing spec, best first."""
    for candidate in _raw_shrink_candidates(spec):
        if candidate is not None and _candidate_valid(candidate):
            yield candidate


def _raw_shrink_candidates(spec: JobSpec):
    """Yield simpler variants of a failing spec (or None), unvalidated."""
    workload = spec.workload.as_dict()
    if workload["kind"] == "uniform":
        duration = int(workload["duration"])
        if duration > 50:
            yield _with_workload(spec, duration=max(50, duration // 2))
        load = float(workload["load"])
        if load > 0.05:
            yield _with_workload(spec, load=round(max(0.05, load / 2), 3))
        length = int(workload["length"])
        if length > 2:
            yield _with_workload(spec, length=max(2, length // 2))
        if workload.get("pattern", "uniform") != "uniform":
            yield _with_workload(spec, pattern="uniform")
    dims = spec.config.dims
    if spec.config.topology in ("mesh", "torus"):
        if len(dims) > 1:
            yield _with_config(spec, dims=dims[:-1])
        if any(d > 2 for d in dims):
            yield _with_config(
                spec, dims=tuple(max(2, d - 1) for d in dims)
            )
    elif spec.config.topology == "fullmesh":
        if dims[0] > 3:
            yield _with_config(spec, dims=(max(3, dims[0] // 2),))
    elif spec.config.topology == "min":
        # Fewer stages first, then a smaller (uniform) radix.
        if len(dims) > 1:
            yield _with_config(spec, dims=dims[:-1])
        if dims[0] > 2:
            yield _with_config(spec, dims=(dims[0] - 1,) * len(dims))
    if spec.fault_fraction:
        yield dataclasses.replace(spec, fault_fraction=0.0)
    if spec.mtbf:
        yield dataclasses.replace(spec, mtbf=0, mttr=0)
    wave = spec.config.wave
    if wave is not None:
        if wave.circuit_cache_size > 1:
            yield _with_wave(spec, circuit_cache_size=1)
        if wave.num_switches > 1:
            yield _with_wave(spec, num_switches=1)
        if wave.misroute_budget > 0:
            yield _with_wave(spec, misroute_budget=0)
        if wave.clrp_variant != "standard":
            yield _with_wave(spec, clrp_variant="standard")
        if wave.replacement != "lru":
            yield _with_wave(spec, replacement="lru")
    wormhole = spec.config.wormhole
    classes = 2 if spec.config.topology == "torus" else 1
    floor = classes + 1 if wormhole.routing == "adaptive" else classes
    if wormhole.vcs > floor:
        yield _with_config(
            spec, wormhole=dataclasses.replace(wormhole, vcs=floor)
        )
    if wormhole.buffer_depth > 1:
        yield _with_config(
            spec,
            wormhole=dataclasses.replace(
                wormhole, buffer_depth=wormhole.buffer_depth // 2
            ),
        )


@dataclass
class ShrinkResult:
    spec: JobSpec  # the minimal reproducer found
    signature: str
    attempts: int  # candidate executions spent
    steps: int  # accepted shrinking steps


def shrink(
    spec: JobSpec, signature: str, *, max_attempts: int = 48
) -> ShrinkResult:
    """Greedy fixpoint: adopt any simpler spec failing the same way."""
    attempts = steps = 0
    current = spec
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _shrink_candidates(current):
            # Candidates arrive pre-validated (_candidate_valid): buildable
            # topology, serialisable key.
            if attempts >= max_attempts:
                break
            attempts += 1
            if failure_signature(candidate) == signature:
                current = candidate
                steps += 1
                improved = True
                break  # restart from the smaller spec
    return ShrinkResult(
        spec=current, signature=signature, attempts=attempts, steps=steps
    )


# -- campaign ------------------------------------------------------------


@dataclass
class FuzzFailure:
    """One fuzz finding: the original spec and its minimal reproducer."""

    index: int
    signature: str
    message: str
    spec: JobSpec
    shrunk: ShrinkResult | None = None

    @property
    def reproducer(self) -> JobSpec:
        return self.shrunk.spec if self.shrunk is not None else self.spec


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    budget: int
    master_seed: int
    passed: int = 0
    from_cache: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz_campaign(
    budget: int,
    *,
    master_seed: int = 0,
    jobs: int = 1,
    store=None,
    timeout_s: float | None = None,
    shrink_failures: bool = True,
    progress=None,
) -> FuzzReport:
    """Generate ``budget`` scenarios, run them under the harness, shrink.

    Scenario execution goes through the ordinary orchestration pool, so
    ``jobs > 1`` fans out across worker processes and a ``store`` gives
    caching and resume exactly as for experiment campaigns.
    """
    if budget < 1:
        raise ConfigError(f"fuzz budget must be >= 1, got {budget}")
    specs = [generate_spec(i, master_seed) for i in range(budget)]
    outcomes = run_jobs(
        specs,
        jobs=jobs,
        timeout_s=timeout_s,
        store=store,
        progress=progress,
    )
    report = FuzzReport(budget=budget, master_seed=master_seed)
    for outcome in outcomes:
        if outcome.ok:
            report.passed += 1
            report.from_cache += bool(outcome.from_cache)
            continue
        signature = signature_of_outcome(outcome)
        failure = FuzzFailure(
            index=outcome.index,
            signature=signature,
            message=(outcome.failure or {}).get("message", ""),
            spec=outcome.spec,
        )
        if shrink_failures and signature != "UnknownFailure":
            failure.shrunk = shrink(outcome.spec, signature)
        report.failures.append(failure)
    return report


# -- reproducer files ----------------------------------------------------


def dump_reproducer(failure: FuzzFailure, path) -> Path:
    """Write a failure's minimal reproducer as replayable JobSpec JSON."""
    path = Path(path)
    payload = {
        "signature": failure.signature,
        "message": failure.message,
        "spec": failure.reproducer.to_dict(),
        "original_spec": failure.spec.to_dict(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_spec(path) -> JobSpec:
    """Load a reproducer file (or a bare spec dict) back into a JobSpec."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if "spec" in data:
        data = data["spec"]
    return JobSpec.from_dict(data)
