"""Executable forms of the paper's Theorems 1-4.

* :mod:`repro.verify.waitgraph` -- builds the worm-level wait-for graph of
  the wormhole plane (OR-wait semantics: a worm blocked on several
  alternatives deadlocks only if *every* alternative is transitively
  stuck).
* :mod:`repro.verify.deadlock` -- the runtime deadlock detector
  (Theorems 1 and 2: no such stuck set may ever exist).
* :mod:`repro.verify.progress` -- livelock monitors (Theorems 3 and 4:
  probes do bounded work; message ages are bounded under finite load).
* :mod:`repro.verify.invariants` -- structural invariants tying the
  distributed register state (PCS units, Circuit Caches) to the global
  circuit table; run by tests after every scenario.
* :mod:`repro.verify.cdg` -- *static* extended channel-dependency-graph
  analysis: proves Theorems 1-2 from topology + routing + protocol
  config alone, no simulation.
* :mod:`repro.verify.fuzz` -- property-based protocol fuzzing under a
  per-cycle invariant harness, with failure shrinking to minimal
  replayable JobSpecs.
* :mod:`repro.verify.smt` -- exact SMT-style verification (z3 when
  installed, a native rank engine always): per-channel rank proofs of
  acyclicity, escape-channel verification and valid-subrelation search
  for adaptive configs, machine-checkable JSON certificates replayable
  without a solver, and fuzzer seeding for rejected configs.
"""

from repro.verify.cdg import (
    CDGReport,
    analyze_config,
    build_cdg,
    find_cycle,
    format_report,
)
from repro.verify.deadlock import (
    assert_no_deadlock,
    deadlocked_in_graph,
    find_deadlocked_worms,
)
from repro.verify.invariants import (
    check_all_invariants,
    check_fault_isolation,
    teardown_latency,
)
from repro.verify.fuzz import (
    FuzzReport,
    InvariantHarness,
    fuzz_campaign,
    generate_spec,
    load_spec,
    shrink,
)
from repro.verify.ordering import OrderingReport, check_in_order_delivery
from repro.verify.smt import (
    CertificateCheck,
    SmtReport,
    check_certificate,
    check_certificate_files,
    format_smt_report,
    have_z3,
    rejection_jobspecs,
    verify_config,
)
from repro.verify.progress import (
    ProbeWorkMonitor,
    ProgressMonitor,
    max_message_age,
)
from repro.verify.waitgraph import WaitGraph, build_wait_graph

__all__ = [
    "CDGReport",
    "CertificateCheck",
    "FuzzReport",
    "InvariantHarness",
    "OrderingReport",
    "ProbeWorkMonitor",
    "ProgressMonitor",
    "SmtReport",
    "WaitGraph",
    "analyze_config",
    "assert_no_deadlock",
    "build_cdg",
    "build_wait_graph",
    "check_all_invariants",
    "check_certificate",
    "check_certificate_files",
    "check_fault_isolation",
    "check_in_order_delivery",
    "deadlocked_in_graph",
    "find_cycle",
    "find_deadlocked_worms",
    "format_report",
    "format_smt_report",
    "fuzz_campaign",
    "generate_spec",
    "have_z3",
    "load_spec",
    "max_message_age",
    "rejection_jobspecs",
    "shrink",
    "teardown_latency",
    "verify_config",
]
