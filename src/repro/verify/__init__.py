"""Executable forms of the paper's Theorems 1-4.

* :mod:`repro.verify.waitgraph` -- builds the worm-level wait-for graph of
  the wormhole plane (OR-wait semantics: a worm blocked on several
  alternatives deadlocks only if *every* alternative is transitively
  stuck).
* :mod:`repro.verify.deadlock` -- the runtime deadlock detector
  (Theorems 1 and 2: no such stuck set may ever exist).
* :mod:`repro.verify.progress` -- livelock monitors (Theorems 3 and 4:
  probes do bounded work; message ages are bounded under finite load).
* :mod:`repro.verify.invariants` -- structural invariants tying the
  distributed register state (PCS units, Circuit Caches) to the global
  circuit table; run by tests after every scenario.
"""

from repro.verify.deadlock import assert_no_deadlock, find_deadlocked_worms
from repro.verify.invariants import (
    check_all_invariants,
    check_fault_isolation,
    teardown_latency,
)
from repro.verify.ordering import OrderingReport, check_in_order_delivery
from repro.verify.progress import (
    ProbeWorkMonitor,
    ProgressMonitor,
    max_message_age,
)
from repro.verify.waitgraph import WaitGraph, build_wait_graph

__all__ = [
    "OrderingReport",
    "ProbeWorkMonitor",
    "ProgressMonitor",
    "check_in_order_delivery",
    "WaitGraph",
    "assert_no_deadlock",
    "build_wait_graph",
    "check_all_invariants",
    "check_fault_isolation",
    "find_deadlocked_worms",
    "max_message_age",
    "teardown_latency",
]
