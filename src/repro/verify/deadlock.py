"""Runtime deadlock detection (Theorems 1 and 2, executable).

Under OR-wait semantics a worm is *eventually movable* if any of its
alternatives is free or blocked by an eventually-movable worm.  The
complement -- worms all of whose alternatives point back into the stuck
set -- is a true deadlock in this cycle-driven system (nothing outside
the wormhole plane can free a wormhole resource: circuits and probes use
disjoint channels, exactly the resource-separation argument of the
proofs).

The detector is *sound*: any ambiguity (transient states, self-blocking)
is resolved towards "movable", so a reported deadlock is real.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import DeadlockError
from repro.verify.waitgraph import build_wait_graph

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network


def find_deadlocked_worms(network: "Network") -> list[int]:
    """Return msg ids of worms that can never move again ([] if none)."""
    return deadlocked_in_graph(build_wait_graph(network))


def deadlocked_in_graph(graph) -> list[int]:
    """The "who can eventually move" fixpoint over one wait graph.

    Soundness dictates how each kind of blocker resolves:

    * a blocker *not tracked* in the graph is mid-flight, hence making
      progress -- the waiter is movable;
    * a worm blocking *itself* (the downstream buffer holds its own
      flits) progresses at its own downstream site, which is never the
      foremost one -- resolved towards movable, as the docstring above
      promises, regardless of whether the graph builder already filtered
      the self-edge out.
    """
    movable: set[int] = {
        e.msg_id for e in graph.entries.values() if e.free or not e.blockers
    }
    changed = True
    while changed:
        changed = False
        for entry in graph.entries.values():
            if entry.msg_id in movable:
                continue
            for blocker in entry.blockers:
                if (
                    blocker in movable
                    or blocker == entry.msg_id
                    or blocker not in graph.entries
                ):
                    movable.add(entry.msg_id)
                    changed = True
                    break
    return sorted(set(graph.entries) - movable)


def assert_no_deadlock(network: "Network") -> None:
    """Raise :class:`~repro.errors.DeadlockError` if a stuck set exists."""
    stuck = find_deadlocked_worms(network)
    if stuck:
        graph = build_wait_graph(network)
        detail = [
            (m, graph.entries[m].node, graph.entries[m].reason,
             sorted(graph.entries[m].blockers))
            for m in stuck
        ]
        raise DeadlockError(
            f"deadlock among {len(stuck)} worms at cycle {network.cycle}: "
            f"{detail[:8]}",
            cycle=stuck,
        )
