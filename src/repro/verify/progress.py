"""Livelock monitors (Theorems 3 and 4, executable).

Two bounds make "no livelock" checkable:

* **Probe work bound** -- MB-m limits misroutes to ``m`` and the History
  Store prevents re-searching, so a probe's total forward hops plus
  backtracks is bounded by twice the number of directed channels of its
  switch slice (each channel is reserved at most once per *visit*, and
  each backtrack permanently retires one (node, port) pair from the
  search).  :class:`ProbeWorkMonitor` asserts an explicit bound per probe.

* **Message age bound** -- with a finite workload every message must be
  delivered; :func:`max_message_age` feeds the stress tests that assert
  ages stay finite (delivery within a run-dependent bound), and the
  engine-level progress timeout catches global stalls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import LivelockError

if TYPE_CHECKING:  # pragma: no cover
    from repro.circuits.plane import WavePlane
    from repro.network.network import Network


class ProbeWorkMonitor:
    """Asserts every probe's search work stays within the MB-m bound.

    The bound used is ``2 * directed_links + waits_allowance``: each
    directed link can be reserved and backtracked over at most once per
    history entry, and waiting cycles (Force probes) are bounded by the
    victim-release chain, which the caller bounds via ``max_waits``.
    """

    def __init__(self, network: "Network", max_waits: int = 64) -> None:
        if network.plane is None:
            raise LivelockError("no wave plane to monitor")
        self.plane: "WavePlane" = network.plane
        self.links = len(network.topology.links())
        self.max_waits = max_waits

    def bound(self) -> int:
        return 2 * self.links + self.max_waits

    def check(self) -> None:
        for probe in self.plane.probes:
            work = probe.hops + probe.backtracks
            if work > self.bound():
                raise LivelockError(
                    f"probe {probe.probe_id} ({probe.src}->{probe.dst}, "
                    f"switch {probe.switch}, force={probe.force}) exceeded "
                    f"the MB-m work bound: {work} > {self.bound()}"
                )


def max_message_age(network: "Network") -> int:
    """Age (cycles since creation) of the oldest undelivered message."""
    now = network.cycle
    ages = [
        now - m.created
        for m in network.stats.messages.values()
        if m.delivered < 0
    ]
    return max(ages, default=0)


class ProgressMonitor:
    """Classifies the network's per-cycle state for livelock detection.

    Unlike the engine's raw progress timeout, this monitor distinguishes
    *why* no work is happening:

    * ``"progressing"`` -- the work counter moved since the last observe;
    * ``"idle"`` -- nothing in flight (not a stall);
    * ``"fault_recovery"`` -- no work this instant, but the reliability
      layer holds unacked messages whose retransmission timers guarantee
      bounded future work (a retransmit or a DeliveryFailure);
    * ``"stalled"`` -- messages outstanding, no work, no recovery timer:
      the only state that counts toward the livelock threshold.

    ``check()`` raises :class:`~repro.errors.LivelockError` once the
    network has been continuously ``"stalled"`` for ``stall_threshold``
    observed cycles.
    """

    def __init__(self, network: "Network", stall_threshold: int = 1000) -> None:
        if stall_threshold < 1:
            raise LivelockError(
                f"stall_threshold must be >= 1, got {stall_threshold}"
            )
        self.network = network
        self.stall_threshold = stall_threshold
        self._last_counter = network.work_counter
        self._stalled_since = network.cycle
        self.state = "idle"

    def observe(self) -> str:
        """Classify the current cycle and update the stall anchor."""
        net = self.network
        counter = net.work_counter
        recovery = getattr(net, "recovery_pending", None)
        if counter != self._last_counter:
            self._last_counter = counter
            self._stalled_since = net.cycle
            self.state = "progressing"
        elif net.is_idle():
            self._stalled_since = net.cycle
            self.state = "idle"
        elif recovery is not None and recovery():
            self._stalled_since = net.cycle
            self.state = "fault_recovery"
        else:
            self.state = "stalled"
        return self.state

    def stalled_for(self) -> int:
        return self.network.cycle - self._stalled_since

    def check(self) -> None:
        """Observe, then raise if continuously stalled past the threshold."""
        if self.observe() == "stalled" and self.stalled_for() >= self.stall_threshold:
            raise LivelockError(
                f"network stalled (no work, no recovery pending) for "
                f"{self.stalled_for()} cycles with "
                f"{self.network.outstanding_messages()} messages outstanding "
                f"at cycle {self.network.cycle}"
            )
