"""Livelock monitors (Theorems 3 and 4, executable).

Two bounds make "no livelock" checkable:

* **Probe work bound** -- MB-m limits misroutes to ``m`` and the History
  Store prevents re-searching, so a probe's total forward hops plus
  backtracks is bounded by twice the number of directed channels of its
  switch slice (each channel is reserved at most once per *visit*, and
  each backtrack permanently retires one (node, port) pair from the
  search).  :class:`ProbeWorkMonitor` asserts an explicit bound per probe.

* **Message age bound** -- with a finite workload every message must be
  delivered; :func:`max_message_age` feeds the stress tests that assert
  ages stay finite (delivery within a run-dependent bound), and the
  engine-level progress timeout catches global stalls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import LivelockError

if TYPE_CHECKING:  # pragma: no cover
    from repro.circuits.plane import WavePlane
    from repro.network.network import Network


class ProbeWorkMonitor:
    """Asserts every probe's search work stays within the MB-m bound.

    The bound used is ``2 * directed_links + waits_allowance``: each
    directed link can be reserved and backtracked over at most once per
    history entry, and waiting cycles (Force probes) are bounded by the
    victim-release chain, which the caller bounds via ``max_waits``.
    """

    def __init__(self, network: "Network", max_waits: int = 64) -> None:
        if network.plane is None:
            raise LivelockError("no wave plane to monitor")
        self.plane: "WavePlane" = network.plane
        self.links = len(network.topology.links())
        self.max_waits = max_waits

    def bound(self) -> int:
        return 2 * self.links + self.max_waits

    def check(self) -> None:
        for probe in self.plane.probes:
            work = probe.hops + probe.backtracks
            if work > self.bound():
                raise LivelockError(
                    f"probe {probe.probe_id} ({probe.src}->{probe.dst}, "
                    f"switch {probe.switch}, force={probe.force}) exceeded "
                    f"the MB-m work bound: {work} > {self.bound()}"
                )


def max_message_age(network: "Network") -> int:
    """Age (cycles since creation) of the oldest undelivered message."""
    now = network.cycle
    ages = [
        now - m.created
        for m in network.stats.messages.values()
        if m.delivered < 0
    ]
    return max(ages, default=0)
