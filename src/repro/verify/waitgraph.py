"""Worm-level wait-for graph of the wormhole plane.

Agents are *worms* (messages with flits in the network).  A worm advances
at its **foremost site**: the input VC holding its lowest-index flit at
the buffer head.  At that site it either

* can move freely (routed with credit, or ejecting, or an unrouted header
  with a free candidate VC) -- not blocked;
* waits on one or more alternatives, each held by some other worm
  (OR-wait): an unrouted header waits on the owners of every candidate
  output VC; a routed worm without credit waits on the worm at the head
  of the full downstream buffer.

Deadlock is then a non-empty set of worms none of which has an
alternative leading out of the set -- computed by the standard
"who can eventually move" fixpoint in :mod:`repro.verify.deadlock`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.wormhole.flit import EJECT_PORT

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network


@dataclass
class WaitEntry:
    """One worm's situation at its foremost site."""

    msg_id: int
    node: int
    in_port: int
    in_vc: int
    free: bool  # at least one alternative is immediately available
    blockers: set[int] = field(default_factory=set)  # msg ids (OR-wait)
    reason: str = ""


class WaitGraph:
    """The complete wait state of the wormhole plane at one instant."""

    def __init__(self) -> None:
        self.entries: dict[int, WaitEntry] = {}

    def add(self, entry: WaitEntry) -> None:
        self.entries[entry.msg_id] = entry

    def worms(self) -> list[int]:
        return list(self.entries)


def _owner_msg(router, owner: tuple[int, int] | None) -> int | None:
    """Map an output VC owner (in_port, in_vc) to the worm occupying it."""
    if owner is None:
        return None
    port, vc = owner
    head = router.inputs[port][vc].head()
    if head is None:
        # Owner's buffer momentarily drained (flits upstream); the VC will
        # free when the worm's tail passes -- attribute to no one (free-ish:
        # upstream progress is possible, so this alternative is not stuck).
        return None
    return head.msg_id


def build_wait_graph(network: "Network") -> WaitGraph:
    """Snapshot the wormhole plane's wait-for relationships."""
    graph = WaitGraph()
    # Foremost site per worm: the occupied input VC whose *head* flit has
    # the worm's smallest flit index.
    sites: dict[int, tuple[int, int, int, int]] = {}  # msg -> (idx, node, port, vc)
    for router in network.routers:
        for port, vc in router._active:
            head = router.inputs[port][vc].head()
            if head is None:
                continue
            best = sites.get(head.msg_id)
            if best is None or head.index < best[0]:
                sites[head.msg_id] = (head.index, router.node, port, vc)

    for msg_id, (_idx, node, port, vc) in sites.items():
        router = network.routers[node]
        ivc = router.inputs[port][vc]
        head = ivc.head()
        assert head is not None
        entry = WaitEntry(msg_id=msg_id, node=node, in_port=port, in_vc=vc,
                          free=False)
        if ivc.route is not None:
            out_port, out_vc = ivc.route
            if out_port == EJECT_PORT:
                entry.free = True  # the NI always consumes
                entry.reason = "ejecting"
            else:
                out = router.outputs[out_port][out_vc]
                if out.credits > 0:
                    entry.free = True
                    entry.reason = "has_credit"
                else:
                    down = router.downstream[out_port]
                    assert down is not None
                    d_router, d_port = down
                    blocker = _owner_msg(
                        d_router, (d_port, out_vc)
                    )
                    entry.reason = "no_credit"
                    if blocker is not None and blocker != msg_id:
                        entry.blockers.add(blocker)
                    else:
                        # Downstream buffer full of our own flits (or
                        # transiently unattributable): progress depends on
                        # our own downstream site, handled as that site is
                        # never the foremost one. Treat as free to stay
                        # sound (never report a false deadlock).
                        entry.free = True
        elif head.is_head:
            # Unrouted header: every candidate output VC is an alternative.
            if head.dst == router.node:
                # Waiting for an ejection VC.
                entry.reason = "eject_wait"
                for ev, owner in enumerate(router.eject_owner):
                    if owner is None:
                        entry.free = True
                        break
                    blocker = _owner_msg(router, owner)
                    if blocker is not None and blocker != msg_id:
                        entry.blockers.add(blocker)
                    else:
                        entry.free = True
            else:
                entry.reason = "va_wait"
                tiers = router.routing.candidates(router.node, head.dst, head)
                for tier in tiers:
                    for cand_port, cand_vcs in tier:
                        if router.downstream[cand_port] is None:
                            continue
                        if router.faults is not None and router.faults.is_faulty(
                            router.node, cand_port
                        ):
                            continue
                        for cand_vc in cand_vcs:
                            out = router.outputs[cand_port][cand_vc]
                            if out.owner is None:
                                entry.free = True
                            else:
                                blocker = _owner_msg(router, out.owner)
                                if blocker is not None and blocker != msg_id:
                                    entry.blockers.add(blocker)
                                else:
                                    entry.free = True
        else:
            # Head of buffer is a body flit without a route: the previous
            # tail just released the route this cycle; transient.
            entry.free = True
            entry.reason = "transient"
        graph.add(entry)
    return graph
