"""Exact deadlock-freedom verification with machine-checkable certificates.

The static analyzer (:mod:`repro.verify.cdg`) proves Theorems 1-2 by
cycle search over a dependency graph.  For deterministic routing that is
exact (Dally & Seitz: cyclic CDG iff a deadlock is reachable), but for
adaptive routing any *single* graph is an approximation of Duato's
actual condition -- a routing function is deadlock-free iff **some**
connected routing subfunction has an acyclic extended dependency graph.
In particular the *union* dependency graph (every channel any route may
use, accumulated -- the method of Stramaglia, Keiren & Zantema's loop
search) over-approximates: a config whose escape subfunction is sound is
still flagged cyclic, and a config whose *designated* escape discipline
fails may still be freed by a different valid subrelation that a cycle
search cannot express.

This module decides the question exactly, SMT-style, and makes every
verdict auditable:

* **Acyclicity via per-channel ranks.**  A graph is acyclic iff the
  constraint system ``rank(u) < rank(v)`` for every dependency ``u -> v``
  is satisfiable over the integers.  With ``z3-solver`` installed the
  system is discharged by z3 and the model is read back; without it a
  native exact engine (longest-path ranks over Kahn's algorithm) decides
  the *same* constraint system and emits the *same* certificate format.
  Both engines are exact; z3 is the independent cross-check CI runs.

* **Escape-channel verification** (Duato's sufficient condition): the
  designated escape subfunction must be connected and its extended
  dependency graph (escape dependencies chained across adaptive hops)
  acyclic.  The union graph's cycle, when one exists, is recorded in the
  certificate as evidence of the over-approximation being resolved.

* **Valid-subrelation search** when the designated escape discipline
  fails: candidate subfunctions (currently the escape discipline itself
  and a ring-split dimension-order family that breaks torus ring ties by
  source parity) are checked exactly -- connectivity plus extended-graph
  acyclicity.  Any hit proves deadlock freedom per Duato's theorem even
  though every single-graph cycle search says "cyclic".

* **Certificates.**  Every verdict emits JSON: the analysed graph (with
  a canonical hash so drift is detected), per-channel ranks for a FREE
  verdict or the witnessing cycle for a refutation, the subfunction used
  and the union-cycle evidence for adaptive configs.
  :func:`check_certificate` replays a certificate **without z3** -- rank
  replay is plain integer comparison edge by edge -- so a committed
  certificate is auditable on any machine.

* **Fuzzer seeding.**  A rejected config is converted into seeded
  scenarios (:func:`rejection_jobspecs`) for the PR 5 fuzzer, closing
  the loop between the prover and the runtime invariant harness.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.errors import ConfigError, ReproError
from repro.topology.base import CartesianTopology, Topology
from repro.verify.cdg import (
    Channel,
    Edges,
    _add_edge,
    build_cdg,
    config_topology,
    find_cycle,
)
from repro.wormhole.routing import (
    AdaptiveRouting,
    RoutingFunction,
    make_routing,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.orchestrate.spec import JobSpec
    from repro.sim.config import NetworkConfig

try:  # z3 is optional: the native engine decides the same constraints.
    import z3 as _z3  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - exercised by the no-z3 CI job
    _z3 = None

CERT_FORMAT = "repro-cdg-cert/1"


def have_z3() -> bool:
    """True when the optional ``z3-solver`` backend is importable."""
    return _z3 is not None


def z3_version() -> str | None:
    return _z3.get_version_string() if _z3 is not None else None


# -- channel (de)serialisation -------------------------------------------


def chan_key(ch: Channel) -> str:
    """Stable string id of a channel for certificates: ``node:port:class``."""
    return f"{ch.node}:{ch.port}:{ch.vc_class}"


def parse_chan_key(key: str) -> Channel:
    node, port, vc_class = (int(part) for part in key.split(":"))
    return Channel(node, port, vc_class)


def _sorted_channels(edges: Edges) -> list[Channel]:
    order = lambda c: (c.node, c.port, c.vc_class)  # noqa: E731
    vertices = set(edges)
    for outs in edges.values():
        vertices.update(outs)
    return sorted(vertices, key=order)


def graph_fingerprint(edges: Edges) -> dict:
    """Canonical summary + hash of a dependency graph.

    The hash pins the exact edge set, so a committed certificate detects
    any later drift of the analyzer (changed walk, changed discipline)
    instead of silently vouching for a different graph.
    """
    canonical = {
        chan_key(src): sorted(chan_key(dst) for dst in edges.get(src, ()))
        for src in _sorted_channels(edges)
    }
    blob = json.dumps(canonical, sort_keys=True).encode()
    return {
        "channels": len(canonical),
        "deps": sum(len(v) for v in canonical.values()),
        "sha256": hashlib.sha256(blob).hexdigest(),
    }


# -- the rank engines ----------------------------------------------------


def solve_ranks_native(edges: Edges) -> dict[Channel, int] | None:
    """Exact acyclicity decision without any solver dependency.

    The constraint system ``rank(u) < rank(v)`` per edge is satisfiable
    iff the graph is acyclic; the canonical model is the longest-path
    depth of each vertex (Kahn's algorithm).  Returns the rank model, or
    ``None`` when the constraints are unsatisfiable (a cycle exists).
    """
    vertices = _sorted_channels(edges)
    indegree = {v: 0 for v in vertices}
    for src, outs in edges.items():
        for dst in outs:
            indegree[dst] += 1
    ranks = {v: 0 for v in vertices}
    ready = [v for v in vertices if indegree[v] == 0]
    done = 0
    while ready:
        nxt: list[Channel] = []
        for vertex in ready:
            done += 1
            for out in edges.get(vertex, ()):
                ranks[out] = max(ranks[out], ranks[vertex] + 1)
                indegree[out] -= 1
                if indegree[out] == 0:
                    nxt.append(out)
        ready = nxt
    if done != len(vertices):
        return None  # some vertices sit on a cycle
    return ranks


def solve_ranks_z3(edges: Edges) -> dict[Channel, int] | None:
    """The same constraint system, discharged by z3.

    One integer variable per channel, one strict inequality per
    dependency; ``sat`` returns the model, ``unsat`` proves a cycle.
    """
    if _z3 is None:  # pragma: no cover - guarded by callers
        raise ConfigError(
            "z3-solver is not installed; use engine='native' or install "
            "the 'smt' extra (pip install repro[smt])"
        )
    vertices = _sorted_channels(edges)
    solver = _z3.Solver()
    var = {v: _z3.Int(chan_key(v)) for v in vertices}
    for src, outs in edges.items():
        for dst in outs:
            solver.add(var[src] < var[dst])
    if solver.check() != _z3.sat:
        return None
    model = solver.model()
    return {
        v: model.eval(var[v], model_completion=True).as_long()
        for v in vertices
    }


def solve_ranks(
    edges: Edges, engine: str
) -> tuple[dict[Channel, int] | None, str]:
    """Dispatch to an engine; returns ``(ranks_or_None, engine_used)``.

    ``engine`` is ``"auto"`` (z3 when installed, else native), ``"z3"``
    (hard requirement) or ``"native"``.
    """
    if engine == "auto":
        engine = "z3" if have_z3() else "native"
    if engine == "z3":
        return solve_ranks_z3(edges), f"z3-{z3_version()}"
    if engine == "native":
        return solve_ranks_native(edges), "native"
    raise ConfigError(f"unknown SMT engine {engine!r}")


# -- the union dependency graph (the over-approximation) ------------------


def adaptive_class(num_classes: int) -> int:
    """Pseudo-class id labelling the adaptive VC pool in the union graph.

    Escape channels carry classes ``0..num_classes-1``; all adaptive VCs
    are symmetric, so one extra class id suffices -- a cycle exists among
    the adaptive channels iff it exists with a single representative.
    """
    return num_classes


def build_union_cdg(
    routing: RoutingFunction, *, assume_classes: int | None = None
) -> Edges:
    """Accumulate *every* direct dependency any route may create.

    This is the single-graph union that a plain loop search (SNIPPETS
    snippet 3, method ``-b``; Stramaglia et al.'s satisfiability phrasing
    of the same object) operates on.  For deterministic routing it equals
    the ordinary CDG.  For adaptive routing it includes the adaptive
    channels and all adaptive<->escape transitions -- and is cyclic for
    every interesting adaptive config (all turns are permitted), which is
    exactly the over-approximation the escape/subrelation methods
    resolve.
    """
    topology = routing.topology
    num_classes = (
        routing.num_classes if assume_classes is None else assume_classes
    )
    if not isinstance(routing, AdaptiveRouting):
        return build_cdg(topology, routing, assume_classes=assume_classes)
    adapt_cls = adaptive_class(num_classes)
    edges: Edges = {}
    for src in topology.endpoints():
        for dst in topology.endpoints():
            if src == dst:
                continue
            _union_walk(routing, src, dst, num_classes, adapt_cls, edges)
    return edges


def _state_options(
    routing: RoutingFunction, node: int, dst: int, bits: int,
    num_classes: int, adapt_cls: int,
) -> list[tuple[int, int]]:
    """All (port, class) channels a blocked header may wait on here."""
    topology = routing.topology
    esc_port = topology.dor_port(node, dst)
    options = [(
        esc_port,
        routing.hop_class(node, esc_port, bits, num_classes=num_classes),
    )]
    for port in topology.minimal_ports(node, dst):
        options.append((port, adapt_cls))
    return options


def _union_walk(
    routing: RoutingFunction, src: int, dst: int,
    num_classes: int, adapt_cls: int, edges: Edges,
) -> None:
    """Direct dependencies of one endpoint pair over all legal routes."""
    topology = routing.topology
    seen: set[tuple[int, int]] = set()
    stack: list[tuple[int, int]] = [(src, 0)]
    while stack:
        node, bits = stack.pop()
        if node == dst or (node, bits) in seen:
            continue
        seen.add((node, bits))
        options = _state_options(
            routing, node, dst, bits, num_classes, adapt_cls
        )
        for port, cls in options:
            chan = Channel(node, port, cls)
            _add_edge(edges, None, chan)
            nbr = topology.neighbor(node, port)
            assert nbr is not None
            nbits = routing.hop_bits(node, port, bits)
            stack.append((nbr, nbits))
            if nbr == dst:
                continue
            # Direct dependency: arriving on `chan`, the header may wait
            # on any channel usable at the next hop.
            for nport, ncls in _state_options(
                routing, nbr, dst, nbits, num_classes, adapt_cls
            ):
                _add_edge(edges, chan, Channel(nbr, nport, ncls))


# -- routing subfunctions (Duato's valid subrelations) --------------------


class EscapeSubfunction:
    """The designated escape discipline: dimension-order on escape VCs."""

    name = "escape-dor"

    def __init__(self, routing: RoutingFunction, num_classes: int) -> None:
        self.routing = routing
        self.num_classes = num_classes

    def options(
        self, node: int, dst: int, bits: int
    ) -> tuple[tuple[int, int], ...]:
        port = self.routing.topology.dor_port(node, dst)
        cls = self.routing.hop_class(
            node, port, bits, num_classes=self.num_classes
        )
        return ((port, cls),)


class RingSplitSubfunction:
    """Dimension order with per-ring direction choice, over adaptive VCs.

    On a wrapped (torus) dimension whose two minimal directions tie, the
    escape DOR rule always takes the plus port -- chaining plus links all
    the way around the ring, which is the classic cycle when no dateline
    classes are available.  This subfunction breaks the tie by *source
    parity* instead: even coordinates go plus, odd go minus, so neither
    direction's links ever chain around a full ring.  Non-tied hops take
    the strictly-minimal direction (which can never chain a ring either:
    a route crosses at most half the ring).  All options are served from
    the adaptive VC pool, so the subfunction is a subrelation of the full
    adaptive routing relation whatever the escape class discipline says.

    Duato's theorem then applies: if this subfunction is connected and
    its extended dependency graph (chained across *all* adaptive hops of
    the full relation) is acyclic, the routing function is deadlock-free
    -- even when every single-graph cycle search over the union or the
    escape discipline reports a cycle.
    """

    name = "ring-split-dor"

    def __init__(self, routing: RoutingFunction, num_classes: int) -> None:
        topology = routing.topology
        if not isinstance(topology, CartesianTopology):
            raise ConfigError(
                "ring-split subfunction requires a Cartesian topology"
            )
        self.routing = routing
        self.topology = topology
        self.cls = adaptive_class(num_classes)

    def options(
        self, node: int, dst: int, bits: int
    ) -> tuple[tuple[int, int], ...]:
        topo = self.topology
        here = topo.coords(node)
        there = topo.coords(dst)
        for dim, radix in enumerate(topo.dims):
            c, t = here[dim], there[dim]
            if c == t:
                continue
            if topo._wraps(dim):
                up = (t - c) % radix
                down = (c - t) % radix
                if up < down:
                    port = 2 * dim
                elif down < up:
                    port = 2 * dim + 1
                else:  # tie: split the ring by source parity
                    port = 2 * dim if c % 2 == 0 else 2 * dim + 1
            else:
                port = 2 * dim if t > c else 2 * dim + 1
            return ((port, self.cls),)
        return ()


def candidate_subfunctions(
    routing: RoutingFunction, num_classes: int
) -> list:
    """Subrelation candidates, cheapest/most-standard first."""
    candidates: list = [EscapeSubfunction(routing, num_classes)]
    topology = routing.topology
    if isinstance(routing, AdaptiveRouting) and isinstance(
        topology, CartesianTopology
    ):
        if any(topology._wraps(d) for d in range(topology.n_dims)):
            candidates.append(RingSplitSubfunction(routing, num_classes))
    return candidates


def subfunction_by_name(
    name: str, routing: RoutingFunction, num_classes: int
):
    for sub in candidate_subfunctions(routing, num_classes):
        if sub.name == name:
            return sub
    raise ConfigError(
        f"unknown subfunction {name!r} for {routing.topology!r}"
    )


def subfunction_connected(routing: RoutingFunction, sub) -> bool:
    """Every endpoint pair must be routable using the subfunction alone.

    Walk each pair following only the subfunction's options; every state
    it can reach must offer at least one option (no dead ends) and every
    branch must terminate at the destination.
    """
    topology = routing.topology
    for src in topology.endpoints():
        for dst in topology.endpoints():
            if src == dst:
                continue
            seen: set[tuple[int, int]] = set()
            stack = [(src, 0)]
            while stack:
                node, bits = stack.pop()
                if node == dst or (node, bits) in seen:
                    continue
                seen.add((node, bits))
                options = sub.options(node, dst, bits)
                if not options:
                    return False
                for port, _cls in options:
                    nbr = topology.neighbor(node, port)
                    if nbr is None:
                        return False
                    stack.append((nbr, routing.hop_bits(node, port, bits)))
    return True


def build_extended_cdg(
    routing: RoutingFunction, sub, *, assume_classes: int | None = None
) -> Edges:
    """Extended dependency graph of a subfunction w.r.t. the full relation.

    Generalises the analyzer's escape walk: at every state the header may
    take a subfunction channel (chaining it to the previously-held one --
    the worm's body holds its whole path, so transitivity is carried by
    the *last* subfunction channel) or, when the relation is adaptive,
    any minimal adaptive hop with the chain unchanged.  This is the
    conservative superset of Duato's indirect-dependency closure, so an
    acyclic result is always sound.
    """
    topology = routing.topology
    num_classes = (
        routing.num_classes if assume_classes is None else assume_classes
    )
    del num_classes  # classes are baked into the subfunction's options
    adaptive = isinstance(routing, AdaptiveRouting)
    edges: Edges = {}
    for src in topology.endpoints():
        for dst in topology.endpoints():
            if src == dst:
                continue
            seen: set[tuple[int, int, Channel | None]] = set()
            stack: list[tuple[int, int, Channel | None]] = [(src, 0, None)]
            while stack:
                node, bits, last = stack.pop()
                if node == dst or (node, bits, last) in seen:
                    continue
                seen.add((node, bits, last))
                for port, cls in sub.options(node, dst, bits):
                    chan = Channel(node, port, cls)
                    _add_edge(edges, last, chan)
                    nbr = topology.neighbor(node, port)
                    assert nbr is not None
                    stack.append(
                        (nbr, routing.hop_bits(node, port, bits), chan)
                    )
                if adaptive:
                    for port in topology.minimal_ports(node, dst):
                        nbr = topology.neighbor(node, port)
                        if nbr is None:
                            continue
                        stack.append(
                            (nbr, routing.hop_bits(node, port, bits), last)
                        )
    return edges


# -- verdicts ------------------------------------------------------------


@dataclass
class SmtReport:
    """Outcome of one exact verification run."""

    config: str  # human-readable config summary
    engine: str  # "native" or "z3-<version>"
    method: str  # acyclicity | escape | subrelation | refuted
    deadlock_free: bool
    conclusive: bool  # False only when the subrelation family is exhausted
    detail: str
    certificate: dict
    union_cyclic: bool | None = None  # adaptive configs only
    subfunction: str | None = None


def _routing_for(
    config: "NetworkConfig",
) -> tuple[Topology, RoutingFunction]:
    topology = config_topology(config)
    routing = make_routing(
        config.wormhole.routing, topology, config.wormhole.vcs
    )
    return topology, routing


def _cert_config(config: "NetworkConfig") -> dict:
    return {
        "topology": config.topology,
        "dims": list(config.dims),
        "protocol": config.protocol,
        "routing": config.wormhole.routing,
        "vcs": config.wormhole.vcs,
    }


def _ranks_json(ranks: dict[Channel, int]) -> dict[str, int]:
    return {chan_key(ch): rank for ch, rank in sorted(
        ranks.items(), key=lambda kv: (kv[0].node, kv[0].port, kv[0].vc_class)
    )}


def _cycle_json(cycle: list[Channel]) -> list[str]:
    return [chan_key(ch) for ch in cycle]


def verify_config(
    config: "NetworkConfig",
    *,
    assume_classes: int | None = None,
    engine: str = "auto",
) -> SmtReport:
    """Decide deadlock freedom exactly and emit a certificate.

    Deterministic routing: rank the (plain) CDG -- satisfiable iff
    acyclic iff deadlock-free (exact both ways).  Adaptive routing:
    search for a connected subfunction with an acyclic extended graph
    (escape discipline first, then the wider family); any hit is a proof
    of freedom per Duato's theorem.  When the family is exhausted the
    verdict is a *rejection with a caveat* (``conclusive=False``): the
    witnessing cycles are real graph cycles, but Duato's condition is
    existential so a subfunction outside the family could still exist.
    """
    topology, routing = _routing_for(config)
    num_classes = (
        routing.num_classes if assume_classes is None else assume_classes
    )
    base = {
        "format": CERT_FORMAT,
        "config": _cert_config(config),
        "assume_classes": assume_classes,
    }

    if not isinstance(routing, AdaptiveRouting):
        edges = build_cdg(topology, routing, assume_classes=assume_classes)
        ranks, engine_used = solve_ranks(edges, engine)
        fingerprint = graph_fingerprint(edges)
        if ranks is not None:
            cert = dict(
                base, method="acyclicity", engine=engine_used,
                deadlock_free=True, conclusive=True, graph=fingerprint,
                ranks=_ranks_json(ranks),
            )
            return SmtReport(
                config=config.describe(), engine=engine_used,
                method="acyclicity", deadlock_free=True, conclusive=True,
                detail=(
                    f"rank model over {fingerprint['channels']} channels / "
                    f"{fingerprint['deps']} dependencies (deterministic "
                    "routing: exact)"
                ),
                certificate=cert,
            )
        cycle = find_cycle(edges)
        cert = dict(
            base, method="refuted", engine=engine_used,
            deadlock_free=False, conclusive=True, graph=fingerprint,
            cycle=_cycle_json(cycle),
        )
        return SmtReport(
            config=config.describe(), engine=engine_used, method="refuted",
            deadlock_free=False, conclusive=True,
            detail=(
                f"rank constraints unsatisfiable; witnessing cycle of "
                f"{len(cycle) - 1} channels (deterministic routing: a "
                "reachable circular wait)"
            ),
            certificate=cert,
        )

    # Adaptive: record the union-graph over-approximation, then search
    # the subfunction family for Duato's certificate.
    union = build_union_cdg(routing, assume_classes=assume_classes)
    union_cycle = find_cycle(union)
    engine_used = "native"
    rejected_witness: list[Channel] = []
    for sub in candidate_subfunctions(routing, num_classes):
        if not subfunction_connected(routing, sub):
            continue
        ext = build_extended_cdg(
            routing, sub, assume_classes=assume_classes
        )
        ranks, engine_used = solve_ranks(ext, engine)
        if ranks is None:
            if not rejected_witness:
                rejected_witness = find_cycle(ext)
            continue
        fingerprint = graph_fingerprint(ext)
        method = (
            "escape" if isinstance(sub, EscapeSubfunction) else "subrelation"
        )
        cert = dict(
            base, method=method, engine=engine_used,
            deadlock_free=True, conclusive=True,
            subfunction=sub.name, graph=fingerprint,
            ranks=_ranks_json(ranks),
            union_cycle=_cycle_json(union_cycle),
        )
        over = (
            "; union graph cyclic (over-approximation resolved)"
            if union_cycle else ""
        )
        return SmtReport(
            config=config.describe(), engine=engine_used, method=method,
            deadlock_free=True, conclusive=True,
            detail=(
                f"connected subfunction '{sub.name}' with acyclic "
                f"extended graph ({fingerprint['channels']} channels / "
                f"{fingerprint['deps']} deps): deadlock-free per Duato"
                f"{over}"
            ),
            certificate=cert, union_cyclic=bool(union_cycle),
            subfunction=sub.name,
        )
    witness = rejected_witness or union_cycle
    fingerprint = graph_fingerprint(union)
    cert = dict(
        base, method="refuted", engine=engine_used,
        deadlock_free=False, conclusive=False, graph=fingerprint,
        cycle=_cycle_json(witness),
        union_cycle=_cycle_json(union_cycle),
    )
    return SmtReport(
        config=config.describe(), engine=engine_used, method="refuted",
        deadlock_free=False, conclusive=False,
        detail=(
            "no connected subfunction with an acyclic extended graph in "
            f"the search family ({len(candidate_subfunctions(routing, num_classes))} "
            "candidates); rejection is family-relative (Duato's condition "
            "is existential)"
        ),
        certificate=cert, union_cyclic=bool(union_cycle),
    )


def format_smt_report(report: SmtReport) -> str:
    verdict = "DEADLOCK-FREE" if report.deadlock_free else (
        "REJECTED" if report.conclusive else "REJECTED (inconclusive)"
    )
    lines = [
        f"SMT [{report.engine}] {report.method}: {verdict}",
        f"  {report.detail}",
    ]
    if report.union_cyclic:
        lines.append(
            "  union dependency graph is cyclic -- a plain cycle search "
            "over-approximates this config"
        )
    return "\n".join(lines)


# -- certificate replay (no z3, no solver) --------------------------------


@dataclass
class CertificateCheck:
    """Result of replaying a certificate against the current code."""

    ok: bool
    errors: list[str] = field(default_factory=list)
    detail: str = ""


def _config_from_cert(cert: dict) -> "NetworkConfig":
    from repro.sim.config import NetworkConfig, WaveConfig, WormholeConfig

    cfg = cert["config"]
    protocol = cfg.get("protocol", "wormhole")
    # The dependency graph lives in the wormhole routing layer; wave
    # parameters never affect it, so default S1..Sk settings suffice to
    # rebuild a wave-protocol config.
    wave = None if protocol == "wormhole" else WaveConfig()
    return NetworkConfig(
        topology=cfg["topology"],
        dims=tuple(cfg["dims"]),
        protocol=protocol,
        wave=wave,
        wormhole=WormholeConfig(
            vcs=cfg["vcs"], routing=cfg["routing"]
        ),
    )


def _replay_ranks(
    edges: Edges, ranks_json: dict[str, int], errors: list[str]
) -> int:
    """Edge-by-edge strict-increase replay; returns edges checked."""
    ranks = {parse_chan_key(k): v for k, v in ranks_json.items()}
    checked = 0
    for vertex in _sorted_channels(edges):
        if vertex not in ranks:
            errors.append(f"channel {chan_key(vertex)} has no rank")
            return checked
    for src, outs in edges.items():
        for dst in outs:
            checked += 1
            if not ranks[src] < ranks[dst]:
                errors.append(
                    f"rank({chan_key(src)})={ranks[src]} !< "
                    f"rank({chan_key(dst)})={ranks[dst]}"
                )
                return checked
    return checked


def _replay_cycle(
    edges: Edges, cycle_json: list[str], errors: list[str]
) -> None:
    """The recorded cycle must be a closed chain of real dependencies."""
    chain = [parse_chan_key(k) for k in cycle_json]
    if len(chain) < 2 or chain[0] != chain[-1]:
        errors.append("cycle witness is not a closed chain")
        return
    for src, dst in zip(chain, chain[1:]):
        if dst not in edges.get(src, ()):
            errors.append(
                f"claimed dependency {chan_key(src)} -> {chan_key(dst)} "
                "does not exist in the rebuilt graph"
            )
            return


def check_certificate(cert: dict) -> CertificateCheck:
    """Replay a certificate with plain graph walks and integer compares.

    Rebuilds the analysed graph from the certified configuration (pure
    Python, no z3), verifies the canonical hash (drift detection), then
    replays the rank model or the cycle witness.  For adaptive proofs the
    subfunction's connectivity and the union-cycle evidence are replayed
    too.
    """
    errors: list[str] = []
    if cert.get("format") != CERT_FORMAT:
        return CertificateCheck(
            False, [f"unknown certificate format {cert.get('format')!r}"]
        )
    try:
        config = _config_from_cert(cert)
        topology, routing = _routing_for(config)
    except ReproError as exc:
        return CertificateCheck(False, [f"config rebuild failed: {exc}"])
    assume = cert.get("assume_classes")
    num_classes = routing.num_classes if assume is None else assume
    method = cert.get("method")
    adaptive = isinstance(routing, AdaptiveRouting)

    if method == "acyclicity" or (method == "refuted" and not adaptive):
        edges = build_cdg(topology, routing, assume_classes=assume)
    elif method in ("escape", "subrelation"):
        sub = subfunction_by_name(
            cert.get("subfunction", ""), routing, num_classes
        )
        if not subfunction_connected(routing, sub):
            errors.append(
                f"subfunction {sub.name!r} is not connected"
            )
        edges = build_extended_cdg(routing, sub, assume_classes=assume)
    elif method == "refuted" and adaptive:
        edges = build_union_cdg(routing, assume_classes=assume)
    else:
        return CertificateCheck(False, [f"unknown method {method!r}"])

    fingerprint = graph_fingerprint(edges)
    recorded = cert.get("graph", {})
    if recorded.get("sha256") != fingerprint["sha256"]:
        errors.append(
            "graph drift: certificate hash "
            f"{recorded.get('sha256', '?')[:12]} != rebuilt "
            f"{fingerprint['sha256'][:12]}"
        )
    checked = 0
    if cert.get("deadlock_free"):
        checked = _replay_ranks(edges, cert.get("ranks", {}), errors)
    else:
        _replay_cycle(edges, cert.get("cycle", []), errors)
    if adaptive and cert.get("union_cycle"):
        union = build_union_cdg(routing, assume_classes=assume)
        _replay_cycle(union, cert["union_cycle"], errors)
    return CertificateCheck(
        ok=not errors,
        errors=errors,
        detail=(
            f"{cert['config']['topology']}/{cert['config']['routing']} "
            f"{method}: replayed "
            + (f"{checked} rank constraints" if cert.get("deadlock_free")
               else f"cycle of {max(len(cert.get('cycle', [])) - 1, 0)}")
            + f" over {fingerprint['channels']} channels"
        ),
    )


# -- certificate files ---------------------------------------------------


def certificate_slug(
    config: "NetworkConfig", assume_classes: int | None = None
) -> str:
    shape = "x".join(str(d) for d in config.dims)
    parts = [
        config.topology, shape, config.protocol,
        config.wormhole.routing, f"vcs{config.wormhole.vcs}",
    ]
    if assume_classes is not None:
        parts.append(f"assume{assume_classes}")
    return "-".join(parts)


def dump_certificate(cert: dict, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(cert, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_certificate(path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def check_certificate_files(paths: Iterable) -> list[tuple[Path, CertificateCheck]]:
    """Replay a batch of certificate files (CI's smt-check job)."""
    results = []
    for path in sorted(Path(p) for p in paths):
        try:
            cert = load_certificate(path)
            results.append((path, check_certificate(cert)))
        except (OSError, ValueError) as exc:
            results.append(
                (path, CertificateCheck(False, [f"unreadable: {exc}"]))
            )
    return results


# -- closing the loop with the fuzzer ------------------------------------


def rejection_jobspecs(
    config: "NetworkConfig",
    *,
    seeds: tuple[int, ...] = (0, 1, 2),
    load: float = 0.35,
) -> "list[JobSpec]":
    """Seeded stress scenarios for a config the prover rejected.

    Each spec runs the exact rejected configuration near saturation with
    the runtime deadlock detector and the full invariant harness enabled,
    so ``repro fuzz --replay`` hunts for the predicted circular wait.
    The prover and the runtime harness thereby check each other: a
    rejection the fuzzer can never reproduce is analyzer over-
    approximation evidence; a reproduced deadlock is a confirmed finding.
    """
    from repro.orchestrate.spec import JobSpec, WorkloadRecipe

    specs = []
    for i, seed in enumerate(seeds):
        workload = WorkloadRecipe.make(
            "uniform", pattern="uniform", load=load, length=16,
            duration=600,
        )
        specs.append(JobSpec(
            config=dataclasses.replace(config, seed=seed),
            workload=workload,
            label=f"cdg-rejected-{certificate_slug(config)}-{i}",
            max_cycles=80_000,
            deadlock_check_interval=67,
            progress_timeout=30_000,
            invariants_every=4,
        ))
    return specs


def dump_rejection_specs(
    config: "NetworkConfig", out_dir, **kwargs
) -> list[Path]:
    """Write rejection scenarios as ``repro fuzz --replay``-able JSON."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for spec in rejection_jobspecs(config, **kwargs):
        path = out / f"{spec.label}.json"
        path.write_text(
            json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        paths.append(path)
    return paths
