"""In-order delivery monitoring.

Section 5 of the paper: "once a circuit has been established between two
nodes, in-order delivery is guaranteed for all the messages transmitted
between those nodes."  That guarantee is *circuit-specific*: wormhole
traffic between a pair may legitimately reorder (two worms of the same
pair travelling on different virtual channels of the same path can
overtake each other under switch arbitration), and mixed circuit/wormhole
traffic reorders across the mode boundary -- both are quantified here,
not flagged.

:func:`check_in_order_delivery` audits a finished run per (src, dst)
pair: out-of-order delivery among *circuit-carried* messages is a
guarantee violation (a bug); wormhole and mixed reorderings are counted
for visibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.config import SwitchingMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network

CIRCUIT_MODES = frozenset(
    {
        SwitchingMode.CIRCUIT_HIT,
        SwitchingMode.CIRCUIT_NEW,
        SwitchingMode.CIRCUIT_FORCED,
    }
)


@dataclass
class OrderingReport:
    pairs_checked: int = 0
    # (src, dst, earlier_msg, later_msg) among circuit-carried messages.
    circuit_violations: list[tuple[int, int, int, int]] = field(
        default_factory=list
    )
    wormhole_reorderings: int = 0  # legitimate: VC multiplexing
    mixed_mode_reorderings: int = 0  # legitimate: mode boundary

    @property
    def clean(self) -> bool:
        return not self.circuit_violations


def check_in_order_delivery(network: "Network") -> OrderingReport:
    """Audit a finished run for per-pair delivery order.

    Circuit-carried messages of a pair must be delivered in creation
    order (the paper's guarantee) -- anything else is a violation.
    Wormhole-only and mixed-mode reorderings are legitimate and counted
    separately for visibility.
    """
    by_pair: dict[tuple[int, int], list] = {}
    for rec in network.stats.delivered_records():
        by_pair.setdefault((rec.src, rec.dst), []).append(rec)
    report = OrderingReport()
    for (src, dst), records in by_pair.items():
        report.pairs_checked += 1
        records.sort(key=lambda r: (r.created, r.msg_id))
        # The paper's guarantee covers the circuit-carried subsequence.
        circuit_seq = [r for r in records if r.mode in CIRCUIT_MODES]
        prev = None
        for rec in circuit_seq:
            if prev is not None and rec.delivered < prev.delivered:
                report.circuit_violations.append(
                    (src, dst, prev.msg_id, rec.msg_id)
                )
            prev = rec
        # Everything else: count reorderings for visibility.
        modes = {r.mode for r in records if r.mode is not None}
        mixed = bool(modes & CIRCUIT_MODES) and bool(modes - CIRCUIT_MODES)
        prev = None
        for rec in records:
            if prev is not None and rec.delivered < prev.delivered:
                in_circuit = (rec.mode in CIRCUIT_MODES
                              and prev.mode in CIRCUIT_MODES)
                if not in_circuit:
                    if mixed:
                        report.mixed_mode_reorderings += 1
                    else:
                        report.wormhole_reorderings += 1
            prev = rec
    return report
