"""Structural invariants tying distributed register state together.

These are the "should always hold" properties the proofs implicitly rely
on.  Tests call :func:`check_all_invariants` after (and during) every
scenario; each check raises :class:`~repro.errors.ProtocolError` with a
precise description on violation.

1. **Channel exclusivity** -- every live circuit's channels are reserved
   exactly for it in the owning node's PCS unit, and every RESERVED
   register is claimed by exactly one live circuit.
2. **Mapping consistency** -- direct and reverse channel mappings are
   mutual inverses and agree with the owning circuit's path.
3. **Ack monotonicity** -- an ESTABLISHED circuit has the Ack Returned
   bit set on *every* hop.
4. **Claim hygiene** -- every channel claim belongs to a live waiting
   probe.
5. **Cache coherence** -- every ESTABLISHED cache entry points at an
   ESTABLISHED circuit whose source and dest match the entry.
6. **Credit sanity** -- wormhole credits never exceed buffer depth and
   match downstream occupancy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.circuits.circuit import CircuitState
from repro.circuits.pcs_unit import ChannelStatus
from repro.core.base import CircuitEngineBase
from repro.core.circuit_cache import CacheEntryState
from repro.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network


def check_channel_exclusivity(network: "Network") -> None:
    plane = network.plane
    if plane is None:
        return
    owners = plane.table.channels_in_use()  # raises on double-claim
    # Every live-circuit channel must be RESERVED for that circuit.
    for (node, port, switch), circuit_id in owners.items():
        unit = plane.units[node]
        if unit.status(port, switch) is not ChannelStatus.RESERVED:
            raise ProtocolError(
                f"circuit {circuit_id} claims ({node},{port},{switch}) but "
                f"register says {unit.status(port, switch).value}"
            )
        if unit.owner(port, switch) != circuit_id:
            raise ProtocolError(
                f"register owner mismatch at ({node},{port},{switch}): "
                f"{unit.owner(port, switch)} != {circuit_id}"
            )
    # Every RESERVED register must belong to a live circuit.
    for node, unit in enumerate(plane.units):
        for port, switch in unit.reserved_channels():
            cid = unit.owner(port, switch)
            assert cid is not None
            if (node, port, switch) not in owners:
                raise ProtocolError(
                    f"orphan reservation ({node},{port},{switch}) by "
                    f"circuit {cid}"
                )


def check_mapping_consistency(network: "Network") -> None:
    plane = network.plane
    if plane is None:
        return
    for node, unit in enumerate(plane.units):
        for in_key, out_key in unit.direct_map.items():
            back = unit.reverse_map.get(out_key)
            if back != in_key:
                raise ProtocolError(
                    f"node {node}: direct map {in_key}->{out_key} but "
                    f"reverse map says {back}"
                )
        for out_key, in_key in unit.reverse_map.items():
            fwd = unit.direct_map.get(in_key)
            if fwd != out_key:
                raise ProtocolError(
                    f"node {node}: reverse map {out_key}->{in_key} but "
                    f"direct map says {fwd}"
                )


def check_ack_monotonicity(network: "Network") -> None:
    plane = network.plane
    if plane is None:
        return
    for circuit in plane.table.circuits.values():
        if circuit.state is not CircuitState.ESTABLISHED:
            continue
        for node, port in circuit.path:
            unit = plane.units[node]
            if not unit.ack_returned(port, circuit.switch):
                raise ProtocolError(
                    f"established circuit {circuit.circuit_id} missing "
                    f"Ack Returned at ({node},{port},{circuit.switch})"
                )


def check_claim_hygiene(network: "Network") -> None:
    plane = network.plane
    if plane is None:
        return
    live_probes = {p.probe_id for p in plane.probes}
    for key, probe_id in plane.claims.items():
        if probe_id not in live_probes:
            raise ProtocolError(
                f"channel claim {key} held by finished probe {probe_id}"
            )


def check_cache_coherence(network: "Network") -> None:
    plane = network.plane
    if plane is None:
        return
    for ni in network.interfaces:
        engine = ni.engine
        if not isinstance(engine, CircuitEngineBase):
            continue
        for dest, entry in engine.cache.entries.items():
            if entry.dest != dest:
                raise ProtocolError(
                    f"node {ni.node}: cache key {dest} != entry.dest "
                    f"{entry.dest}"
                )
            if entry.state is CacheEntryState.ESTABLISHED:
                c = entry.circuit
                if c is None or c.state is not CircuitState.ESTABLISHED:
                    raise ProtocolError(
                        f"node {ni.node}: ESTABLISHED entry for dest {dest} "
                        f"with circuit {c!r}"
                    )
                if c.src != ni.node or c.dst != dest:
                    raise ProtocolError(
                        f"node {ni.node}: entry/circuit endpoint mismatch "
                        f"({c.src}->{c.dst} vs {ni.node}->{dest})"
                    )


def check_credit_sanity(network: "Network") -> None:
    depth = network.config.wormhole.buffer_depth
    for router in network.routers:
        for port_vcs in router.outputs:
            for out in port_vcs:
                if not 0 <= out.credits <= out.max_credits:
                    raise ProtocolError(
                        f"node {router.node}: credits {out.credits} out of "
                        f"range on output ({out.port},{out.vc})"
                    )
        down_checked = set()
        for port, down in enumerate(router.downstream):
            if down is None:
                continue
            d_router, d_port = down
            for vc in range(router.config.vcs):
                out = router.outputs[port][vc]
                occupancy = d_router.inputs[d_port][vc].occupancy()
                if out.credits + occupancy != depth:
                    raise ProtocolError(
                        f"credit/occupancy mismatch {router.node}->"
                        f"{d_router.node} port {port} vc {vc}: "
                        f"{out.credits} credits + {occupancy} buffered != "
                        f"{depth}"
                    )
            down_checked.add(port)


def teardown_latency(network: "Network") -> int:
    """Upper bound on cycles until fault teardowns settle network-wide.

    A fault-triggered TEARDOWN control flit walks the circuit's remaining
    path one hop per ``setup_hop_delay`` cycles; no circuit is longer
    than twice the directed link count, so after this many quiet cycles
    every teardown launched by a kill has finished.  Zero for pure
    wormhole networks (no circuits to tear down).
    """
    if network.plane is None:
        return 0
    wave = network.plane.config
    return 2 * len(network.topology.links()) * wave.setup_hop_delay + 1


def check_fault_isolation(network: "Network") -> None:
    """No live circuit state may reference a dead link.

    Deliberately NOT part of :data:`ALL_CHECKS`: it only holds once
    :func:`teardown_latency` cycles have elapsed since the last kill
    (teardown control flits are in flight until then).  The fault-aware
    runners gate the call on that bound.
    """
    faults = network.faults
    plane = network.plane
    if faults is None or plane is None:
        return
    for circuit in plane.table.circuits.values():
        if circuit.state not in (
            CircuitState.ESTABLISHED,
            CircuitState.SETTING_UP,
        ):
            continue
        for node, port in circuit.path:
            if faults.is_faulty(node, port):
                raise ProtocolError(
                    f"{circuit.state.value} circuit {circuit.circuit_id} "
                    f"({circuit.src}->{circuit.dst}) still holds dead link "
                    f"({node},{port}) after teardown latency"
                )
    for ni in network.interfaces:
        engine = ni.engine
        if not isinstance(engine, CircuitEngineBase):
            continue
        for dest, entry in engine.cache.entries.items():
            if entry.state is not CacheEntryState.ESTABLISHED:
                continue
            c = entry.circuit
            if c is None:
                continue
            for node, port in c.path:
                if faults.is_faulty(node, port):
                    raise ProtocolError(
                        f"node {ni.node}: ESTABLISHED cache entry for dest "
                        f"{dest} references dead link ({node},{port})"
                    )


ALL_CHECKS = (
    check_channel_exclusivity,
    check_mapping_consistency,
    check_ack_monotonicity,
    check_claim_hygiene,
    check_cache_coherence,
    check_credit_sanity,
)


def check_all_invariants(network: "Network") -> None:
    """Run every structural invariant; raises on first violation."""
    for check in ALL_CHECKS:
        check(network)
