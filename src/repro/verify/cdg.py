"""Static extended channel-dependency-graph analysis (Theorems 1 and 2).

The paper's deadlock-freedom argument has two legs:

1. **Resource separation** -- wave switches S1..Sk, the S0 wormhole
   plane and the control-flit paths use disjoint channel resources, and
   every circuit-plane resource is released in bounded time (probes
   backtrack, victims are torn down, phase 3 abandons the plane
   entirely), so the only place a circular wait can live is inside S0.

2. **S0 acyclicity** -- the wormhole routing function underneath has an
   acyclic (extended) channel-dependency graph: Dally & Seitz dimension
   order on meshes and hypercubes, dateline VC classes on tori, and
   Duato-style adaptive routing whose *escape* subfunction is acyclic.

This module checks both legs **statically**, from topology + routing +
protocol configuration alone, with no simulation: it walks every
(src, dst) *endpoint* pair's route exactly as the runtime router would
(the class/dateline discipline is queried from the routing object
itself, so analyzer and runtime cannot drift), builds the
channel-dependency graph over
``(node, port, vc_class)`` vertices, and reports any cycle together with
the offending channel chain.  For adaptive routing the *extended* CDG is
built: escape-channel dependencies are chained across adaptive
intermediate hops, which is exactly the indirect-dependency closure
Duato's theorem requires to be acyclic.

``assume_classes=1`` deliberately analyses a torus while ignoring its
dateline discipline -- the classic cyclic configuration -- which is how
the tests (and CI) prove the analyzer actually finds cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.topology import build_topology
from repro.topology.base import Topology
from repro.wormhole.routing import (
    AdaptiveRouting,
    RoutingFunction,
    make_routing,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.config import NetworkConfig


@dataclass(frozen=True)
class Channel:
    """One CDG vertex: a directed link on one virtual-channel class."""

    node: int
    port: int
    vc_class: int

    def describe(self, topology: Topology) -> str:
        nbr = topology.neighbor(self.node, self.port)
        to = topology.node_label(nbr) if nbr is not None else "?"
        return (
            f"{topology.node_label(self.node)}"
            f"--{topology.port_label(self.port)}/c{self.vc_class}-->{to}"
        )


@dataclass
class SeparationCheck:
    """One line of the resource-separation checklist."""

    name: str
    passed: bool
    detail: str


@dataclass
class CDGReport:
    """Result of a static analysis run."""

    topology: str
    routing: str
    num_classes: int
    num_channels: int
    num_deps: int
    cycle: list[Channel] = field(default_factory=list)
    checks: list[SeparationCheck] = field(default_factory=list)

    @property
    def acyclic(self) -> bool:
        return not self.cycle

    @property
    def ok(self) -> bool:
        return self.acyclic and all(c.passed for c in self.checks)

    def cycle_chain(self, topology: Topology) -> str:
        """Human-readable offending channel chain."""
        return " -> ".join(ch.describe(topology) for ch in self.cycle)


# -- graph construction --------------------------------------------------

Edges = dict[Channel, set[Channel]]


def _add_edge(edges: Edges, src: Channel | None, dst: Channel) -> None:
    edges.setdefault(dst, set())
    if src is not None and src != dst:
        edges.setdefault(src, set()).add(dst)


def _walk_deterministic(
    routing: RoutingFunction, src: int, dst: int, num_classes: int,
    edges: Edges,
) -> None:
    """Add the dependency chain of the unique deterministic route."""
    topology = routing.topology
    node, bits = src, 0
    prev: Channel | None = None
    while node != dst:
        port = topology.dor_port(node, dst)
        chan = Channel(
            node, port,
            routing.hop_class(node, port, bits, num_classes=num_classes),
        )
        _add_edge(edges, prev, chan)
        prev = chan
        bits = routing.hop_bits(node, port, bits)
        nxt = topology.neighbor(node, port)
        assert nxt is not None
        node = nxt


def _walk_adaptive_escape(
    routing: RoutingFunction, src: int, dst: int, num_classes: int,
    edges: Edges,
) -> None:
    """Add *extended* escape-channel dependencies over all minimal routes.

    A worm may take adaptive channels freely and fall through to the
    escape (dimension-order) channel at any hop.  Because the worm's body
    holds its whole path, a later escape channel depends on every earlier
    one; chaining each escape use to the next along a route yields the
    same transitive closure, so the DFS carries only the *last* escape
    channel.  States are memoised on (node, dateline bits, last escape).
    """
    topology = routing.topology
    seen: set[tuple[int, int, Channel | None]] = set()
    stack: list[tuple[int, int, Channel | None]] = [(src, 0, None)]
    while stack:
        node, bits, last = stack.pop()
        if node == dst or (node, bits, last) in seen:
            continue
        seen.add((node, bits, last))
        # Escape alternative: the dimension-order hop on the escape class.
        esc_port = topology.dor_port(node, dst)
        esc = Channel(
            node, esc_port,
            routing.hop_class(node, esc_port, bits, num_classes=num_classes),
        )
        _add_edge(edges, last, esc)
        nxt = topology.neighbor(node, esc_port)
        assert nxt is not None
        stack.append((nxt, routing.hop_bits(node, esc_port, bits), esc))
        # Adaptive alternatives: any minimal hop, escape chain unchanged.
        for port in topology.minimal_ports(node, dst):
            nbr = topology.neighbor(node, port)
            if nbr is None:
                continue
            stack.append((nbr, routing.hop_bits(node, port, bits), last))


def build_cdg(
    topology: Topology,
    routing,
    *,
    assume_classes: int | None = None,
) -> Edges:
    """Build the (extended) channel-dependency graph of a routing function.

    ``assume_classes`` overrides the VC-class count used by the analysis
    (e.g. ``1`` on a torus ignores the dateline discipline -- the
    deliberately-cyclic configuration used to validate the analyzer).
    """
    num_classes = (
        routing.num_classes if assume_classes is None else assume_classes
    )
    if num_classes < 1:
        raise ConfigError(f"assume_classes must be >= 1, got {assume_classes}")
    if assume_classes is not None and assume_classes > routing.num_classes:
        # The class discipline is pinned by the topology: fullmesh and the
        # unidirectional MIN (and mesh/hypercube) define exactly one VC
        # class, a torus exactly two.  hop_class() can never emit a class
        # the discipline does not define, so analysing with *more* classes
        # than the topology pins would silently produce the same graph
        # relabelled -- reject instead of composing wrongly.
        raise ConfigError(
            f"assume_classes={assume_classes} exceeds the "
            f"{routing.num_classes} VC class(es) {routing.topology!r} "
            "pins; only reducing the class count (e.g. 1 to ignore "
            "torus datelines) is a meaningful override"
        )
    edges: Edges = {}
    adaptive = isinstance(routing, AdaptiveRouting)
    # Only endpoint pairs route messages; on topologies with dedicated
    # switching elements (MINs) the switches never source or sink worms,
    # and including them would add dependencies no run can create.
    for src in topology.endpoints():
        for dst in topology.endpoints():
            if src == dst:
                continue
            if adaptive:
                _walk_adaptive_escape(routing, src, dst, num_classes, edges)
            else:
                _walk_deterministic(routing, src, dst, num_classes, edges)
    return edges


def find_cycle(edges: Edges) -> list[Channel]:
    """Return one dependency cycle as a channel chain, or [] if acyclic."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {v: WHITE for v in edges}
    path: list[Channel] = []

    def dfs(start: Channel) -> list[Channel]:
        stack: list[tuple[Channel, iter]] = [(start, iter(sorted(
            edges.get(start, ()), key=lambda c: (c.node, c.port, c.vc_class)
        )))]
        color[start] = GREY
        path.append(start)
        while stack:
            vertex, it = stack[-1]
            advanced = False
            for nxt in it:
                if color[nxt] == GREY:
                    return path[path.index(nxt):] + [nxt]
                if color[nxt] == WHITE:
                    color[nxt] = GREY
                    path.append(nxt)
                    stack.append((nxt, iter(sorted(
                        edges.get(nxt, ()),
                        key=lambda c: (c.node, c.port, c.vc_class),
                    ))))
                    advanced = True
                    break
            if not advanced:
                color[vertex] = BLACK
                path.pop()
                stack.pop()
        return []

    for vertex in sorted(edges, key=lambda c: (c.node, c.port, c.vc_class)):
        if color[vertex] == WHITE:
            cycle = dfs(vertex)
            if cycle:
                return cycle
    return []


# -- the full protocol-level check ---------------------------------------


def _separation_checks(config: "NetworkConfig", routing) -> list[SeparationCheck]:
    """The resource-separation leg of Theorems 1-2, from configuration."""
    checks: list[SeparationCheck] = []
    wave = config.wave
    if wave is not None:
        checks.append(SeparationCheck(
            "plane_disjointness", True,
            f"{wave.num_switches} wave switch(es) + S0 own disjoint "
            "physical channel sets; probes, circuits and worms never "
            "contend for the same channel",
        ))
        checks.append(SeparationCheck(
            "bounded_probe_work", wave.misroute_budget >= 0,
            f"MB-{wave.misroute_budget} probes release every reserved "
            "channel on backtrack and do bounded work (Theorem 3)",
        ))
        checks.append(SeparationCheck(
            "escape_to_s0", True,
            "CLRP phase 3 / CARP fallback abandon the circuit planes for "
            "S0, so circuit-plane waits never become permanent",
        ))
    checks.append(SeparationCheck(
        "control_flits_sunk", True,
        "acks, releases and teardowns are consumed at network interfaces "
        "and never wait on wormhole credits",
    ))
    if config_topology(config).num_vc_classes > 1:
        need = routing.num_classes
        checks.append(SeparationCheck(
            "dateline_vcs", config.wormhole.vcs >= need,
            f"dateline discipline needs >= {need} VCs "
            f"(configured: {config.wormhole.vcs})",
        ))
    return checks


def runtime_replay_check(
    topology: Topology, routing: RoutingFunction, edges: Edges
) -> SeparationCheck:
    """Replay real routes through the runtime router against the CDG.

    The analyzer walks routes via :meth:`hop_class`/:meth:`hop_bits`; the
    runtime router goes through :meth:`candidates`/:meth:`note_hop` with a
    live header flit.  The two code paths share the dateline discipline by
    construction, but "cannot drift" is worth a machine check: every
    channel the runtime would occupy along a route must be a vertex of
    the analyzer's graph with the same VC class.  For adaptive routing
    the escape tier is replayed (the adaptive tier has no per-VC class
    discipline to drift).  Any missing channel fails the config, which
    turns ``repro verify-cdg --all`` red instead of green-washing an
    analyzer/runtime divergence.
    """
    from repro.wormhole.flit import Flit

    vertices: set[Channel] = set(edges)
    for outs in edges.values():
        vertices.update(outs)
    num_classes = routing.num_classes
    replayed = 0
    for src in topology.endpoints():
        for dst in topology.endpoints():
            if src == dst:
                continue
            head = Flit(0, 0, is_head=True, is_tail=True, dst=dst)
            node = src
            while node != dst:
                tiers = routing.candidates(node, dst, head)
                escape_tier = tiers[-1]  # DOR: only tier; adaptive: escape
                for port, vcs in escape_tier:
                    for vc in vcs:
                        chan = Channel(node, port, vc % num_classes)
                        if chan not in vertices:
                            return SeparationCheck(
                                "runtime_replay", False,
                                f"runtime channel "
                                f"{chan.describe(topology)} (route "
                                f"{src}->{dst}) missing from the CDG: "
                                "analyzer and router drifted",
                            )
                        replayed += 1
                # Advance along the escape path exactly as a worm
                # committed to it would, updating the header history.
                port, _vcs = escape_tier[0]
                routing.note_hop(node, port, head)
                nxt = topology.neighbor(node, port)
                assert nxt is not None
                node = nxt
    return SeparationCheck(
        "runtime_replay", True,
        f"{replayed} runtime channel uses replayed through "
        "candidates()/note_hop() all match the analyzer's graph",
    )


def config_topology(config: "NetworkConfig") -> Topology:
    return build_topology(config.topology, config.dims)


def analyze_config(
    config: "NetworkConfig", *, assume_classes: int | None = None
) -> CDGReport:
    """Run the full static check for one network configuration."""
    topology = config_topology(config)
    routing = make_routing(
        config.wormhole.routing, topology, config.wormhole.vcs
    )
    edges = build_cdg(topology, routing, assume_classes=assume_classes)
    checks = _separation_checks(config, routing)
    if assume_classes is None:
        # Replay only when the analysis models the runtime discipline
        # verbatim; under a counterfactual class count the runtime would
        # legitimately use channels the analysed graph omits.
        checks.append(runtime_replay_check(topology, routing, edges))
    report = CDGReport(
        topology=repr(topology),
        routing=type(routing).__name__,
        num_classes=(
            routing.num_classes if assume_classes is None else assume_classes
        ),
        num_channels=len(edges),
        num_deps=sum(len(v) for v in edges.values()),
        cycle=find_cycle(edges),
        checks=checks,
    )
    return report


def format_report(report: CDGReport, topology: Topology) -> str:
    """Render a report the way ``repro verify-cdg`` prints it."""
    kind = "extended CDG" if report.routing == "AdaptiveRouting" else "CDG"
    lines = [
        f"{kind}: {report.topology} / {report.routing} "
        f"({report.num_classes} VC class(es)): "
        f"{report.num_channels} channels, {report.num_deps} dependencies",
    ]
    if report.acyclic:
        lines.append("  acyclic: no channel-wait cycle exists (Theorems 1-2)")
    else:
        lines.append(
            f"  CYCLE of {len(report.cycle) - 1} channels: "
            + report.cycle_chain(topology)
        )
    for check in report.checks:
        mark = "ok" if check.passed else "FAIL"
        lines.append(f"  [{mark}] {check.name}: {check.detail}")
    return "\n".join(lines)
