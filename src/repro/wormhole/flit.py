"""Flits: the flow-control units of wormhole switching.

A message travelling through S0 is a *worm* of flits: one header carrying
the routing information, zero or more body flits, and a tail that releases
the channels the worm holds.  Single-flit messages are their own header
and tail.

The header carries a small amount of mutable routing state
(``dateline_bits``), mirroring real header phits that record which torus
datelines the worm has crossed so far; the dateline discipline that makes
torus routing deadlock-free reads those bits (see
:mod:`repro.wormhole.routing`).
"""

from __future__ import annotations

# Sentinel output-port index meaning "deliver to the local node" (the
# "from/to local processor" path in Fig. 1).  Used as a port index one past
# the last physical port; routers translate it per topology.
EJECT_PORT = -1

# Sentinel input-port index for flits entering from the local injection
# queue rather than from a neighbour.
INJECT_PORT = -2

# Sentinel output-port index marking a poisoned route: every candidate
# output for the worm is faulty, so the router drains and discards its
# flits (one per cycle, crediting upstream) instead of blocking forever.
DROP_PORT = -3


class Flit:
    """One flit of a wormhole message.

    Attributes:
        msg_id: id of the owning message.
        index: position within the message (0 = header).
        is_head: True for the header flit.
        is_tail: True for the last flit (a 1-flit message is both).
        dst: destination node (meaningful on the header; copied to all
            flits for cheap invariant checks).
        arrival: cycle at which the flit was enqueued into its current
            buffer.  A flit may not advance in the cycle it arrived.
        dateline_bits: bitmask over dimensions, set when the worm crosses
            the corresponding dateline (headers only; body flits keep 0).
    """

    __slots__ = ("msg_id", "index", "is_head", "is_tail", "dst", "arrival",
                 "dateline_bits")

    def __init__(
        self,
        msg_id: int,
        index: int,
        is_head: bool,
        is_tail: bool,
        dst: int,
    ) -> None:
        self.msg_id = msg_id
        self.index = index
        self.is_head = is_head
        self.is_tail = is_tail
        self.dst = dst
        self.arrival = -1
        self.dateline_bits = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        if self.is_head and self.is_tail:
            kind = "HT"
        return f"Flit(msg={self.msg_id}, #{self.index}{kind}, dst={self.dst})"


def make_worm(msg_id: int, dst: int, length: int) -> list[Flit]:
    """Build the flit sequence for a message of ``length`` flits.

    ``length`` counts all flits including the header, matching how the
    paper quotes message lengths ("128 flits").
    """
    if length < 1:
        raise ValueError(f"message length must be >= 1 flit, got {length}")
    return [
        Flit(msg_id, i, is_head=(i == 0), is_tail=(i == length - 1), dst=dst)
        for i in range(length)
    ]
