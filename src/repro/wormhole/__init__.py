"""Wormhole switching substrate: the S0 subsystem of the wave router.

This is a flit-level, cycle-accurate model of the classic wormhole router
of Fig. 1 in the paper: input-queued virtual channels, credit-based flow
control, a crossbar arbitrated per output physical channel, and either
deterministic dimension-order routing or Duato-style minimal adaptive
routing with escape channels.

Blocked worms hold their buffers and stall in place -- the contention
behaviour whose cost motivates wave switching in the first place.
"""

from repro.wormhole.flit import EJECT_PORT, Flit
from repro.wormhole.router import InputVC, OutputVC, WormholeRouter
from repro.wormhole.routing import (
    AdaptiveRouting,
    DimensionOrderRouting,
    RoutingFunction,
    make_routing,
)

__all__ = [
    "AdaptiveRouting",
    "DimensionOrderRouting",
    "EJECT_PORT",
    "Flit",
    "InputVC",
    "OutputVC",
    "RoutingFunction",
    "WormholeRouter",
    "make_routing",
]
