"""The S0 wormhole router: input VC queues, crossbar, credit flow control.

Faithful to Fig. 1 of the paper at flit granularity:

* every physical input channel is split into ``w`` virtual channels, each
  with its own flit buffer (``buffer_depth`` flits);
* routing happens once per worm, on the header, at the head of its input
  VC; body flits inherit the header's (output port, output VC);
* the crossbar moves at most one flit per *input* physical channel and one
  flit per *output* physical channel per cycle (virtual channels
  time-multiplex the physical link as in Dally's virtual-channel flow
  control [7]);
* credit-based backpressure: a flit may only be sent when the downstream
  input VC has a free buffer slot; blocked worms sit in place holding
  their channels -- the wormhole contention that wave switching's circuits
  bypass.

Timing: a flit enqueued at cycle ``t`` may move again at ``t + 1``
(1 cycle/hop pipelining); a header may be *routed* from cycle
``t + router_delay`` on, so ``router_delay > 1`` charges extra per-hop
latency to headers only.

Sharing contract with the vectorized backend
(:class:`~repro.network.vectorized.VectorizedCore`): the flit deques,
``_active`` sets, ``_rr`` dicts and ``link_flits`` lists are held by the
core *by reference* and must keep their identity (mutate in place, never
rebind); the scalar route/credit/ownership state (``InputVC.route``/
``msg``, ``OutputVC.credits``/``owner``, ``eject_owner``, ``_va_rr``)
is core-owned while attached and written back on detach/materialize.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.errors import ProtocolError
from repro.sim.config import WormholeConfig
from repro.sim.events import EventKind, EventLog
from repro.sim.stats import StatsCollector
from repro.topology.base import Topology
from repro.topology.faults import FaultSet
from repro.wormhole.flit import DROP_PORT, EJECT_PORT, Flit
from repro.wormhole.routing import RoutingFunction

if TYPE_CHECKING:  # pragma: no cover
    pass


class InputVC:
    """One input virtual channel: a flit FIFO plus the worm's route."""

    __slots__ = ("port", "vc", "buffer", "route", "msg")

    def __init__(self, port: int, vc: int) -> None:
        self.port = port
        self.vc = vc
        self.buffer: deque[Flit] = deque()
        # (out_port, out_vc) of the worm currently at the buffer head;
        # None when the head flit is an unrouted header (or buffer empty).
        self.route: tuple[int, int] | None = None
        # msg_id of the routed worm (None whenever route is None); lets
        # fault handling identify which messages cross a dead link.
        self.msg: int | None = None

    def head(self) -> Flit | None:
        return self.buffer[0] if self.buffer else None

    def occupancy(self) -> int:
        return len(self.buffer)


class OutputVC:
    """Output-side virtual channel state: ownership and credits."""

    __slots__ = ("port", "vc", "owner", "credits", "max_credits")

    def __init__(self, port: int, vc: int, credits: int) -> None:
        self.port = port
        self.vc = vc
        # (in_port, in_vc) of the worm that holds this output VC, or None.
        self.owner: tuple[int, int] | None = None
        self.credits = credits
        self.max_credits = credits


class WormholeRouter:
    """One node's S0 router.

    The network wires routers together after construction via
    :meth:`connect`; the local processor side is reached through
    :meth:`inject_flit` (injection queue) and the ``deliver`` callback
    (ejection channel).
    """

    def __init__(
        self,
        node: int,
        topology: Topology,
        config: WormholeConfig,
        routing: RoutingFunction,
        stats: StatsCollector,
        deliver: Callable[[Flit, int], None],
        faults: FaultSet | None = None,
    ) -> None:
        self.node = node
        self.topology = topology
        self.config = config
        self.routing = routing
        self.stats = stats
        self.deliver = deliver
        self.faults = faults
        w = config.vcs
        ports = topology.num_ports
        self.inject_port = ports  # input-side index of the injection queue
        # Input VCs: physical ports 0..ports-1 plus the injection port.
        self.inputs: list[list[InputVC]] = [
            [InputVC(p, v) for v in range(w)] for p in range(ports + 1)
        ]
        # Output VCs for physical ports; ejection tracked separately below.
        self.outputs: list[list[OutputVC]] = [
            [OutputVC(p, v, config.buffer_depth) for v in range(w)]
            for p in range(ports)
        ]
        # Ejection: one physical delivery channel, w VCs, no credit limit
        # (the NI always consumes -- the standard consumption assumption).
        self.eject_owner: list[tuple[int, int] | None] = [None] * w
        # Wiring: downstream[port] = (router, its input port) or None.
        self.downstream: list[tuple["WormholeRouter", int] | None] = [None] * ports
        # Upstream credit targets: for each input (port, vc), the upstream
        # OutputVC to credit when a flit leaves the buffer.
        self.upstream: list[list[OutputVC | None]] = [
            [None] * w for _ in range(ports + 1)
        ]
        self._active: set[tuple[int, int]] = set()  # input VCs with flits
        # Active-set registry (ActivityTracker.active_routers) this router
        # registers with on the empty<->non-empty transitions of _active;
        # None for routers driven standalone in unit tests.
        self.active_set: set[int] | None = None
        # NI registry (ActivityTracker.active_nis): the local NI parks
        # itself when its injection backlog is blocked on buffer space,
        # so whenever a flit leaves an injection-row buffer the router
        # re-registers the NI to pump again next cycle.
        self.ni_active_set: set[int] | None = None
        self._rr: dict[int, int] = {}  # per-out-port round-robin pointer
        self._va_rr = 0  # VC-allocation rotation for adaptive fairness
        # Called (msg_id, node, cycle, reason) when a worm is poisoned
        # because every candidate output is faulty; wired by the network
        # so the loss is recorded centrally.
        self.drop_sink: Callable[[int, int, int, str], None] | None = None
        # Flits transmitted per output physical port (link utilization).
        self.link_flits: list[int] = [0] * ports
        # Optional event trace (set by Network.attach_event_log).  Only
        # head/tail flits emit, so a traced run records worm *extent*
        # movement without a record per body flit.
        self.log: EventLog | None = None

    # -- wiring ----------------------------------------------------------

    def connect(self, port: int, downstream: "WormholeRouter", their_port: int) -> None:
        """Attach this router's output ``port`` to a neighbour's input port."""
        self.downstream[port] = (downstream, their_port)
        for vc in range(self.config.vcs):
            downstream.upstream[their_port][vc] = self.outputs[port][vc]

    # -- local processor interface ----------------------------------------

    def injection_space(self, vc: int) -> int:
        """Free flit slots in injection VC ``vc``."""
        return self.config.buffer_depth - self.inputs[self.inject_port][vc].occupancy()

    def inject_flit(self, flit: Flit, vc: int, cycle: int) -> None:
        """Enqueue one flit from the local NI into the injection queue."""
        if self.injection_space(vc) <= 0:
            raise ProtocolError(
                f"injection VC {vc} full at node {self.node}; "
                "caller must respect injection_space()"
            )
        self._enqueue(flit, self.inject_port, vc, cycle)

    # -- internals ---------------------------------------------------------

    def _enqueue(self, flit: Flit, port: int, vc: int, cycle: int) -> None:
        flit.arrival = cycle
        if not self._active and self.active_set is not None:
            self.active_set.add(self.node)
        self.inputs[port][vc].buffer.append(flit)
        self._active.add((port, vc))

    def _free_output_vc(
        self, options: list[tuple[int, tuple[int, ...]]]
    ) -> tuple[int, int] | None:
        """Pick a free output VC among candidate options.

        Prefers, among free VCs, the one with the most credits (helps
        adaptive routing spread load); breaks ties by a rotating offset so
        no port is systematically favoured.
        """
        best: tuple[int, int] | None = None
        best_key = -1
        n = len(options)
        if n == 0:
            return None
        start = self._va_rr % n
        for i in range(n):
            port, vcs = options[(start + i) % n]
            if self.faults is not None and self.faults.is_faulty(self.node, port):
                continue
            if self.downstream[port] is None:
                continue
            for vc in vcs:
                out = self.outputs[port][vc]
                if out.owner is None and out.credits > best_key:
                    best = (port, vc)
                    best_key = out.credits
        return best

    def route_phase(self, cycle: int) -> None:
        """Route-compute + VC-allocate every eligible header (RC/VA)."""
        delay = self.config.router_delay
        for key in list(self._active):
            port, vc = key
            ivc = self.inputs[port][vc]
            head = ivc.head()
            if head is None or not head.is_head or ivc.route is not None:
                continue
            if cycle < head.arrival + delay:
                continue
            if head.dst == self.node:
                # Claim an ejection VC (worm atomicity on the delivery path).
                granted = None
                for ev in range(self.config.vcs):
                    if self.eject_owner[ev] is None:
                        granted = ev
                        break
                if granted is None:
                    self.stats.bump("wormhole.eject_vc_stall")
                    continue
                self.eject_owner[granted] = key
                ivc.route = (EJECT_PORT, granted)
                ivc.msg = head.msg_id
                continue
            tiers = self.routing.candidates(self.node, head.dst, head)
            choice = None
            for tier in tiers:
                choice = self._free_output_vc(tier)
                if choice is not None:
                    break
            if choice is None:
                if self.faults is not None and self._all_routes_faulty(tiers):
                    # Every candidate output is dead: blocking would wedge
                    # this VC (and everything behind it) until a heal that
                    # may never come.  Poison the route; traversal drains
                    # the worm with a structured loss record.
                    ivc.route = (DROP_PORT, 0)
                    ivc.msg = head.msg_id
                    self.stats.bump("wormhole.worms_poisoned")
                    if self.drop_sink is not None:
                        self.drop_sink(head.msg_id, self.node, cycle, "no_route")
                    continue
                self.stats.bump("wormhole.va_stall")
                continue
            out_port, out_vc = choice
            self.outputs[out_port][out_vc].owner = key
            ivc.route = (out_port, out_vc)
            ivc.msg = head.msg_id
            self._va_rr += 1
            self.stats.bump("wormhole.headers_routed")

    def _all_routes_faulty(self, tiers) -> bool:
        """True when every connected candidate output port is faulty."""
        assert self.faults is not None
        saw_candidate = False
        for tier in tiers:
            for port, _vcs in tier:
                if self.downstream[port] is None:
                    continue
                saw_candidate = True
                if not self.faults.is_faulty(self.node, port):
                    return False
        return saw_candidate

    def traversal_phase(self, cycle: int) -> int:
        """Switch + link traversal: move at most one flit per in/out port.

        Returns the number of flits moved (the network's progress signal).
        """
        if not self._active:
            return 0
        moved = 0
        used_inputs: set[int] = set()
        if self.faults is not None:
            moved += self._drain_poisoned(cycle, used_inputs)
        # Gather requests per output port.
        requests: dict[int, list[tuple[int, int]]] = {}
        for key in self._active:
            port, vc = key
            ivc = self.inputs[port][vc]
            if ivc.route is None:
                continue
            head = ivc.head()
            if head is None or head.arrival >= cycle:
                continue
            out_port, out_vc = ivc.route
            if out_port == DROP_PORT:
                continue  # drained by _drain_poisoned
            if out_port != EJECT_PORT:
                if self.outputs[out_port][out_vc].credits <= 0:
                    self.stats.bump("wormhole.credit_stall")
                    continue
            requests.setdefault(out_port, []).append(key)
        w = self.config.vcs
        for out_port, reqs in requests.items():
            # Round-robin arbitration among requesting input VCs.
            reqs.sort(key=lambda k: k[0] * w + k[1])
            ptr = self._rr.get(out_port, 0)
            reqs = [
                k for k in reqs
                if k[0] not in used_inputs
            ]
            if not reqs:
                continue
            winner = min(
                reqs,
                key=lambda k: ((k[0] * w + k[1]) - ptr)
                % ((self.topology.num_ports + 1) * w),
            )
            self._rr[out_port] = (winner[0] * w + winner[1] + 1) % (
                (self.topology.num_ports + 1) * w
            )
            used_inputs.add(winner[0])
            self._move_flit(winner, cycle)
            moved += 1
        return moved

    def _drain_poisoned(self, cycle: int, used_inputs: set[int]) -> int:
        """Discard one flit per poisoned worm (DROP routes), crediting
        upstream exactly as a real traversal would."""
        dropped = 0
        for key in list(self._active):
            port, vc = key
            ivc = self.inputs[port][vc]
            if ivc.route is None or ivc.route[0] != DROP_PORT:
                continue
            head = ivc.head()
            if head is None or head.arrival >= cycle:
                continue
            flit = ivc.buffer.popleft()
            if not ivc.buffer:
                self._active.discard(key)
                if not self._active and self.active_set is not None:
                    self.active_set.discard(self.node)
            up = self.upstream[port][vc]
            if up is not None:
                up.credits += 1
                if up.credits > up.max_credits:
                    raise ProtocolError(
                        f"credit overflow on node {self.node} input ({port},{vc})"
                    )
            elif port == self.inject_port and self.ni_active_set is not None:
                self.ni_active_set.add(self.node)
            self.stats.bump("wormhole.flits_dropped")
            if flit.is_tail:
                ivc.route = None
                ivc.msg = None
            used_inputs.add(port)
            dropped += 1
        return dropped

    def _move_flit(self, key: tuple[int, int], cycle: int) -> None:
        port, vc = key
        ivc = self.inputs[port][vc]
        assert ivc.route is not None
        out_port, out_vc = ivc.route
        flit = ivc.buffer.popleft()
        if not ivc.buffer:
            self._active.discard(key)
            if not self._active and self.active_set is not None:
                self.active_set.discard(self.node)
        # Credit back to the upstream output VC feeding this buffer.
        up = self.upstream[port][vc]
        if up is not None:
            up.credits += 1
            if up.credits > up.max_credits:
                raise ProtocolError(
                    f"credit overflow on node {self.node} input ({port},{vc})"
                )
        elif port == self.inject_port and self.ni_active_set is not None:
            self.ni_active_set.add(self.node)
        if out_port == EJECT_PORT:
            self.deliver(flit, cycle)
            if flit.is_tail:
                self.eject_owner[out_vc] = None
                ivc.route = None
                ivc.msg = None
            self.stats.bump("wormhole.flits_ejected")
            return
        if flit.is_head:
            self.routing.note_hop(self.node, out_port, flit)
        out = self.outputs[out_port][out_vc]
        out.credits -= 1
        down = self.downstream[out_port]
        assert down is not None, "routed to an unconnected port"
        router, their_port = down
        router._enqueue(flit, their_port, out_vc, cycle)
        self.link_flits[out_port] += 1
        self.stats.bump("wormhole.flits_moved")
        if self.log is not None and (flit.is_head or flit.is_tail):
            self.log.emit(
                cycle,
                EventKind.WORM_HEAD_ADVANCE if flit.is_head
                else EventKind.WORM_TAIL_ADVANCE,
                self.node, flit.msg_id, port=out_port, to=router.node,
            )
        if flit.is_tail:
            out.owner = None
            ivc.route = None
            ivc.msg = None

    # -- fault handling ----------------------------------------------------

    def worms_routed_via(self, out_port: int) -> set[int]:
        """msg_ids of worms currently routed through output ``out_port``."""
        out: set[int] = set()
        for row in self.inputs:
            for ivc in row:
                if ivc.route is not None and ivc.route[0] == out_port:
                    assert ivc.msg is not None
                    out.add(ivc.msg)
        return out

    def purge_message(self, msg_id: int) -> int:
        """Remove every flit of ``msg_id`` from this router.

        Credits upstream per removed flit and releases any output VC or
        ejection channel the worm holds, so the post-purge state satisfies
        the credit-conservation invariant.  Returns flits removed.
        """
        removed = 0
        for row in self.inputs:
            for ivc in row:
                if ivc.buffer and any(f.msg_id == msg_id for f in ivc.buffer):
                    kept = [f for f in ivc.buffer if f.msg_id != msg_id]
                    gone = len(ivc.buffer) - len(kept)
                    # In place, not a fresh deque: the vectorized core
                    # holds this buffer by reference.
                    ivc.buffer.clear()
                    ivc.buffer.extend(kept)
                    up = self.upstream[ivc.port][ivc.vc]
                    if up is not None:
                        up.credits += gone
                        if up.credits > up.max_credits:
                            raise ProtocolError(
                                f"credit overflow purging msg {msg_id} at "
                                f"node {self.node} input ({ivc.port},{ivc.vc})"
                            )
                    elif (ivc.port == self.inject_port
                          and self.ni_active_set is not None):
                        self.ni_active_set.add(self.node)
                    removed += gone
                if ivc.msg == msg_id and ivc.route is not None:
                    key = (ivc.port, ivc.vc)
                    out_port, out_vc = ivc.route
                    if out_port == EJECT_PORT:
                        if self.eject_owner[out_vc] == key:
                            self.eject_owner[out_vc] = None
                    elif out_port >= 0:
                        out = self.outputs[out_port][out_vc]
                        if out.owner == key:
                            out.owner = None
                    ivc.route = None
                    ivc.msg = None
                if not ivc.buffer:
                    self._active.discard((ivc.port, ivc.vc))
        if not self._active and self.active_set is not None:
            self.active_set.discard(self.node)
        return removed

    # -- introspection (verification / debugging) -------------------------

    def busy(self) -> bool:
        return bool(self._active)

    def occupancy(self) -> int:
        """Total flits buffered in this router."""
        return sum(
            self.inputs[p][v].occupancy() for p, v in self._active
        )

    def blocked_worms(self, cycle: int) -> list[dict]:
        """Describe every worm that wanted to move this cycle but could not.

        Used by the deadlock detector to build the wait-for graph.  Each
        entry reports the input VC the worm head occupies, its routed
        output (if any), and why it is stalled.
        """
        out = []
        for key in self._active:
            port, vc = key
            ivc = self.inputs[port][vc]
            head = ivc.head()
            if head is None:
                continue
            entry = {
                "node": self.node,
                "in_port": port,
                "in_vc": vc,
                "msg_id": head.msg_id,
                "route": ivc.route,
                "dst": head.dst,
            }
            if ivc.route is None and head.is_head:
                entry["reason"] = "unrouted"
                out.append(entry)
            elif ivc.route is not None and ivc.route[0] not in (
                EJECT_PORT, DROP_PORT
            ):
                op, ov = ivc.route
                if self.outputs[op][ov].credits <= 0:
                    entry["reason"] = "no_credit"
                    out.append(entry)
        return out
