"""Wormhole routing functions: deterministic DOR and Duato-style adaptive.

The paper requires only that "the routing algorithm used for wormhole
switching is deadlock-free" (Theorems 1 and 2 lean on it).  We provide the
two families its reference list points at:

* **Dimension-order routing** (Dally & Seitz [5]): acyclic channel
  dependencies on meshes and hypercubes with one VC class; on tori the
  *dateline* discipline splits each dimension's ring into two VC classes
  (class 1 after crossing the wrap link), breaking the ring cycle.

* **Minimal adaptive routing** per Duato's methodology [8, 9]: any number
  of *adaptive* VCs usable on every minimal direction, plus *escape* VCs
  restricted to dimension-order routing.  Cyclic dependencies among the
  adaptive channels are harmless because every blocked worm can always
  fall through to the acyclic escape subnetwork.

A routing function maps ``(node, dst, header)`` to *tiers* of
``(out_port, candidate_vcs)`` options: the allocator exhausts tier 0
(adaptive channels) before considering tier 1 (escape channels).  VC
indices are concrete (not classes) so the allocator stays trivial.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigError, RoutingError
from repro.topology.base import Topology
from repro.wormhole.flit import Flit

Candidate = tuple[int, tuple[int, ...]]  # (out_port, vc indices in preference order)


class RoutingFunction(ABC):
    """Base class for wormhole routing functions."""

    def __init__(self, topology: Topology, num_vcs: int) -> None:
        self.topology = topology
        self.num_vcs = num_vcs
        self.num_classes = self._required_classes()
        if num_vcs < self.min_vcs():
            raise ConfigError(
                f"{type(self).__name__} on {topology!r} needs >= "
                f"{self.min_vcs()} virtual channels, got {num_vcs}"
            )

    def _required_classes(self) -> int:
        """Deadlock-avoidance VC classes demanded by the topology."""
        return self.topology.num_vc_classes

    def min_vcs(self) -> int:
        return self._required_classes()

    def _class_vcs(self, vc_class: int, pool: tuple[int, int]) -> tuple[int, ...]:
        """All VC indices in ``[pool[0], pool[1])`` carrying ``vc_class``.

        Classes are interleaved: VC ``i`` carries class ``i % num_classes``,
        so extra VCs beyond the class count replicate the classes and add
        bandwidth without altering the deadlock argument.
        """
        lo, hi = pool
        return tuple(
            v for v in range(lo, hi) if (v - lo) % self.num_classes == vc_class
        )

    def hop_class(
        self, node: int, port: int, bits: int, *, num_classes: int | None = None
    ) -> int:
        """VC class for taking ``port`` at ``node`` given dateline history.

        ``bits`` is the header's dateline-bit mask.  This is the single
        source of the class discipline: the runtime router uses it via
        :meth:`_dateline_class` and the static CDG analyzer calls it
        directly (optionally overriding ``num_classes`` to analyse the
        deliberately-underprovisioned configuration).
        """
        classes = self.num_classes if num_classes is None else num_classes
        if classes == 1:
            return 0
        topo = self.topology
        crossed = bool(bits & (1 << topo.dateline_bit(node, port)))
        if topo.crosses_dateline(node, port):
            crossed = True
        return 1 if crossed else 0

    def hop_bits(self, node: int, port: int, bits: int) -> int:
        """Dateline-bit mask after committing to a hop."""
        topo = self.topology
        if topo.crosses_dateline(node, port):
            bits |= 1 << topo.dateline_bit(node, port)
        return bits

    def _dateline_class(self, node: int, port: int, head: Flit) -> int:
        """VC class for taking ``port`` at ``node``, given header history."""
        return self.hop_class(node, port, head.dateline_bits)

    def note_hop(self, node: int, port: int, head: Flit) -> None:
        """Update header state after the worm commits to a hop.

        Must be called exactly once per header link traversal; keeps the
        dateline bits consistent with the class the worm occupies.
        """
        head.dateline_bits = self.hop_bits(node, port, head.dateline_bits)

    @abstractmethod
    def candidates(self, node: int, dst: int, head: Flit) -> list[list[Candidate]]:
        """Tiers of legal (port, vcs) options for a header bound to ``dst``.

        The allocator only considers tier ``i + 1`` when no option in tier
        ``i`` has a free virtual channel.  ``node != dst``; ejection is
        handled by the router before routing.
        """


class DimensionOrderRouting(RoutingFunction):
    """Deterministic dimension-order routing over all VCs of the class."""

    def candidates(self, node: int, dst: int, head: Flit) -> list[list[Candidate]]:
        if node == dst:
            raise RoutingError(f"routing called at destination {node}")
        port = self.topology.dor_port(node, dst)
        vc_class = self._dateline_class(node, port, head)
        vcs = self._class_vcs(vc_class, (0, self.num_vcs))
        if not vcs:
            raise RoutingError(
                f"no VC carries class {vc_class} with {self.num_vcs} VCs"
            )
        return [[(port, vcs)]]


class AdaptiveRouting(RoutingFunction):
    """Minimal fully adaptive routing with dimension-order escape channels.

    VC layout: indices ``[0, num_classes)`` are the escape channels
    (dimension-order restricted, dateline classes on tori); indices
    ``[num_classes, num_vcs)`` are adaptive and usable towards any minimal
    direction.  Per Duato's theory the connected, acyclic escape
    subfunction makes the whole routing function deadlock-free.
    """

    def min_vcs(self) -> int:
        # At least one adaptive VC on top of the escape classes; otherwise
        # the function degenerates to DOR and should be configured as such.
        return self._required_classes() + 1

    def candidates(self, node: int, dst: int, head: Flit) -> list[list[Candidate]]:
        if node == dst:
            raise RoutingError(f"routing called at destination {node}")
        topo = self.topology
        adaptive_vcs = tuple(range(self.num_classes, self.num_vcs))
        adaptive_tier: list[Candidate] = [
            (port, adaptive_vcs) for port in topo.minimal_ports(node, dst)
        ]
        # Escape tier: dimension-order port, class-restricted VC.
        esc_port = topo.dor_port(node, dst)
        esc_class = self._dateline_class(node, esc_port, head)
        esc_vcs = self._class_vcs(esc_class, (0, self.num_classes))
        return [adaptive_tier, [(esc_port, esc_vcs)]]


def make_routing(
    name: str, topology: Topology, num_vcs: int
) -> RoutingFunction:
    """Build a routing function from its configuration name."""
    if name == "dor":
        return DimensionOrderRouting(topology, num_vcs)
    if name == "adaptive":
        return AdaptiveRouting(topology, num_vcs)
    raise ConfigError(f"unknown routing function {name!r}")


def wormhole_path_available(
    routing: RoutingFunction,
    src: int,
    dst: int,
    faults,
) -> bool:
    """Can a worm from ``src`` reach ``dst`` through S0 despite faults?

    Deterministic routing has exactly one path: walk it.  Adaptive routing
    may use any minimal path: breadth-first search over the minimal-path
    DAG restricted to healthy links.  Used by the NI to classify messages
    as *undeliverable* instead of wedging the injection queue forever --
    deterministic wormhole routing is simply not fault-tolerant, which is
    precisely the contrast the paper draws with MB-m probes.
    """
    if faults is None or src == dst:
        return True
    topo = routing.topology
    if isinstance(routing, DimensionOrderRouting):
        node = src
        while node != dst:
            port = topo.dor_port(node, dst)
            if faults.is_faulty(node, port):
                return False
            node = topo.neighbor(node, port)
            assert node is not None
        return True
    # Adaptive: any healthy minimal path will do.  NOTE: escape channels
    # are dimension-order restricted, so strictly a worm *committed* to
    # escape might still hit a fault; minimal adaptive re-decides per hop,
    # and the router's allocator skips faulty ports, so reachability over
    # the minimal DAG is the right criterion.
    frontier = {src}
    seen = {src}
    while frontier:
        nxt: set[int] = set()
        for node in frontier:
            if node == dst:
                return True
            for port in topo.minimal_ports(node, dst):
                if faults.is_faulty(node, port):
                    continue
                nbr = topo.neighbor(node, port)
                if nbr is not None and nbr not in seen:
                    seen.add(nbr)
                    nxt.add(nbr)
        frontier = nxt
    return dst in seen
