"""Static link-fault injection.

The paper highlights that the MB-m probe protocol "is very resilient to
static faults in the network" (section 2, citing Gaughan & Yalamanchili).
Experiment E7 reproduces that: a :class:`FaultSet` marks directed links as
dead; probes treat them exactly like busy channels (and search around
them), while deterministic wormhole routing simply cannot use them.

Faults are *static*: fixed before the run, never healed, never growing.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import TopologyError
from repro.sim.rng import SimRandom
from repro.topology.base import Topology


class FaultSet:
    """A set of faulty directed links ``(node, port)``.

    Faults are injected symmetrically by default (both directions of the
    physical link die together), matching a severed cable or dead
    transceiver pair.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._faulty: set[tuple[int, int]] = set()

    def __len__(self) -> int:
        return len(self._faulty)

    def __contains__(self, link: tuple[int, int]) -> bool:
        return link in self._faulty

    def is_faulty(self, node: int, port: int) -> bool:
        return (node, port) in self._faulty

    def fail_link(self, node: int, port: int, *, bidirectional: bool = True) -> None:
        """Mark a link faulty; with ``bidirectional`` also kill the reverse."""
        nbr = self.topology.neighbor(node, port)
        if nbr is None:
            raise TopologyError(f"({node}, {port}) is not a connected link")
        self._faulty.add((node, port))
        if bidirectional:
            self._faulty.add((nbr, self.topology.reverse_port(node, port)))

    def fail_random_links(
        self, fraction: float, rng: SimRandom, *, keep_connected: bool = True
    ) -> int:
        """Fail a fraction of the physical (bidirectional) links at random.

        Args:
            fraction: share of physical links to kill, in [0, 1).
            rng: randomness source (stream ``"faults"``).
            keep_connected: refuse fault choices that would isolate a node
                completely (every message to it would be undeliverable,
                which makes liveness experiments meaningless).

        Returns:
            Number of physical links actually failed.
        """
        if not 0 <= fraction < 1:
            raise TopologyError(f"fraction must be in [0, 1), got {fraction}")
        topo = self.topology
        # Physical links counted once: keep (node, port) with node < nbr,
        # or the canonical side for asymmetric orderings.
        physical = []
        for node, port in topo.links():
            nbr = topo.neighbor(node, port)
            assert nbr is not None
            if (node, port) < (nbr, topo.reverse_port(node, port)):
                physical.append((node, port))
        target = int(len(physical) * fraction)
        stream = rng.stream("faults")
        stream.shuffle(physical)
        failed = 0
        degree = {
            n: len(topo.connected_ports(n)) for n in range(topo.num_nodes)
        }
        for node, port in physical:
            if failed >= target:
                break
            nbr = topo.neighbor(node, port)
            assert nbr is not None
            if keep_connected and (degree[node] <= 1 or degree[nbr] <= 1):
                continue
            self.fail_link(node, port)
            degree[node] -= 1
            degree[nbr] -= 1
            failed += 1
        return failed

    def healthy_ports(self, node: int, ports: Iterable[int]) -> list[int]:
        """Filter an iterable of ports down to the non-faulty ones."""
        return [p for p in ports if (node, p) not in self._faulty]
