"""Link-fault injection: static fault sets and dynamic fault schedules.

The paper highlights that the MB-m probe protocol "is very resilient to
static faults in the network" (section 2, citing Gaughan & Yalamanchili).
Experiment E7 reproduces that: a :class:`FaultSet` marks directed links as
dead; probes treat them exactly like busy channels (and search around
them), while deterministic wormhole routing simply cannot use them.

:class:`FaultSchedule` extends the static model to *dynamic* faults:
links killed (and optionally healed) at scheduled cycles mid-run, which
is what exposes the interesting protocol behaviour -- established wave
circuits crossing the dead link must be torn down end-to-end, in-flight
probes must abort and search around, and wormhole flits on the link are
dropped (experiment E7b).  The schedule only maintains *membership*; the
protocol reactions live in :class:`~repro.network.network.Network`, which
drains due events at the top of every cycle.
"""

from __future__ import annotations

import bisect
import heapq
from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.errors import TopologyError
from repro.observe.logbook import get_logger
from repro.sim.rng import SimRandom
from repro.topology.base import Topology

KILL = "kill"
HEAL = "heal"

logger = get_logger("faults")


def derive_fault_rng(seed: int) -> SimRandom:
    """The single fault-randomness derivation for every entry point.

    The CLI, the orchestrator's :func:`~repro.orchestrate.runner.execute_job`
    and the analysis sweeps all derive fault randomness through this
    helper, so one master seed yields one fault set (or one fault
    schedule) no matter which entry point built it.  Static fault sets
    draw from the child's ``"faults"`` stream (inside
    :meth:`FaultSet.fail_random_links`); dynamic schedules draw from the
    independent ``"fault-schedule"`` stream, so a run can carry both
    without correlation.
    """
    return SimRandom(seed).fork("faults")


def _still_connected(topology: Topology, faulty: set[tuple[int, int]]) -> bool:
    """True iff the healthy directed graph stays strongly connected.

    For bidirectional topologies a single forward BFS suffices; with
    unidirectional links (MINs) reachability *to* node 0 is checked too,
    over the reversed healthy adjacency.
    """
    total = topology.num_nodes
    seen = bytearray(total)
    seen[0] = 1
    reached = 1
    queue: deque[int] = deque([0])
    while queue:
        node = queue.popleft()
        for port in topology.connected_ports(node):
            if (node, port) in faulty:
                continue
            nbr = topology.neighbor(node, port)
            if nbr is not None and not seen[nbr]:
                seen[nbr] = 1
                reached += 1
                queue.append(nbr)
    if reached != total:
        return False
    if topology.bidirectional:
        return True
    preds: list[list[int]] = [[] for _ in range(total)]
    for node, port in topology.links():
        if (node, port) in faulty:
            continue
        nbr = topology.neighbor(node, port)
        assert nbr is not None
        preds[nbr].append(node)
    seen = bytearray(total)
    seen[0] = 1
    reached = 1
    queue = deque([0])
    while queue:
        node = queue.popleft()
        for src in preds[node]:
            if not seen[src]:
                seen[src] = 1
                reached += 1
                queue.append(src)
    return reached == total


def physical_links(topology: Topology) -> list[tuple[int, int]]:
    """Each physical link exactly once.

    On bidirectional topologies the two directions of a link are one
    physical entity (a cable), represented by the canonical-direction
    ``(node, port)`` pair; on unidirectional topologies every directed
    link is its own physical entity.
    """
    if not topology.bidirectional:
        return list(topology.links())
    out = []
    for node, port in topology.links():
        nbr = topology.neighbor(node, port)
        assert nbr is not None
        if (node, port) < (nbr, topology.reverse_port(node, port)):
            out.append((node, port))
    return out


class FaultSet:
    """A set of faulty directed links ``(node, port)``.

    On bidirectional topologies faults are injected symmetrically by
    default (both directions of the physical link die together, matching
    a severed cable or dead transceiver pair); on unidirectional
    topologies each directed link dies alone.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._faulty: set[tuple[int, int]] = set()

    def __len__(self) -> int:
        return len(self._faulty)

    def __contains__(self, link: tuple[int, int]) -> bool:
        return link in self._faulty

    def is_faulty(self, node: int, port: int) -> bool:
        return (node, port) in self._faulty

    def _symmetric(self, bidirectional: bool | None) -> bool:
        return (
            self.topology.bidirectional
            if bidirectional is None
            else bidirectional
        )

    def fail_link(
        self, node: int, port: int, *, bidirectional: bool | None = None
    ) -> None:
        """Mark a link faulty; symmetric kill on bidirectional topologies.

        ``bidirectional`` overrides the topology's default (e.g. a single
        dead transmitter on an otherwise healthy cable).
        """
        nbr = self.topology.neighbor(node, port)
        if nbr is None:
            raise TopologyError(f"({node}, {port}) is not a connected link")
        self._faulty.add((node, port))
        if self._symmetric(bidirectional):
            self._faulty.add((nbr, self.topology.reverse_port(node, port)))

    def heal_link(
        self, node: int, port: int, *, bidirectional: bool | None = None
    ) -> None:
        """Remove a link from the fault set (no-op if it was healthy)."""
        nbr = self.topology.neighbor(node, port)
        if nbr is None:
            raise TopologyError(f"({node}, {port}) is not a connected link")
        self._faulty.discard((node, port))
        if self._symmetric(bidirectional):
            self._faulty.discard((nbr, self.topology.reverse_port(node, port)))

    def _physical_directions(self, node: int, port: int) -> set[tuple[int, int]]:
        """All directed links that die with the physical link ``(node, port)``."""
        links = {(node, port)}
        if self.topology.bidirectional:
            nbr = self.topology.neighbor(node, port)
            assert nbr is not None
            links.add((nbr, self.topology.reverse_port(node, port)))
        return links

    def would_disconnect(self, node: int, port: int) -> bool:
        """Would killing this physical link partition the healthy graph?"""
        if self.topology.neighbor(node, port) is None:
            raise TopologyError(f"({node}, {port}) is not a connected link")
        candidate = self._physical_directions(node, port)
        return not _still_connected(self.topology, self._faulty | candidate)

    def fail_random_links(
        self, fraction: float, rng: SimRandom, *, keep_connected: bool = True
    ) -> int:
        """Fail a fraction of the physical (bidirectional) links at random.

        Args:
            fraction: share of physical links to kill, in [0, 1).
            rng: randomness source (stream ``"faults"``).
            keep_connected: refuse fault choices that would partition the
                healthy graph (checked with a BFS per candidate, not just
                node degree -- degree >= 1 everywhere still allows cutting
                a mesh in half, which makes liveness experiments
                meaningless).

        Returns:
            Number of physical links actually failed.
        """
        if not 0 <= fraction < 1:
            raise TopologyError(f"fraction must be in [0, 1), got {fraction}")
        topo = self.topology
        physical = physical_links(topo)
        target = int(len(physical) * fraction)
        stream = rng.stream("faults")
        stream.shuffle(physical)
        failed = 0
        degree = {
            n: len(topo.connected_ports(n)) for n in range(topo.num_nodes)
        }
        for node, port in physical:
            if failed >= target:
                break
            nbr = topo.neighbor(node, port)
            assert nbr is not None
            if keep_connected:
                # Degree is a cheap pre-filter; the BFS is the real check.
                if degree[node] <= 1 or degree[nbr] <= 1:
                    continue
                if self.would_disconnect(node, port):
                    continue
            self.fail_link(node, port)
            degree[node] -= 1
            if topo.bidirectional:
                degree[nbr] -= 1
            failed += 1
        logger.debug(
            "fault set: failed %d/%d physical links (target %d, fraction %.3f)",
            failed, len(physical), target, fraction,
        )
        return failed

    def healthy_ports(self, node: int, ports: Iterable[int]) -> list[int]:
        """Filter an iterable of ports down to the non-faulty ones."""
        return [p for p in ports if (node, p) not in self._faulty]


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled membership change of the fault set.

    Ordering is by ``(cycle, kind, node, port)``; since ``"heal"`` sorts
    before ``"kill"``, a same-cycle heal+kill pair applies heal first
    (deterministically, though schedules should avoid the case).
    """

    cycle: int
    kind: str  # KILL or HEAL
    node: int
    port: int


class FaultSchedule(FaultSet):
    """A :class:`FaultSet` whose membership changes at scheduled cycles.

    The schedule is a sorted event list with a cursor.  The network
    drains due events at the top of each cycle via :meth:`pop_due` and
    applies each with :meth:`apply` (membership) before running its own
    protocol reaction (teardown, purge).  Keeping application separate
    from reaction lets the schedule be unit-tested standalone and lets
    the simulator's idle fast-forward stop exactly at
    :meth:`next_event_cycle`.
    """

    def __init__(
        self, topology: Topology, events: Iterable[FaultEvent] = ()
    ) -> None:
        super().__init__(topology)
        self._events: list[FaultEvent] = sorted(events)
        self._cursor = 0
        self.applied: list[FaultEvent] = []
        self.last_kill_cycle = -1
        for ev in self._events:
            self._validate(ev)

    def _validate(self, ev: FaultEvent) -> None:
        if ev.cycle < 0:
            raise TopologyError(f"fault event cycle must be >= 0, got {ev.cycle}")
        if ev.kind not in (KILL, HEAL):
            raise TopologyError(f"unknown fault event kind {ev.kind!r}")
        if self.topology.neighbor(ev.node, ev.port) is None:
            raise TopologyError(
                f"({ev.node}, {ev.port}) is not a connected link"
            )

    def _insert(self, ev: FaultEvent) -> None:
        self._validate(ev)
        pos = bisect.bisect_right(self._events, ev)
        if pos < self._cursor:
            raise TopologyError(
                f"cannot schedule {ev.kind} at cycle {ev.cycle}: events up "
                f"to cycle {self._events[self._cursor - 1].cycle} already applied"
            )
        self._events.insert(pos, ev)

    def schedule_kill(self, cycle: int, node: int, port: int) -> None:
        self._insert(FaultEvent(cycle, KILL, node, port))

    def schedule_heal(self, cycle: int, node: int, port: int) -> None:
        self._insert(FaultEvent(cycle, HEAL, node, port))

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        return tuple(self._events)

    @property
    def pending(self) -> int:
        """Events not yet applied."""
        return len(self._events) - self._cursor

    def next_event_cycle(self) -> int | None:
        if self._cursor >= len(self._events):
            return None
        return self._events[self._cursor].cycle

    def has_due(self, cycle: int) -> bool:
        nxt = self.next_event_cycle()
        return nxt is not None and nxt <= cycle

    def pop_due(self, cycle: int) -> list[FaultEvent]:
        """Advance the cursor past events due at ``cycle``; membership is
        NOT changed -- the caller applies each with :meth:`apply` so it
        can interleave its protocol reaction per event."""
        out = []
        while (
            self._cursor < len(self._events)
            and self._events[self._cursor].cycle <= cycle
        ):
            out.append(self._events[self._cursor])
            self._cursor += 1
        return out

    def apply(self, ev: FaultEvent) -> None:
        """Apply one event's membership change."""
        if ev.kind == KILL:
            self.fail_link(ev.node, ev.port)
            if ev.cycle > self.last_kill_cycle:
                self.last_kill_cycle = ev.cycle
        else:
            self.heal_link(ev.node, ev.port)
        self.applied.append(ev)

    @classmethod
    def random_campaign(
        cls,
        topology: Topology,
        *,
        mtbf: float,
        rng: SimRandom,
        horizon: int,
        mttr: int = 0,
        keep_connected: bool = True,
    ) -> "FaultSchedule":
        """Generate a randomized kill/heal campaign.

        Args:
            mtbf: network-wide mean cycles between link kills (exponential
                inter-arrival times), *not* per-link.  Smaller = harsher.
            rng: randomness source (stream ``"fault-schedule"``); derive
                via :func:`derive_fault_rng` for cross-entry-point
                reproducibility.
            horizon: no kills scheduled at or after this cycle.
            mttr: cycles until a killed link heals; ``0`` = permanent.
            keep_connected: skip kills that would partition the healthy
                graph given the links already dead at that time.
        """
        if mtbf < 1:
            raise TopologyError(f"mtbf must be >= 1 cycle, got {mtbf}")
        if mttr < 0:
            raise TopologyError(f"mttr must be >= 0, got {mttr}")
        stream = rng.stream("fault-schedule")
        sched = cls(topology)
        physical = sorted(physical_links(topology))

        def directions(link: tuple[int, int]) -> set[tuple[int, int]]:
            node, port = link
            dirs = {link}
            if topology.bidirectional:
                nbr = topology.neighbor(node, port)
                assert nbr is not None
                dirs.add((nbr, topology.reverse_port(node, port)))
            return dirs
        dead: set[tuple[int, int]] = set()
        heals: list[tuple[int, tuple[int, int]]] = []
        t = 0
        while True:
            t += max(1, round(stream.expovariate(1.0 / mtbf)))
            if t >= horizon:
                break
            while heals and heals[0][0] <= t:
                _, link = heapq.heappop(heals)
                dead.discard(link)
            candidates = [link for link in physical if link not in dead]
            if keep_connected:
                directed: set[tuple[int, int]] = set()
                for link in dead:
                    directed |= directions(link)
                candidates = [
                    link
                    for link in candidates
                    if _still_connected(topology, directed | directions(link))
                ]
            if not candidates:
                continue
            node, port = stream.choice(candidates)
            sched.schedule_kill(t, node, port)
            dead.add((node, port))
            if mttr > 0:
                sched.schedule_heal(t + mttr, node, port)
                heapq.heappush(heals, (t + mttr, (node, port)))
        logger.debug(
            "fault campaign: %d events over horizon %d (mtbf %.1f, mttr %d)",
            len(sched.events), horizon, mtbf, mttr,
        )
        return sched
