"""k-ary n-fly butterfly: a unidirectional multistage network (MIN).

Multistage interconnection networks (Stergiou's multi-lane MINs are the
modern reference point) route every terminal-to-terminal message through
``n`` stages of ``k x k`` switches.  This is the destination-tag
butterfly: the switch chosen at stage ``s`` replaces digit ``s`` of the
current address with the output port taken, so the unique minimal route
simply spells out the destination's digits.

Node numbering keeps terminals first -- ids ``0..k^n - 1`` are the
injecting/consuming endpoints (so workload generators sized by
``num_endpoints`` need no remapping) -- followed by the ``n * k^(n-1)``
switches stage by stage.  All links are **unidirectional**: a terminal
feeds stage 0, stage ``s`` feeds stage ``s + 1``, and stage ``n - 1``
feeds the terminals, closing the graph into a single strongly connected
cycle of stages.  Because endpoint routes only ever move forward through
the stages, the channel dependency graph is acyclic with a single VC
class; there are no datelines.

``reverse_port`` reports the *input-port index* at the downstream node
(the wiring the network constructor and the wave plane need); there is
no back-link, so ``return_port`` is ``None`` on every stage link.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.base import Topology


class Butterfly(Topology):
    """Unidirectional k-ary n-fly with terminals-first node numbering."""

    bidirectional = False

    def __init__(self, radix: int, stages: int) -> None:
        if radix < 2:
            raise TopologyError(f"butterfly radix must be >= 2, got {radix}")
        if stages < 1:
            raise TopologyError(f"butterfly needs >= 1 stage, got {stages}")
        self.radix = radix
        self.stages = stages
        self.num_terminals = radix**stages
        self.switches_per_stage = radix ** (stages - 1)
        num_nodes = self.num_terminals + stages * self.switches_per_stage
        super().__init__(num_nodes, (radix,) * stages)
        # Digit s of an n-digit base-k address has weight k^(n-1-s).
        self._digit_w = tuple(
            radix ** (stages - 1 - s) for s in range(stages)
        )
        self._num_ports = radix
        # Wiring tables: _nbr[node][port] -> downstream node (or None for
        # the unconnected terminal port slots); _in_port[node][port] ->
        # input-port index this link lands on at the downstream node.
        self._nbr: list[list[int | None]] = []
        self._in_port: list[list[int | None]] = []
        for t in range(self.num_terminals):
            row_n: list[int | None] = [None] * radix
            row_i: list[int | None] = [None] * radix
            row_n[0] = self._switch_id(0, self._remove_digit(t, 0))
            row_i[0] = self._digit(t, 0)
            self._nbr.append(row_n)
            self._in_port.append(row_i)
        for s in range(stages):
            for r in range(self.switches_per_stage):
                row_n = []
                row_i = []
                for j in range(radix):
                    addr = self._insert_digit(r, s, j)
                    if s == stages - 1:
                        row_n.append(addr)  # back to the terminal
                        row_i.append(0)
                    else:
                        row_n.append(
                            self._switch_id(
                                s + 1, self._remove_digit(addr, s + 1)
                            )
                        )
                        row_i.append(self._digit(addr, s + 1))
                self._nbr.append(row_n)
                self._in_port.append(row_i)

    # -- address arithmetic ---------------------------------------------

    def _digit(self, addr: int, s: int) -> int:
        return (addr // self._digit_w[s]) % self.radix

    def _remove_digit(self, addr: int, s: int) -> int:
        w = self._digit_w[s]
        return (addr // (w * self.radix)) * w + addr % w

    def _insert_digit(self, row: int, s: int, value: int) -> int:
        w = self._digit_w[s]
        return ((row // w) * self.radix + value) * w + row % w

    def _switch_id(self, stage: int, row: int) -> int:
        return self.num_terminals + stage * self.switches_per_stage + row

    def is_terminal(self, node: int) -> bool:
        self.check_node(node)
        return node < self.num_terminals

    def switch_pos(self, node: int) -> tuple[int, int]:
        """(stage, row) of a switch node."""
        self.check_node(node)
        if node < self.num_terminals:
            raise TopologyError(f"node {node} is a terminal, not a switch")
        off = node - self.num_terminals
        return divmod(off, self.switches_per_stage)

    # -- wiring ---------------------------------------------------------

    @property
    def num_ports(self) -> int:
        return self._num_ports

    def neighbor(self, node: int, port: int) -> int | None:
        self.check_node(node)
        if not 0 <= port < self._num_ports:
            raise TopologyError(f"port {port} out of range")
        return self._nbr[node][port]

    def reverse_port(self, node: int, port: int) -> int:
        self.check_node(node)
        if self._nbr[node][port] is None:
            raise TopologyError(f"port {port} of node {node} is unconnected")
        in_port = self._in_port[node][port]
        assert in_port is not None
        return in_port

    # -- endpoints ------------------------------------------------------

    def endpoints(self) -> range:
        return range(self.num_terminals)

    # -- presentation ---------------------------------------------------

    def node_label(self, node: int) -> str:
        if node < self.num_terminals:
            return f"t{node}"
        stage, row = self.switch_pos(node)
        return f"s{stage}.{row}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Butterfly({self.radix}-ary {self.stages}-fly)"
