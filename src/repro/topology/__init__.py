"""Network topologies behind one registry: cubes, full mesh and MIN.

Nodes are integers ``0..N-1``; each node exposes numbered *ports*;
directed physical links are ``(node, port)`` pairs.  The Cartesian
family (mesh, torus, hypercube) lays nodes out row-major over the
configured dimension radices with two ports per dimension (port ``2d``
steps coordinate ``d`` up, ``2d + 1`` down; the hypercube collapses the
pair onto ``2d``).  ``fullmesh`` links every node pair directly, and
``min`` is a unidirectional k-ary n-fly butterfly whose endpoints are a
terminals-first id prefix -- see the per-module docstrings for each
port-numbering contract.

:class:`~repro.topology.faults.FaultSet` injects static link faults,
which the MB-m probe protocol of the paper is designed to tolerate
(experiment E7 in DESIGN.md).
"""

from typing import Callable

from repro.errors import TopologyError
from repro.topology.base import CartesianTopology, Topology, reverse_direction
from repro.topology.butterfly import Butterfly
from repro.topology.faults import (
    FaultEvent,
    FaultSchedule,
    FaultSet,
    derive_fault_rng,
)
from repro.topology.fullmesh import FullMesh
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus


def _build_hypercube(dims: tuple[int, ...]) -> Hypercube:
    # Guard the radices here, not only in NetworkConfig: a direct
    # build_topology("hypercube", (4, 4)) used to build a 4-node 2-cube,
    # silently discarding the radices.
    if any(d != 2 for d in dims):
        raise TopologyError(
            f"hypercube requires radix 2 in every dimension, got {dims}"
        )
    return Hypercube(len(dims))


def _build_fullmesh(dims: tuple[int, ...]) -> FullMesh:
    if len(dims) != 1:
        raise TopologyError(
            f"fullmesh takes a single dimension (the node count), got {dims}"
        )
    return FullMesh(dims[0])


def _build_min(dims: tuple[int, ...]) -> Butterfly:
    if len(set(dims)) != 1:
        raise TopologyError(
            f"min (k-ary n-fly) needs one radix for every stage, got {dims}"
        )
    return Butterfly(dims[0], len(dims))


TOPOLOGY_BUILDERS: dict[str, Callable[[tuple[int, ...]], Topology]] = {
    "mesh": Mesh,
    "torus": Torus,
    "hypercube": _build_hypercube,
    "fullmesh": _build_fullmesh,
    "min": _build_min,
}


def registered_topologies() -> tuple[str, ...]:
    """All buildable topology names (the property suite sweeps these)."""
    return tuple(sorted(TOPOLOGY_BUILDERS))


def build_topology(name: str, dims: tuple[int, ...]) -> Topology:
    """Construct a topology by configuration name.

    Args:
        name: one of :func:`registered_topologies` -- ``"mesh"``,
            ``"torus"``, ``"hypercube"``, ``"fullmesh"`` or ``"min"``.
        dims: radix per dimension.  ``fullmesh`` takes ``(num_nodes,)``;
            ``min`` takes ``(k,) * n`` for a k-ary n-fly.
    """
    builder = TOPOLOGY_BUILDERS.get(name)
    if builder is None:
        raise ValueError(f"unknown topology {name!r}")
    return builder(tuple(dims))


__all__ = [
    "Butterfly",
    "CartesianTopology",
    "FaultEvent",
    "FaultSchedule",
    "FaultSet",
    "FullMesh",
    "Hypercube",
    "Mesh",
    "TOPOLOGY_BUILDERS",
    "Topology",
    "Torus",
    "build_topology",
    "derive_fault_rng",
    "registered_topologies",
    "reverse_direction",
]
