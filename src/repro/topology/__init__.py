"""Network topologies: k-ary n-meshes, k-ary n-cubes (tori) and hypercubes.

Nodes are integers ``0..N-1`` laid out row-major over the configured
dimension radices.  Each node exposes numbered *ports*; directed physical
links are ``(node, port)`` pairs.  Port numbering is uniform across the
package: for dimension ``d``, port ``2d`` steps the coordinate up ("plus")
and port ``2d + 1`` steps it down ("minus"); the hypercube collapses the
pair onto port ``2d`` since radix-2 has a single neighbour per dimension.

:class:`~repro.topology.faults.FaultSet` injects static link faults, which
the MB-m probe protocol of the paper is designed to tolerate (experiment
E7 in DESIGN.md).
"""

from repro.topology.base import Topology, reverse_direction
from repro.topology.faults import (
    FaultEvent,
    FaultSchedule,
    FaultSet,
    derive_fault_rng,
)
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus


def build_topology(name: str, dims: tuple[int, ...]) -> Topology:
    """Construct a topology by configuration name.

    Args:
        name: ``"mesh"``, ``"torus"`` or ``"hypercube"``.
        dims: radix per dimension.
    """
    if name == "mesh":
        return Mesh(dims)
    if name == "torus":
        return Torus(dims)
    if name == "hypercube":
        return Hypercube(len(dims))
    raise ValueError(f"unknown topology {name!r}")


__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FaultSet",
    "Hypercube",
    "Mesh",
    "Topology",
    "Torus",
    "build_topology",
    "derive_fault_rng",
    "reverse_direction",
]
