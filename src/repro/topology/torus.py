"""k-ary n-cube (torus): mesh plus wrap-around links.

Wrap links close rings in every dimension, so dimension-order routing
needs the classic *dateline* discipline to stay deadlock-free: a message
starts each dimension on virtual-channel class 0 and moves to class 1
after crossing that dimension's dateline (we place the dateline on the
wrap link).  :meth:`Torus.crosses_dateline` exposes the predicate the
routing function needs.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.base import CartesianTopology, reverse_direction


class Torus(CartesianTopology):
    """k-ary n-cube with 2 ports per dimension and wrap-around links."""

    num_vc_classes = 2  # dateline classes

    def __init__(self, dims: tuple[int, ...]) -> None:
        super().__init__(dims)
        self._num_ports = 2 * self.n_dims
        self._nbr: list[list[int]] = []
        for node in range(self.num_nodes):
            coords = self.coords(node)
            row: list[int] = []
            for port in range(self._num_ports):
                d = port // 2
                step = 1 if port % 2 == 0 else -1
                c = (coords[d] + step) % self.dims[d]
                new_coords = list(coords)
                new_coords[d] = c
                row.append(self.node_at(tuple(new_coords)))
            self._nbr.append(row)

    def _wraps(self, dim: int) -> bool:
        return True

    @property
    def num_ports(self) -> int:
        return self._num_ports

    def neighbor(self, node: int, port: int) -> int | None:
        self.check_node(node)
        if not 0 <= port < self._num_ports:
            raise TopologyError(f"port {port} out of range")
        nbr = self._nbr[node][port]
        # A radix-2 ring would make plus and minus the same physical link;
        # keep both ports distinct but valid (parallel links), as radix-2
        # tori are normally expressed as hypercubes instead.
        return nbr

    def reverse_port(self, node: int, port: int) -> int:
        return reverse_direction(port)

    def crosses_dateline(self, node: int, port: int) -> bool:
        """True if taking ``port`` at ``node`` traverses the wrap link.

        The dateline of dimension ``d`` sits between coordinates
        ``radix - 1`` and ``0``.
        """
        d = port // 2
        c = self.coords(node)[d]
        if port % 2 == 0:  # plus direction
            return c == self.dims[d] - 1
        return c == 0

    def minimal_ports(self, node: int, dst: int) -> list[int]:
        self.check_node(dst)
        a = self.coords(node)
        b = self.coords(dst)
        out = []
        for d in range(self.n_dims):
            delta = (b[d] - a[d]) % self.dims[d]
            if delta == 0:
                continue
            radix = self.dims[d]
            if delta * 2 < radix:
                out.append(2 * d)
            elif delta * 2 > radix:
                out.append(2 * d + 1)
            else:  # exactly half-way: both directions are minimal
                out.append(2 * d)
                out.append(2 * d + 1)
        return out

    def dor_port(self, node: int, dst: int) -> int:
        """Deterministic DOR port: lowest unresolved dimension, shortest way.

        Half-way ties break towards plus so the path is a function of
        (node, dst) only -- a requirement for deterministic routing.
        """
        a = self.coords(node)
        b = self.coords(dst)
        for d in range(self.n_dims):
            delta = (b[d] - a[d]) % self.dims[d]
            if delta == 0:
                continue
            radix = self.dims[d]
            if delta * 2 <= radix:
                return 2 * d
            return 2 * d + 1
        raise TopologyError(f"dor_port called with node == dst == {node}")

    def distance(self, a: int, b: int) -> int:
        ca = self.coords(a)
        cb = self.coords(b)
        total = 0
        for d in range(self.n_dims):
            delta = abs(ca[d] - cb[d])
            total += min(delta, self.dims[d] - delta)
        return total
