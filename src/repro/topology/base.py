"""Abstract topology interface shared by mesh, torus and hypercube.

The interface is small on purpose: routers and probes only ever need
"who is over this port", "which ports make progress towards dst" and
"what is the dimension-order port".  Everything is precomputed where cheap
because these queries sit on the simulator's hot path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import reduce
from operator import mul

from repro.errors import TopologyError


def reverse_direction(port: int) -> int:
    """Return the opposite-direction port index for the 2-ports-per-dim scheme.

    Port ``2d`` (plus) pairs with ``2d + 1`` (minus) and vice versa.
    """
    return port ^ 1


class Topology(ABC):
    """Base class for all topologies.

    Subclasses fill in neighbour structure; the base provides coordinate
    arithmetic and common validation.
    """

    def __init__(self, dims: tuple[int, ...]) -> None:
        if not dims or any(d < 2 for d in dims):
            raise TopologyError(f"invalid dims {dims!r}")
        self.dims = tuple(dims)
        self.n_dims = len(dims)
        self.num_nodes = reduce(mul, dims, 1)
        # Row-major strides: coordinate d advances by _strides[d] node ids.
        strides = []
        acc = 1
        for d in reversed(dims):
            strides.append(acc)
            acc *= d
        self._strides = tuple(reversed(strides))
        self._coords: list[tuple[int, ...]] = [
            self._compute_coords(n) for n in range(self.num_nodes)
        ]

    # -- coordinates ----------------------------------------------------

    def _compute_coords(self, node: int) -> tuple[int, ...]:
        out = []
        for d in range(self.n_dims):
            out.append((node // self._strides[d]) % self.dims[d])
        return tuple(out)

    def coords(self, node: int) -> tuple[int, ...]:
        """Coordinates of a node (row-major layout)."""
        self.check_node(node)
        return self._coords[node]

    def node_at(self, coords: tuple[int, ...]) -> int:
        """Node id at the given coordinates."""
        if len(coords) != self.n_dims:
            raise TopologyError(
                f"expected {self.n_dims} coordinates, got {len(coords)}"
            )
        node = 0
        for d, (c, radix) in enumerate(zip(coords, self.dims)):
            if not 0 <= c < radix:
                raise TopologyError(f"coordinate {c} out of range for dim {d}")
            node += c * self._strides[d]
        return node

    def check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(
                f"node {node} out of range [0, {self.num_nodes})"
            )

    # -- structure ------------------------------------------------------

    @property
    @abstractmethod
    def num_ports(self) -> int:
        """Number of port slots per node (some may be unconnected)."""

    @abstractmethod
    def neighbor(self, node: int, port: int) -> int | None:
        """Node on the far side of ``port``, or None if unconnected."""

    @abstractmethod
    def reverse_port(self, node: int, port: int) -> int:
        """The port at ``neighbor(node, port)`` that leads back to ``node``."""

    @abstractmethod
    def minimal_ports(self, node: int, dst: int) -> list[int]:
        """All ports at ``node`` lying on some minimal path to ``dst``."""

    @abstractmethod
    def dor_port(self, node: int, dst: int) -> int:
        """The unique dimension-order-routing port towards ``dst``.

        Raises :class:`TopologyError` if ``node == dst``.
        """

    @abstractmethod
    def distance(self, a: int, b: int) -> int:
        """Minimal hop count between two nodes."""

    # -- derived helpers ------------------------------------------------

    def connected_ports(self, node: int) -> list[int]:
        """Ports of ``node`` that have a neighbour."""
        return [
            p for p in range(self.num_ports) if self.neighbor(node, p) is not None
        ]

    def links(self) -> list[tuple[int, int]]:
        """All directed links as ``(node, port)`` pairs."""
        out = []
        for node in range(self.num_nodes):
            for port in self.connected_ports(node):
                out.append((node, port))
        return out

    def diameter(self) -> int:
        """Maximum minimal distance over all node pairs.

        Computed from per-dimension extremes rather than all-pairs search;
        valid for all product topologies in this package.
        """
        return self.distance(0, self._farthest_from_zero())

    def _farthest_from_zero(self) -> int:
        coords = tuple(
            (d // 2) if self._wraps(dim) else (d - 1)
            for dim, d in enumerate(self.dims)
        )
        return self.node_at(coords)

    def _wraps(self, dim: int) -> bool:
        """Whether the given dimension has wrap-around links."""
        return False

    def port_dimension(self, port: int) -> int:
        """Dimension a port belongs to under the 2-per-dim scheme."""
        return port // 2

    def port_is_plus(self, port: int) -> bool:
        """True if the port steps its coordinate upward."""
        return port % 2 == 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shape = "x".join(str(d) for d in self.dims)
        return f"{type(self).__name__}({shape})"


def bisection_links(topology: "Topology") -> int:
    """Directed links crossing the canonical bisection of the machine.

    The bisection cuts dimension 0 at half its radix (the standard worst
    cut for k-ary n-cubes).  The paper's multi-chip discussion turns on
    this number: splitting each physical channel across ``k`` wave
    switches keeps the *aggregate* bisection bandwidth constant while
    multiplying the number of independently-reservable channels by ``k``.
    """
    half = topology.dims[0] // 2
    crossing = 0
    for node in range(topology.num_nodes):
        side = topology.coords(node)[0] < half
        for port in topology.connected_ports(node):
            nbr = topology.neighbor(node, port)
            assert nbr is not None
            if (topology.coords(nbr)[0] < half) != side:
                crossing += 1
    return crossing
