"""Graph-first topology abstraction.

Nodes are integers ``0..N-1``; each node exposes ``num_ports`` numbered
port slots; a directed physical link is a ``(node, port)`` pair with
:meth:`Topology.neighbor` naming its far side.  The base class derives
everything routers and probes need -- ``distance``, ``minimal_ports``,
``dor_port``, ``diameter`` -- from the adjacency alone via cached BFS,
so a new topology only has to describe its wiring.  Product topologies
(mesh, torus, hypercube) extend :class:`CartesianTopology`, which adds
the coordinate arithmetic and the 2-ports-per-dimension numbering plus
analytic overrides for the hot-path queries.

Two port-semantics accessors exist because links may be unidirectional
(multistage networks):

* :meth:`Topology.reverse_port` -- the *input-port index* the link lands
  on at the neighbour (what the network wiring and the wave-plane
  mapping need).  Defined for every connected link.
* :meth:`Topology.return_port` -- the neighbour's output port whose link
  leads *back*, or ``None`` when no such back-link exists (what U-turn
  avoidance needs).  On bidirectional topologies the two coincide.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from functools import reduce
from operator import mul

from repro.errors import TopologyError


def reverse_direction(port: int) -> int:
    """Return the opposite-direction port index for the 2-ports-per-dim scheme.

    Port ``2d`` (plus) pairs with ``2d + 1`` (minus) and vice versa.
    """
    return port ^ 1


class Topology(ABC):
    """Base class for all topologies: an explicit directed port graph.

    Subclasses fill in the wiring (``num_ports``, ``neighbor``); the base
    derives the routing oracle by BFS.  All derived queries are cached,
    so they are cheap enough for the simulator's hot path even without
    analytic overrides.
    """

    #: Every link has a same-channel reverse direction.  Unidirectional
    #: topologies (e.g. multistage networks) set this False, which turns
    #: off symmetric fault injection and reverse-direction reactions.
    bidirectional: bool = True

    #: True for product topologies with a coordinate system (``coords`` /
    #: ``node_at`` work and ports follow the 2-per-dimension scheme).
    cartesian: bool = False

    #: Virtual-channel classes the deadlock-avoidance discipline needs on
    #: this topology (2 for torus datelines, 1 otherwise).
    num_vc_classes: int = 1

    def __init__(self, num_nodes: int, dims: tuple[int, ...]) -> None:
        if num_nodes < 1:
            raise TopologyError(f"need >= 1 node, got {num_nodes}")
        if not dims:
            raise TopologyError("dims must be non-empty")
        self.num_nodes = num_nodes
        self.dims = tuple(dims)
        self.n_dims = len(self.dims)
        # Lazy caches for the BFS-derived oracle.
        self._cache_connected: list[list[int]] | None = None
        self._cache_dist_to: dict[int, list[int]] = {}
        self._cache_preds: list[list[tuple[int, int]]] | None = None
        self._cache_return: dict[tuple[int, int], int | None] = {}
        self._cache_diameter: int | None = None

    # -- wiring (subclass responsibility) -------------------------------

    @property
    @abstractmethod
    def num_ports(self) -> int:
        """Number of port slots per node (some may be unconnected)."""

    @abstractmethod
    def neighbor(self, node: int, port: int) -> int | None:
        """Node on the far side of ``port``, or None if unconnected."""

    def reverse_port(self, node: int, port: int) -> int:
        """Input-port index of this link at ``neighbor(node, port)``.

        For bidirectional topologies this is also the port that leads
        back (see :meth:`return_port`).  The default scans the
        neighbour's ports for one whose link returns here; topologies
        with unidirectional links or parallel links must override.
        """
        nbr = self.neighbor(node, port)
        if nbr is None:
            raise TopologyError(f"port {port} of node {node} is unconnected")
        for q in self.connected_ports(nbr):
            if self.neighbor(nbr, q) == node:
                return q
        raise TopologyError(
            f"no reverse port for ({node}, {port}); unidirectional "
            "topologies must override reverse_port with input-port wiring"
        )

    def return_port(self, node: int, port: int) -> int | None:
        """The neighbour's output port whose link leads back to ``node``.

        ``None`` when the link has no back-link (unidirectional stage
        links in a multistage network).
        """
        key = (node, port)
        if key not in self._cache_return:
            nbr = self.neighbor(node, port)
            if nbr is None:
                raise TopologyError(
                    f"port {port} of node {node} is unconnected"
                )
            found = None
            for q in self.connected_ports(nbr):
                if self.neighbor(nbr, q) == node:
                    found = q
                    break
            self._cache_return[key] = found
        return self._cache_return[key]

    # -- endpoints ------------------------------------------------------

    def endpoints(self) -> range:
        """Nodes that inject and consume traffic.

        Topologies with dedicated switching elements (multistage
        networks) override this; endpoints are always a contiguous id
        prefix ``0..num_endpoints-1`` so workload generators can size
        themselves by count alone.
        """
        return range(self.num_nodes)

    @property
    def num_endpoints(self) -> int:
        return len(self.endpoints())

    # -- deadlock-avoidance hooks ---------------------------------------

    def crosses_dateline(self, node: int, port: int) -> bool:
        """True if taking ``port`` at ``node`` crosses a dateline.

        Only ring-closing topologies (torus) have datelines; the routing
        function promotes a worm to VC class 1 after the crossing.
        """
        return False

    def dateline_bit(self, node: int, port: int) -> int:
        """Header-bit index recording a dateline crossing on this link."""
        return 0

    def switch_offset(self, node: int) -> int:
        """Deterministic per-node stagger for the CLRP Initial Switch.

        Neighbouring nodes should start their circuit searches on
        different wave switches (section 3.1's suggestion); any roughly
        neighbour-distinguishing integer works.
        """
        return node

    # -- derived helpers ------------------------------------------------

    def check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(
                f"node {node} out of range [0, {self.num_nodes})"
            )

    def connected_ports(self, node: int) -> list[int]:
        """Ports of ``node`` that have a neighbour (cached)."""
        if self._cache_connected is None:
            self._cache_connected = [
                [
                    p
                    for p in range(self.num_ports)
                    if self.neighbor(n, p) is not None
                ]
                for n in range(self.num_nodes)
            ]
        self.check_node(node)
        return self._cache_connected[node]

    def links(self) -> list[tuple[int, int]]:
        """All directed links as ``(node, port)`` pairs."""
        out = []
        for node in range(self.num_nodes):
            for port in self.connected_ports(node):
                out.append((node, port))
        return out

    # -- BFS-derived routing oracle -------------------------------------

    def _predecessors(self) -> list[list[tuple[int, int]]]:
        """Reverse adjacency: for each node, incoming ``(src, port)``."""
        if self._cache_preds is None:
            preds: list[list[tuple[int, int]]] = [
                [] for _ in range(self.num_nodes)
            ]
            for node, port in self.links():
                nbr = self.neighbor(node, port)
                assert nbr is not None
                preds[nbr].append((node, port))
            self._cache_preds = preds
        return self._cache_preds

    def _dist_to(self, dst: int) -> list[int]:
        """Hop counts from every node *to* ``dst`` (reverse BFS, cached)."""
        cached = self._cache_dist_to.get(dst)
        if cached is not None:
            return cached
        preds = self._predecessors()
        dist = [-1] * self.num_nodes
        dist[dst] = 0
        queue: deque[int] = deque([dst])
        while queue:
            node = queue.popleft()
            d = dist[node] + 1
            for src, _port in preds[node]:
                if dist[src] < 0:
                    dist[src] = d
                    queue.append(src)
        self._cache_dist_to[dst] = dist
        return dist

    def distance(self, a: int, b: int) -> int:
        """Minimal hop count from ``a`` to ``b``."""
        self.check_node(a)
        self.check_node(b)
        d = self._dist_to(b)[a]
        if d < 0:
            raise TopologyError(f"no path from {a} to {b}")
        return d

    def minimal_ports(self, node: int, dst: int) -> list[int]:
        """All ports at ``node`` lying on some minimal path to ``dst``."""
        self.check_node(node)
        self.check_node(dst)
        if node == dst:
            return []
        dist = self._dist_to(dst)
        here = dist[node]
        out = []
        for port in self.connected_ports(node):
            nbr = self.neighbor(node, port)
            assert nbr is not None
            if dist[nbr] == here - 1:
                out.append(port)
        return out

    def dor_port(self, node: int, dst: int) -> int:
        """The unique deterministic-routing port towards ``dst``.

        The graph default picks the lowest-numbered minimal port, which
        generalises dimension-order routing: on product topologies the
        lowest minimal port *is* the lowest unresolved dimension.
        Subclasses may override with the analytic rule.  Raises
        :class:`TopologyError` if ``node == dst``.
        """
        ports = self.minimal_ports(node, dst)
        if not ports:
            raise TopologyError(f"dor_port called with node == dst == {node}")
        return min(ports)

    def diameter(self) -> int:
        """Maximum minimal distance over all node pairs (exact, cached).

        Computed by breadth-first search (or the subclass's analytic
        ``distance``) over every pair -- never a product-topology
        shortcut, so irregular topologies cannot inherit a wrong answer.
        """
        if self._cache_diameter is None:
            self._cache_diameter = max(
                self.distance(a, b)
                for b in range(self.num_nodes)
                for a in range(self.num_nodes)
            )
        return self._cache_diameter

    # -- presentation ---------------------------------------------------

    def node_label(self, node: int) -> str:
        """Human-readable node name for reports and cycle chains."""
        return str(node)

    def port_label(self, port: int) -> str:
        """Human-readable port name for reports and cycle chains."""
        return f"p{port}"

    # -- bisection ------------------------------------------------------

    def bisection_nodes(self) -> set[int]:
        """One side of the canonical bisection cut.

        The graph default halves the id space; topologies with more
        structure override with their true worst cut.
        """
        return set(range(self.num_nodes // 2))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shape = "x".join(str(d) for d in self.dims)
        return f"{type(self).__name__}({shape})"


class CartesianTopology(Topology):
    """Product topologies: nodes on a grid, two ports per dimension.

    Nodes are laid out row-major over the dimension radices; for
    dimension ``d``, port ``2d`` steps the coordinate up ("plus") and
    port ``2d + 1`` steps it down ("minus").  Subclasses (mesh, torus,
    hypercube) keep analytic overrides for the hot-path queries; the
    BFS oracle of :class:`Topology` remains the semantic ground truth
    (asserted by the topology property suite).
    """

    cartesian = True

    def __init__(self, dims: tuple[int, ...]) -> None:
        if not dims or any(d < 2 for d in dims):
            raise TopologyError(f"invalid dims {dims!r}")
        super().__init__(reduce(mul, dims, 1), dims)
        # Row-major strides: coordinate d advances by _strides[d] node ids.
        strides = []
        acc = 1
        for d in reversed(dims):
            strides.append(acc)
            acc *= d
        self._strides = tuple(reversed(strides))
        self._coords: list[tuple[int, ...]] = [
            self._compute_coords(n) for n in range(self.num_nodes)
        ]

    # -- coordinates ----------------------------------------------------

    def _compute_coords(self, node: int) -> tuple[int, ...]:
        out = []
        for d in range(self.n_dims):
            out.append((node // self._strides[d]) % self.dims[d])
        return tuple(out)

    def coords(self, node: int) -> tuple[int, ...]:
        """Coordinates of a node (row-major layout)."""
        self.check_node(node)
        return self._coords[node]

    def node_at(self, coords: tuple[int, ...]) -> int:
        """Node id at the given coordinates."""
        if len(coords) != self.n_dims:
            raise TopologyError(
                f"expected {self.n_dims} coordinates, got {len(coords)}"
            )
        node = 0
        for d, (c, radix) in enumerate(zip(coords, self.dims)):
            if not 0 <= c < radix:
                raise TopologyError(f"coordinate {c} out of range for dim {d}")
            node += c * self._strides[d]
        return node

    # -- port scheme ----------------------------------------------------

    def port_dimension(self, port: int) -> int:
        """Dimension a port belongs to under the 2-per-dim scheme."""
        return port // 2

    def port_is_plus(self, port: int) -> bool:
        """True if the port steps its coordinate upward."""
        return port % 2 == 0

    def dateline_bit(self, node: int, port: int) -> int:
        return self.port_dimension(port)

    def switch_offset(self, node: int) -> int:
        # Neighbours differ by 1 in exactly one coordinate, so the
        # coordinate sum staggers adjacent Initial Switches.
        return sum(self.coords(node))

    def return_port(self, node: int, port: int) -> int | None:
        # Every Cartesian link is bidirectional; the back-link is the
        # same channel pair the wiring uses.
        return self.reverse_port(node, port)

    # -- legacy diameter shortcut ---------------------------------------

    def _farthest_from_zero(self) -> int:
        """Per-dimension-extremes diameter shortcut, valid only here.

        Kept as documentation of the product-topology fast path; the
        property suite asserts it agrees with the exact BFS diameter on
        every Cartesian topology.
        """
        coords = tuple(
            (d // 2) if self._wraps(dim) else (d - 1)
            for dim, d in enumerate(self.dims)
        )
        return self.node_at(coords)

    def _wraps(self, dim: int) -> bool:
        """Whether the given dimension has wrap-around links."""
        return False

    # -- presentation ---------------------------------------------------

    def node_label(self, node: int) -> str:
        return "(" + ",".join(str(c) for c in self.coords(node)) + ")"

    def port_label(self, port: int) -> str:
        sign = "+" if self.port_is_plus(port) else "-"
        return f"d{self.port_dimension(port)}{sign}"

    # -- bisection ------------------------------------------------------

    def bisection_nodes(self) -> set[int]:
        # Cut the *max-radix* dimension at half: the standard worst cut
        # for k-ary n-cubes.  Cutting a fixed dimension is wrong for
        # asymmetric shapes (a 2x8 mesh's dim-0 cut crosses 8 physical
        # links; the true bisection crosses 2).
        dim = max(range(self.n_dims), key=lambda d: self.dims[d])
        half = self.dims[dim] // 2
        return {
            node
            for node in range(self.num_nodes)
            if self.coords(node)[dim] < half
        }


def bisection_links(topology: "Topology") -> int:
    """Directed links crossing the canonical bisection of the machine.

    The paper's multi-chip discussion turns on this number: splitting
    each physical channel across ``k`` wave switches keeps the
    *aggregate* bisection bandwidth constant while multiplying the
    number of independently-reservable channels by ``k``.
    """
    left = topology.bisection_nodes()
    crossing = 0
    for node in range(topology.num_nodes):
        side = node in left
        for port in topology.connected_ports(node):
            nbr = topology.neighbor(node, port)
            assert nbr is not None
            if (nbr in left) != side:
                crossing += 1
    return crossing
