"""k-ary n-dimensional mesh (no wrap-around links).

Dimension-order routing on a mesh is deadlock-free with a single virtual
channel class because the channel dependency graph is acyclic (Dally &
Seitz 1987, reference [5] of the paper).
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.base import CartesianTopology, reverse_direction


class Mesh(CartesianTopology):
    """k-ary n-mesh with 2 ports per dimension (plus / minus)."""

    def __init__(self, dims: tuple[int, ...]) -> None:
        super().__init__(dims)
        self._num_ports = 2 * self.n_dims
        # Precompute neighbour table: _nbr[node][port] -> node | None.
        self._nbr: list[list[int | None]] = []
        for node in range(self.num_nodes):
            coords = self.coords(node)
            row: list[int | None] = []
            for port in range(self._num_ports):
                d = port // 2
                step = 1 if port % 2 == 0 else -1
                c = coords[d] + step
                if 0 <= c < self.dims[d]:
                    row.append(node + step * self._strides[d])
                else:
                    row.append(None)
            self._nbr.append(row)

    @property
    def num_ports(self) -> int:
        return self._num_ports

    def neighbor(self, node: int, port: int) -> int | None:
        self.check_node(node)
        if not 0 <= port < self._num_ports:
            raise TopologyError(f"port {port} out of range")
        return self._nbr[node][port]

    def reverse_port(self, node: int, port: int) -> int:
        if self.neighbor(node, port) is None:
            raise TopologyError(f"port {port} of node {node} is unconnected")
        return reverse_direction(port)

    def minimal_ports(self, node: int, dst: int) -> list[int]:
        self.check_node(dst)
        a = self.coords(node)
        b = self.coords(dst)
        out = []
        for d in range(self.n_dims):
            if b[d] > a[d]:
                out.append(2 * d)
            elif b[d] < a[d]:
                out.append(2 * d + 1)
        return out

    def dor_port(self, node: int, dst: int) -> int:
        a = self.coords(node)
        b = self.coords(dst)
        for d in range(self.n_dims):
            if b[d] > a[d]:
                return 2 * d
            if b[d] < a[d]:
                return 2 * d + 1
        raise TopologyError(f"dor_port called with node == dst == {node}")

    def distance(self, a: int, b: int) -> int:
        ca = self.coords(a)
        cb = self.coords(b)
        return sum(abs(x - y) for x, y in zip(ca, cb))
