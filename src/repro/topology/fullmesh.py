"""Fully connected topology: every node one hop from every other.

Modern switch radices make single-hop full-mesh fabrics practical at
rack scale, and routing on them is deadlock-free *without virtual
channels* (Cano et al., HOTI 2025): every route is a single channel, so
the channel dependency graph has no edges at all -- the CDG analyzer
verifies a ``fullmesh`` config with ``vcs=1`` as trivially acyclic.

Port numbering skips the self-loop: port ``p`` of node ``i`` connects to
node ``p`` when ``p < i`` and to node ``p + 1`` otherwise, giving every
node ``N - 1`` ports.  Diameter is 1, which inverts the circuit-reuse
economics the paper builds on: a wave circuit saves per-hop routing
latency, and with one hop there is almost none to save (experiment E8g).
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.base import Topology


class FullMesh(Topology):
    """N nodes, every pair directly linked (diameter 1)."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise TopologyError(f"fullmesh needs >= 2 nodes, got {num_nodes}")
        super().__init__(num_nodes, (num_nodes,))

    @property
    def num_ports(self) -> int:
        return self.num_nodes - 1

    def _port_to(self, node: int, dst: int) -> int:
        return dst if dst < node else dst - 1

    def neighbor(self, node: int, port: int) -> int | None:
        self.check_node(node)
        if not 0 <= port < self.num_ports:
            raise TopologyError(f"port {port} out of range")
        return port if port < node else port + 1

    def reverse_port(self, node: int, port: int) -> int:
        nbr = self.neighbor(node, port)
        assert nbr is not None
        return self._port_to(nbr, node)

    def return_port(self, node: int, port: int) -> int | None:
        return self.reverse_port(node, port)

    def minimal_ports(self, node: int, dst: int) -> list[int]:
        self.check_node(node)
        self.check_node(dst)
        if node == dst:
            return []
        return [self._port_to(node, dst)]

    def dor_port(self, node: int, dst: int) -> int:
        if node == dst:
            raise TopologyError(f"dor_port called with node == dst == {node}")
        return self._port_to(node, dst)

    def distance(self, a: int, b: int) -> int:
        self.check_node(a)
        self.check_node(b)
        return 0 if a == b else 1

    def diameter(self) -> int:
        return 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FullMesh({self.num_nodes})"
