"""Binary n-cube (hypercube).

Each node has one neighbour per dimension (coordinate flip), so we use one
port per dimension: port ``2d`` connects to ``node XOR (1 << d)`` and the
odd port slots are unconnected.  Keeping the 2-slots-per-dimension
numbering means every routing function can use
:meth:`~repro.topology.base.CartesianTopology.port_dimension` uniformly
across Cartesian topologies.

E-cube routing (resolve the lowest differing bit first) is deadlock-free
with a single virtual channel class, as for the mesh.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.base import CartesianTopology


class Hypercube(CartesianTopology):
    """n-dimensional binary hypercube with 2**n nodes."""

    def __init__(self, n_dims: int) -> None:
        if n_dims < 1:
            raise TopologyError(f"hypercube needs >= 1 dimension, got {n_dims}")
        super().__init__((2,) * n_dims)
        self._num_ports = 2 * n_dims  # odd slots unconnected

    @property
    def num_ports(self) -> int:
        return self._num_ports

    def neighbor(self, node: int, port: int) -> int | None:
        self.check_node(node)
        if not 0 <= port < self._num_ports:
            raise TopologyError(f"port {port} out of range")
        if port % 2 == 1:
            return None
        d = port // 2
        # Row-major layout over (2,)*n means dimension d has stride
        # 2**(n-1-d); flipping coordinate d is an XOR on that stride.
        return node ^ self._strides[d]

    def reverse_port(self, node: int, port: int) -> int:
        if self.neighbor(node, port) is None:
            raise TopologyError(f"port {port} of node {node} is unconnected")
        return port  # the flip link is symmetric

    def minimal_ports(self, node: int, dst: int) -> list[int]:
        self.check_node(dst)
        diff = node ^ dst
        out = []
        for d in range(self.n_dims):
            if diff & self._strides[d]:
                out.append(2 * d)
        return out

    def dor_port(self, node: int, dst: int) -> int:
        """E-cube: fix the lowest-index differing dimension first."""
        diff = node ^ dst
        if diff == 0:
            raise TopologyError(f"dor_port called with node == dst == {node}")
        for d in range(self.n_dims):
            if diff & self._strides[d]:
                return 2 * d
        raise TopologyError("unreachable")  # pragma: no cover

    def distance(self, a: int, b: int) -> int:
        self.check_node(a)
        self.check_node(b)
        return (a ^ b).bit_count()
