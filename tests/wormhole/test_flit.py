"""Tests for flit construction."""

import pytest

from repro.wormhole.flit import Flit, make_worm


class TestMakeWorm:
    def test_single_flit_is_head_and_tail(self):
        worm = make_worm(1, dst=5, length=1)
        assert len(worm) == 1
        assert worm[0].is_head and worm[0].is_tail

    def test_multi_flit_structure(self):
        worm = make_worm(2, dst=3, length=4)
        assert [f.is_head for f in worm] == [True, False, False, False]
        assert [f.is_tail for f in worm] == [False, False, False, True]
        assert [f.index for f in worm] == [0, 1, 2, 3]
        assert all(f.dst == 3 for f in worm)
        assert all(f.msg_id == 2 for f in worm)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            make_worm(1, dst=0, length=0)

    def test_fresh_flits_have_no_arrival(self):
        worm = make_worm(1, dst=0, length=2)
        assert all(f.arrival == -1 for f in worm)
        assert all(f.dateline_bits == 0 for f in worm)


class TestFlitRepr:
    def test_repr_kinds(self):
        h = Flit(1, 0, True, False, 2)
        b = Flit(1, 1, False, False, 2)
        t = Flit(1, 2, False, True, 2)
        ht = Flit(1, 0, True, True, 2)
        assert "H" in repr(h)
        assert "B" in repr(b)
        assert "T" in repr(t)
        assert "HT" in repr(ht)
