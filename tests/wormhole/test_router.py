"""Tests for the S0 wormhole router (Fig. 1 structure and flit mechanics)."""

import pytest

from repro.errors import ProtocolError
from repro.sim.config import WormholeConfig
from repro.sim.stats import StatsCollector
from repro.topology import Mesh
from repro.wormhole.flit import EJECT_PORT, make_worm
from repro.wormhole.router import WormholeRouter
from repro.wormhole.routing import DimensionOrderRouting


def build_line(config=None, dims=(3,)):
    """Wired routers over a small mesh plus per-node delivery logs."""
    topo = Mesh(dims)
    config = config or WormholeConfig(vcs=2, buffer_depth=2)
    stats = StatsCollector()
    routing = DimensionOrderRouting(topo, config.vcs)
    delivered: dict[int, list] = {n: [] for n in range(topo.num_nodes)}

    def deliver_for(node):
        def deliver(flit, cycle):
            delivered[node].append((flit, cycle))
        return deliver

    routers = [
        WormholeRouter(n, topo, config, routing, stats, deliver_for(n))
        for n in range(topo.num_nodes)
    ]
    for node in range(topo.num_nodes):
        for port in topo.connected_ports(node):
            nbr = topo.neighbor(node, port)
            routers[node].connect(port, routers[nbr], topo.reverse_port(node, port))
    return topo, routers, delivered, stats


def run_cycles(routers, start, n):
    for cycle in range(start, start + n):
        for r in routers:
            r.route_phase(cycle)
        for r in routers:
            r.traversal_phase(cycle)
    return start + n


class TestStructure:
    """F1: the Fig. 1 router structure."""

    def test_input_vcs_per_port(self):
        topo, routers, _, _ = build_line()
        r = routers[0]
        # Physical ports plus the injection port, each with w VCs.
        assert len(r.inputs) == topo.num_ports + 1
        assert all(len(vcs) == 2 for vcs in r.inputs)

    def test_output_vcs_per_physical_port(self):
        topo, routers, _, _ = build_line()
        r = routers[0]
        assert len(r.outputs) == topo.num_ports
        for port_vcs in r.outputs:
            for out in port_vcs:
                assert out.credits == 2  # initialized to buffer depth

    def test_wiring_sets_upstream_credit_targets(self):
        topo, routers, _, _ = build_line()
        port = topo.dor_port(0, 1)
        back = topo.reverse_port(0, port)
        assert routers[1].upstream[back][0] is routers[0].outputs[port][0]


class TestInjectionAndDelivery:
    def test_worm_travels_and_delivers(self):
        topo, routers, delivered, _ = build_line(
            config=WormholeConfig(vcs=2, buffer_depth=4)
        )
        worm = make_worm(7, dst=2, length=3)
        cycle = 0
        for flit in worm:
            routers[0].inject_flit(flit, 0, cycle)
        run_cycles(routers, 1, 20)
        flits = [f for f, _ in delivered[2]]
        assert [f.index for f in flits] == [0, 1, 2]
        assert all(f.msg_id == 7 for f in flits)

    def test_delivery_order_within_worm(self):
        topo, routers, delivered, _ = build_line(dims=(2,))
        worm = make_worm(1, dst=1, length=5)
        for i, flit in enumerate(worm):
            # Inject as space allows over several cycles.
            pass
        cycle = 0
        pending = list(worm)
        for cycle in range(40):
            while pending and routers[0].injection_space(0) > 0:
                routers[0].inject_flit(pending.pop(0), 0, cycle)
            for r in routers:
                r.route_phase(cycle)
            for r in routers:
                r.traversal_phase(cycle)
        times = [c for _, c in delivered[1]]
        assert times == sorted(times)
        assert len(times) == 5

    def test_injection_overflow_raises(self):
        topo, routers, _, _ = build_line()
        worm = make_worm(1, dst=2, length=5)
        routers[0].inject_flit(worm[0], 0, 0)
        routers[0].inject_flit(worm[1], 0, 0)
        with pytest.raises(ProtocolError):
            routers[0].inject_flit(worm[2], 0, 0)

    def test_injection_space_tracks_occupancy(self):
        topo, routers, _, _ = build_line()
        assert routers[0].injection_space(0) == 2
        routers[0].inject_flit(make_worm(1, 2, 1)[0], 0, 0)
        assert routers[0].injection_space(0) == 1

    def test_local_delivery_via_eject(self):
        """A worm whose destination is the injection node ejects directly."""
        topo, routers, delivered, _ = build_line()
        # Destination == source is forbidden at the message layer, but a
        # flit arriving at its destination router must take EJECT_PORT.
        worm = make_worm(3, dst=1, length=1)
        routers[0].inject_flit(worm[0], 0, 0)
        run_cycles(routers, 1, 10)
        assert len(delivered[1]) == 1


class TestFlowControl:
    def test_one_flit_per_output_port_per_cycle(self):
        topo, routers, delivered, _ = build_line(dims=(2,))
        # Two worms on different VCs compete for the same physical port.
        a = make_worm(1, dst=1, length=2)
        b = make_worm(2, dst=1, length=2)
        for f in a:
            routers[0].inject_flit(f, 0, 0)
        for f in b:
            routers[0].inject_flit(f, 1, 0)
        for cycle in range(1, 4):
            routers[0].route_phase(cycle)
            moved = routers[0].traversal_phase(cycle)
            assert moved <= 1  # single output physical channel

    def test_credits_decrement_and_return(self):
        topo, routers, delivered, _ = build_line(dims=(3,))
        port = topo.dor_port(0, 2)
        worm = make_worm(1, dst=2, length=2)
        for f in worm:
            routers[0].inject_flit(f, 0, 0)
        routers[0].route_phase(1)
        out_vc = routers[0].inputs[routers[0].inject_port][0].route[1]
        out = routers[0].outputs[port][out_vc]
        start_credits = out.credits
        routers[0].traversal_phase(1)
        assert out.credits == start_credits - 1
        # Let everything drain; credits must return to full.
        run_cycles(routers, 2, 20)
        assert out.credits == out.max_credits

    def test_blocked_worm_holds_buffers(self):
        """True wormhole semantics: a blocked worm occupies its channels."""
        config = WormholeConfig(vcs=1, buffer_depth=1)
        topo, routers, delivered, _ = build_line(config=config, dims=(3,))
        # Fill node 1's input buffer by keeping its output busy: inject a
        # long worm from 0 to 2, then stall it by filling node 2's buffer
        # artificially. Simpler: two long worms, one behind the other on
        # the same VC -- the second cannot advance past the first.
        first = make_worm(1, dst=2, length=6)
        pending = list(first)
        for cycle in range(3):
            while pending and routers[0].injection_space(0) > 0:
                routers[0].inject_flit(pending.pop(0), 0, cycle)
            run_cycles(routers, cycle, 1)
        # The worm is strung across routers 0->1->2 now.
        occupancies = [r.occupancy() for r in routers]
        assert sum(occupancies) > 0

    def test_tail_releases_output_vc(self):
        topo, routers, _, _ = build_line(dims=(2,))
        worm = make_worm(1, dst=1, length=1)
        routers[0].inject_flit(worm[0], 0, 0)
        routers[0].route_phase(1)
        route = routers[0].inputs[routers[0].inject_port][0].route
        assert route is not None
        port, vc = route
        assert routers[0].outputs[port][vc].owner is not None
        routers[0].traversal_phase(1)
        assert routers[0].outputs[port][vc].owner is None


class TestTiming:
    def test_flit_cannot_move_in_arrival_cycle(self):
        topo, routers, delivered, _ = build_line(dims=(2,))
        worm = make_worm(1, dst=1, length=1)
        routers[0].inject_flit(worm[0], 0, 5)
        routers[0].route_phase(5)
        assert routers[0].traversal_phase(5) == 0  # arrived this cycle
        routers[0].route_phase(6)
        assert routers[0].traversal_phase(6) == 1

    def test_router_delay_postpones_routing(self):
        config = WormholeConfig(vcs=1, buffer_depth=2, router_delay=3)
        topo, routers, delivered, _ = build_line(config=config, dims=(2,))
        worm = make_worm(1, dst=1, length=1)
        routers[0].inject_flit(worm[0], 0, 0)
        for cycle in (1, 2):
            routers[0].route_phase(cycle)
            assert routers[0].inputs[routers[0].inject_port][0].route is None
        routers[0].route_phase(3)
        assert routers[0].inputs[routers[0].inject_port][0].route is not None

    def test_pipelined_throughput_one_flit_per_cycle(self):
        """After pipeline fill, one flit arrives per cycle."""
        topo, routers, delivered, _ = build_line(
            config=WormholeConfig(vcs=1, buffer_depth=4), dims=(2,)
        )
        worm = make_worm(1, dst=1, length=4)
        for f in worm:
            routers[0].inject_flit(f, 0, 0)
        run_cycles(routers, 1, 10)
        times = [c for _, c in delivered[1]]
        assert len(times) == 4
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(d == 1 for d in deltas)


class TestBlockedWormIntrospection:
    def test_blocked_worms_report(self):
        config = WormholeConfig(vcs=1, buffer_depth=1)
        topo, routers, delivered, _ = build_line(config=config, dims=(3,))
        # Block: worm A owns the VC 1->2; worm B behind it wants it too.
        a = make_worm(1, dst=2, length=8)
        pending = list(a)
        cycle = 0
        for cycle in range(4):
            while pending and routers[0].injection_space(0) > 0:
                routers[0].inject_flit(pending.pop(0), 0, cycle)
            run_cycles(routers, cycle, 1)
        blocked = routers[0].blocked_worms(cycle + 1)
        assert isinstance(blocked, list)


class TestArbitrationFairness:
    def test_round_robin_alternates_between_worms(self):
        """Two worms sharing an output physical channel on different VCs
        must interleave flits (no starvation)."""
        topo, routers, delivered, _ = build_line(
            config=WormholeConfig(vcs=2, buffer_depth=8), dims=(2,)
        )
        a = make_worm(1, dst=1, length=8)
        b = make_worm(2, dst=1, length=8)
        for f in a:
            routers[0].inject_flit(f, 0, 0)
        for f in b:
            routers[0].inject_flit(f, 1, 0)
        run_cycles(routers, 1, 40)
        order = [f.msg_id for f, _ in delivered[1]]
        assert len(order) == 16
        # Neither worm's flits are all delivered before the other starts.
        first_a = order.index(1)
        first_b = order.index(2)
        last_a = len(order) - 1 - order[::-1].index(1)
        last_b = len(order) - 1 - order[::-1].index(2)
        assert first_a < last_b and first_b < last_a

    def test_no_starvation_under_three_way_contention(self):
        """A stream of short worms from each of three inputs towards one
        node: every worm eventually delivers."""
        topo, routers, delivered, _ = build_line(
            config=WormholeConfig(vcs=2, buffer_depth=2), dims=(3,)
        )
        pending = {0: [], 2: []}
        next_id = 10
        for src in (0, 2):
            for _ in range(5):
                pending[src].append(make_worm(next_id, dst=1, length=3))
                next_id += 1
        queues = {src: [f for worm in worms for f in worm]
                  for src, worms in pending.items()}
        for cycle in range(200):
            for src, flits in queues.items():
                while flits and routers[src].injection_space(0) > 0:
                    routers[src].inject_flit(flits.pop(0), 0, cycle)
            run_cycles(routers, cycle, 1)
            if not any(queues.values()) and all(
                not r.busy() for r in routers
            ):
                break
        assert len(delivered[1]) == 10 * 3
