"""Tests for the wormhole routing functions."""

import pytest

from repro.errors import ConfigError, RoutingError
from repro.topology import Hypercube, Mesh, Torus
from repro.wormhole.flit import Flit
from repro.wormhole.routing import (
    AdaptiveRouting,
    DimensionOrderRouting,
    make_routing,
)


def header(dst: int) -> Flit:
    return Flit(msg_id=0, index=0, is_head=True, is_tail=False, dst=dst)


class TestDORMesh:
    def setup_method(self):
        self.topo = Mesh((4, 4))
        self.routing = DimensionOrderRouting(self.topo, num_vcs=2)

    def test_single_tier_single_port(self):
        src = self.topo.node_at((0, 0))
        dst = self.topo.node_at((2, 3))
        tiers = self.routing.candidates(src, dst, header(dst))
        assert len(tiers) == 1
        assert len(tiers[0]) == 1
        port, vcs = tiers[0][0]
        assert port == self.topo.dor_port(src, dst)

    def test_mesh_all_vcs_usable(self):
        src, dst = 0, self.topo.node_at((3, 3))
        [(port, vcs)] = self.routing.candidates(src, dst, header(dst))[0]
        assert vcs == (0, 1)  # one class: every VC carries it

    def test_routing_at_destination_raises(self):
        with pytest.raises(RoutingError):
            self.routing.candidates(5, 5, header(5))

    def test_path_follows_dor(self):
        src = self.topo.node_at((3, 0))
        dst = self.topo.node_at((0, 3))
        head = header(dst)
        node = src
        path = []
        while node != dst:
            [(port, _vcs)] = self.routing.candidates(node, dst, head)[0]
            self.routing.note_hop(node, port, head)
            path.append(port)
            node = self.topo.neighbor(node, port)
        # X resolved entirely before Y.
        dims = [p // 2 for p in path]
        assert dims == sorted(dims)


class TestDORTorusDateline:
    def setup_method(self):
        self.topo = Torus((4, 4))
        self.routing = DimensionOrderRouting(self.topo, num_vcs=2)

    def test_class0_before_dateline(self):
        src = self.topo.node_at((0, 0))
        dst = self.topo.node_at((2, 0))
        [(port, vcs)] = self.routing.candidates(src, dst, header(dst))[0]
        assert vcs == (0,)

    def test_class1_when_crossing_wrap(self):
        src = self.topo.node_at((3, 0))
        dst = self.topo.node_at((1, 0))  # shortest way wraps 3 -> 0 -> 1
        head = header(dst)
        [(port, vcs)] = self.routing.candidates(src, dst, head)[0]
        assert self.topo.crosses_dateline(src, port)
        assert vcs == (1,)

    def test_class_sticks_after_crossing(self):
        src = self.topo.node_at((3, 0))
        dst = self.topo.node_at((1, 0))
        head = header(dst)
        [(port, _)] = self.routing.candidates(src, dst, head)[0]
        self.routing.note_hop(src, port, head)
        mid = self.topo.neighbor(src, port)
        [(port2, vcs2)] = self.routing.candidates(mid, dst, head)[0]
        assert vcs2 == (1,)  # dateline bit remembered in the header

    def test_class_resets_in_new_dimension(self):
        src = self.topo.node_at((3, 0))
        dst = self.topo.node_at((0, 1))  # wrap in x, then fresh dim y
        head = header(dst)
        node = src
        while True:
            [(port, vcs)] = self.routing.candidates(node, dst, head)[0]
            if self.topo.port_dimension(port) == 1:
                assert vcs == (0,)  # new dimension starts in class 0
                break
            self.routing.note_hop(node, port, head)
            node = self.topo.neighbor(node, port)

    def test_four_vcs_interleave_classes(self):
        routing = DimensionOrderRouting(self.topo, num_vcs=4)
        src = self.topo.node_at((0, 0))
        dst = self.topo.node_at((1, 0))
        [(_, vcs)] = routing.candidates(src, dst, header(dst))[0]
        assert vcs == (0, 2)  # class-0 replicas

    def test_torus_requires_two_vcs(self):
        with pytest.raises(ConfigError):
            DimensionOrderRouting(self.topo, num_vcs=1)


class TestAdaptive:
    def setup_method(self):
        self.topo = Mesh((4, 4))
        self.routing = AdaptiveRouting(self.topo, num_vcs=3)

    def test_two_tiers(self):
        src = self.topo.node_at((0, 0))
        dst = self.topo.node_at((2, 2))
        tiers = self.routing.candidates(src, dst, header(dst))
        assert len(tiers) == 2
        adaptive, escape = tiers
        assert {p for p, _ in adaptive} == set(self.topo.minimal_ports(src, dst))
        assert len(escape) == 1
        assert escape[0][0] == self.topo.dor_port(src, dst)

    def test_adaptive_vcs_exclude_escape(self):
        src, dst = 0, self.topo.node_at((2, 2))
        adaptive, escape = self.routing.candidates(src, dst, header(dst))
        for _, vcs in adaptive:
            assert 0 not in vcs  # VC 0 is the escape channel on a mesh
        assert escape[0][1] == (0,)

    def test_needs_escape_plus_adaptive(self):
        with pytest.raises(ConfigError):
            AdaptiveRouting(self.topo, num_vcs=1)

    def test_torus_adaptive_escape_classes(self):
        topo = Torus((4, 4))
        routing = AdaptiveRouting(topo, num_vcs=4)
        src = topo.node_at((3, 0))
        dst = topo.node_at((1, 0))
        adaptive, escape = routing.candidates(src, dst, header(dst))
        for _, vcs in adaptive:
            assert set(vcs) == {2, 3}
        assert escape[0][1] == (1,)  # crossing the dateline

    def test_single_minimal_direction(self):
        src = self.topo.node_at((0, 0))
        dst = self.topo.node_at((0, 3))
        adaptive, escape = self.routing.candidates(src, dst, header(dst))
        assert len(adaptive) == 1
        assert adaptive[0][0] == escape[0][0]


class TestHypercubeRouting:
    def test_ecube_single_class(self):
        topo = Hypercube(3)
        routing = DimensionOrderRouting(topo, num_vcs=1)
        tiers = routing.candidates(0, 0b101, header(0b101))
        [(port, vcs)] = tiers[0]
        assert vcs == (0,)


class TestMakeRouting:
    def test_by_name(self):
        topo = Mesh((4, 4))
        assert isinstance(make_routing("dor", topo, 2), DimensionOrderRouting)
        assert isinstance(make_routing("adaptive", topo, 2), AdaptiveRouting)

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_routing("magic", Mesh((4, 4)), 2)
