"""Tests for mesh, torus and hypercube structure and routing helpers."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology import Hypercube, Mesh, Torus, build_topology


def to_networkx(topo):
    g = nx.DiGraph()
    g.add_nodes_from(range(topo.num_nodes))
    for node, port in topo.links():
        g.add_edge(node, topo.neighbor(node, port))
    return g


TOPOLOGIES = [
    Mesh((4, 4)),
    Mesh((3, 5)),
    Mesh((2, 2, 3)),
    Torus((4, 4)),
    Torus((3, 3)),
    Torus((4, 3, 2)),
    Hypercube(3),
    Hypercube(4),
]


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=repr)
class TestCommonStructure:
    def test_coords_roundtrip(self, topo):
        for node in range(topo.num_nodes):
            assert topo.node_at(topo.coords(node)) == node

    def test_reverse_port_is_involution(self, topo):
        for node, port in topo.links():
            nbr = topo.neighbor(node, port)
            back = topo.reverse_port(node, port)
            assert topo.neighbor(nbr, back) == node

    def test_links_are_symmetric(self, topo):
        links = set()
        for node, port in topo.links():
            links.add((node, topo.neighbor(node, port)))
        for a, b in links:
            assert (b, a) in links

    def test_graph_connected(self, topo):
        g = to_networkx(topo)
        assert nx.is_strongly_connected(g)

    def test_distance_matches_networkx(self, topo):
        g = to_networkx(topo)
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        for a in range(0, topo.num_nodes, 3):
            for b in range(0, topo.num_nodes, 2):
                assert topo.distance(a, b) == lengths[a][b], (a, b)

    def test_minimal_ports_reduce_distance(self, topo):
        for a in range(topo.num_nodes):
            for b in range(topo.num_nodes):
                if a == b:
                    assert topo.minimal_ports(a, b) == []
                    continue
                ports = topo.minimal_ports(a, b)
                assert ports, f"no minimal port from {a} to {b}"
                for p in ports:
                    nbr = topo.neighbor(a, p)
                    assert topo.distance(nbr, b) == topo.distance(a, b) - 1

    def test_dor_port_is_minimal(self, topo):
        for a in range(topo.num_nodes):
            for b in range(topo.num_nodes):
                if a == b:
                    continue
                p = topo.dor_port(a, b)
                assert p in topo.minimal_ports(a, b)

    def test_dor_path_terminates_within_distance(self, topo):
        for a in range(0, topo.num_nodes, 2):
            for b in range(0, topo.num_nodes, 3):
                cur, hops = a, 0
                while cur != b:
                    cur = topo.neighbor(cur, topo.dor_port(cur, b))
                    hops += 1
                    assert hops <= topo.num_nodes, "DOR did not terminate"
                assert hops == topo.distance(a, b)

    def test_dor_port_self_raises(self, topo):
        with pytest.raises(TopologyError):
            topo.dor_port(0, 0)

    def test_bad_node_raises(self, topo):
        with pytest.raises(TopologyError):
            topo.coords(topo.num_nodes)
        with pytest.raises(TopologyError):
            topo.neighbor(-1, 0)

    def test_diameter_positive_and_reached(self, topo):
        d = topo.diameter()
        assert d >= 1
        assert max(topo.distance(0, b) for b in range(topo.num_nodes)) == d


class TestMesh:
    def test_edge_nodes_have_unconnected_ports(self):
        m = Mesh((4, 4))
        assert m.neighbor(0, 1) is None  # x-minus at column 0
        assert m.neighbor(0, 3) is None  # y-minus at row 0

    def test_corner_degree(self):
        m = Mesh((4, 4))
        assert len(m.connected_ports(0)) == 2
        center = m.node_at((1, 1))
        assert len(m.connected_ports(center)) == 4

    def test_distance_is_manhattan(self):
        m = Mesh((8, 8))
        a, b = m.node_at((1, 2)), m.node_at((5, 7))
        assert m.distance(a, b) == 4 + 5

    def test_dor_resolves_dim0_first(self):
        m = Mesh((4, 4))
        a, b = m.node_at((0, 0)), m.node_at((2, 3))
        assert m.port_dimension(m.dor_port(a, b)) == 0


class TestTorus:
    def test_all_nodes_full_degree(self):
        t = Torus((4, 4))
        for n in range(t.num_nodes):
            assert len(t.connected_ports(n)) == 4

    def test_wrap_link(self):
        t = Torus((4, 4))
        edge = t.node_at((3, 0))
        assert t.neighbor(edge, 0) == t.node_at((0, 0))

    def test_distance_uses_wrap(self):
        t = Torus((8, 8))
        assert t.distance(t.node_at((0, 0)), t.node_at((7, 0))) == 1

    def test_crosses_dateline_only_on_wrap(self):
        t = Torus((4, 4))
        assert t.crosses_dateline(t.node_at((3, 0)), 0)  # wrap plus
        assert t.crosses_dateline(t.node_at((0, 0)), 1)  # wrap minus
        assert not t.crosses_dateline(t.node_at((1, 0)), 0)

    def test_halfway_has_both_minimal_ports(self):
        t = Torus((4, 4))
        ports = t.minimal_ports(t.node_at((0, 0)), t.node_at((2, 0)))
        assert set(ports) == {0, 1}

    def test_dor_halfway_tie_breaks_plus(self):
        t = Torus((4, 4))
        assert t.dor_port(t.node_at((0, 0)), t.node_at((2, 0))) == 0


class TestHypercube:
    def test_degree_equals_dimensions(self):
        h = Hypercube(4)
        for n in range(16):
            assert len(h.connected_ports(n)) == 4

    def test_neighbor_is_bitflip(self):
        h = Hypercube(3)
        nbrs = {h.neighbor(0, p) for p in h.connected_ports(0)}
        assert nbrs == {1, 2, 4}

    def test_distance_is_hamming(self):
        h = Hypercube(4)
        assert h.distance(0b0000, 0b1011) == 3

    def test_odd_ports_unconnected(self):
        h = Hypercube(3)
        assert h.neighbor(0, 1) is None

    def test_rejects_zero_dims(self):
        with pytest.raises(TopologyError):
            Hypercube(0)


class TestBuildTopology:
    def test_builds_each_kind(self):
        assert isinstance(build_topology("mesh", (4, 4)), Mesh)
        assert isinstance(build_topology("torus", (4, 4)), Torus)
        assert isinstance(build_topology("hypercube", (2, 2)), Hypercube)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_topology("ring", (4,))

    def test_hypercube_rejects_non_binary_radix(self):
        # Regression: build_topology("hypercube", (4, 4)) used to build a
        # 4-node 2-cube, silently discarding the radices.
        with pytest.raises(TopologyError):
            build_topology("hypercube", (4, 4))
        cube = build_topology("hypercube", (2, 2, 2))
        assert cube.num_nodes == 8


@given(
    dims=st.lists(st.integers(2, 5), min_size=1, max_size=3).map(tuple),
    kind=st.sampled_from(["mesh", "torus"]),
)
def test_property_distance_symmetry(dims, kind):
    topo = build_topology(kind, dims)
    rng_nodes = range(0, topo.num_nodes, max(1, topo.num_nodes // 8))
    for a in rng_nodes:
        for b in rng_nodes:
            assert topo.distance(a, b) == topo.distance(b, a)


@given(dims=st.lists(st.integers(2, 4), min_size=1, max_size=3).map(tuple))
def test_property_torus_distance_bounded_by_mesh(dims):
    """Wrap links can only shorten paths, never lengthen them."""
    mesh, torus = Mesh(dims), Torus(dims)
    for a in range(0, mesh.num_nodes, 3):
        for b in range(0, mesh.num_nodes, 2):
            assert torus.distance(a, b) <= mesh.distance(a, b)


class TestBisection:
    def test_mesh_bisection(self):
        from repro.topology.base import bisection_links

        # 4x4 mesh: the cut between rows 1 and 2 crosses 4 physical links,
        # i.e. 8 directed links.
        assert bisection_links(Mesh((4, 4))) == 8

    def test_torus_doubles_mesh(self):
        from repro.topology.base import bisection_links

        # Wrap links cross the cut too: 2x the mesh count.
        assert bisection_links(Torus((4, 4))) == 16

    def test_hypercube_bisection(self):
        from repro.topology.base import bisection_links

        # An n-cube's bisection is N/2 physical links = N directed.
        assert bisection_links(Hypercube(4)) == 16

    def test_asymmetric_mesh_cuts_max_radix_dimension(self):
        from repro.topology.base import bisection_links

        # Regression: the cut always sliced dimension 0.  A 2x8 mesh cut
        # along dim 0 severs all 8 columns (16 directed links); the true
        # bisection cuts the radix-8 dimension between columns 3 and 4,
        # crossing only 2 physical links = 4 directed.
        assert bisection_links(Mesh((2, 8))) == 4
        # Same network transposed: dim 0 is now the long one.
        assert bisection_links(Mesh((8, 2))) == 4

    def test_asymmetric_torus_cuts_max_radix_dimension(self):
        from repro.topology.base import bisection_links

        # 2x8 torus: wrap links double the mesh's 2-link cut... but in the
        # radix-2 dimension the "wrap" is a parallel link, so cutting the
        # radix-8 ring gives 4 physical = 8 directed crossings.
        assert bisection_links(Torus((2, 8))) == 8


class TestDiameter:
    def test_exact_bfs_agrees_with_cartesian_fast_path(self):
        # Regression: diameter() used a per-dimension-extremes shortcut
        # (distance to the single "farthest corner"); the exact BFS must
        # agree with it wherever the shortcut was valid.
        for topo in TOPOLOGIES:
            far = topo._farthest_from_zero()
            assert topo.diameter() == topo.distance(0, far), repr(topo)

    def test_known_values(self):
        assert Mesh((4, 4)).diameter() == 6
        assert Mesh((2, 8)).diameter() == 8
        assert Torus((4, 4)).diameter() == 4
        assert Hypercube(4).diameter() == 4
