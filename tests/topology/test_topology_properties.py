"""Property suite: every registered topology against a BFS oracle.

The graph-first :class:`~repro.topology.base.Topology` contract promises
that the analytic helpers (``distance``, ``minimal_ports``, ``dor_port``,
``diameter``) agree with plain breadth-first search over the adjacency
the topology itself reports via ``neighbor``.  This suite sweeps every
name in :func:`~repro.topology.registered_topologies` with several dims,
so a new topology is automatically held to the same contract the day it
is registered.
"""

from collections import deque

import pytest

from repro.errors import TopologyError
from repro.topology import build_topology, registered_topologies

# Representative shapes per registered name; every registered name MUST
# appear here (enforced by test_every_registered_topology_is_covered).
DIMS_BY_NAME = {
    "mesh": [(5,), (3, 4), (2, 2, 3)],
    "torus": [(5,), (3, 4), (2, 8)],
    "hypercube": [(2, 2), (2, 2, 2, 2)],
    "fullmesh": [(2,), (7,)],
    "min": [(2, 2), (2, 2, 2), (3, 3)],
}

CASES = [
    (name, dims)
    for name in registered_topologies()
    for dims in DIMS_BY_NAME[name]
]


def case_id(case):
    name, dims = case
    return f"{name}-{'x'.join(map(str, dims))}"


@pytest.fixture(params=CASES, ids=case_id)
def topo(request):
    name, dims = request.param
    return build_topology(name, dims)


def bfs_distances(topo, src):
    """Oracle: hop counts from ``src`` over the reported adjacency."""
    dist = {src: 0}
    queue = deque([src])
    while queue:
        node = queue.popleft()
        for port in topo.connected_ports(node):
            nbr = topo.neighbor(node, port)
            if nbr is not None and nbr not in dist:
                dist[nbr] = dist[node] + 1
                queue.append(nbr)
    return dist


def test_every_registered_topology_is_covered():
    assert set(DIMS_BY_NAME) == set(registered_topologies())


class TestWiring:
    def test_links_consistent_with_connected_ports(self, topo):
        from_ports = {
            (n, p)
            for n in range(topo.num_nodes)
            for p in topo.connected_ports(n)
        }
        assert set(topo.links()) == from_ports
        for n, p in from_ports:
            assert topo.neighbor(n, p) is not None

    def test_reverse_port_is_downstream_input(self, topo):
        """reverse_port names the input port the link lands on: distinct
        upstream links never collide on one downstream input."""
        inputs = set()
        for node, port in topo.links():
            nbr = topo.neighbor(node, port)
            key = (nbr, topo.reverse_port(node, port))
            assert key not in inputs, f"two links share input {key}"
            inputs.add(key)

    def test_return_port_roundtrips_or_is_none(self, topo):
        for node, port in topo.links():
            nbr = topo.neighbor(node, port)
            back = topo.return_port(node, port)
            if topo.bidirectional:
                assert back is not None
            if back is not None:
                assert topo.neighbor(nbr, back) == node

    def test_bidirectional_reverse_port_is_involution(self, topo):
        if not topo.bidirectional:
            pytest.skip("unidirectional topology")
        for node, port in topo.links():
            nbr = topo.neighbor(node, port)
            back = topo.reverse_port(node, port)
            assert topo.neighbor(nbr, back) == node
            assert topo.reverse_port(nbr, back) == port


class TestEndpoints:
    def test_endpoints_are_id_prefix(self, topo):
        eps = topo.endpoints()
        assert list(eps) == list(range(topo.num_endpoints))
        assert 2 <= topo.num_endpoints <= topo.num_nodes


class TestDistances:
    def test_distance_matches_bfs(self, topo):
        for src in range(topo.num_nodes):
            oracle = bfs_distances(topo, src)
            assert len(oracle) == topo.num_nodes, "graph not connected"
            for dst, d in oracle.items():
                assert topo.distance(src, dst) == d, (src, dst)

    def test_distance_symmetric_when_bidirectional(self, topo):
        if not topo.bidirectional:
            pytest.skip("unidirectional topology")
        for a in range(topo.num_nodes):
            for b in range(topo.num_nodes):
                assert topo.distance(a, b) == topo.distance(b, a)

    def test_minimal_ports_strictly_decrease_distance(self, topo):
        for a in topo.endpoints():
            for b in topo.endpoints():
                if a == b:
                    assert topo.minimal_ports(a, b) == []
                    continue
                ports = topo.minimal_ports(a, b)
                assert ports, f"no minimal port {a}->{b}"
                d = topo.distance(a, b)
                for p in ports:
                    nbr = topo.neighbor(a, p)
                    assert topo.distance(nbr, b) == d - 1
                # And no non-minimal port is reported as minimal.
                for p in topo.connected_ports(a):
                    if p not in ports:
                        assert topo.distance(topo.neighbor(a, p), b) >= d

    def test_dor_port_walks_to_destination(self, topo):
        for a in topo.endpoints():
            for b in topo.endpoints():
                if a == b:
                    with pytest.raises(TopologyError):
                        topo.dor_port(a, b)
                    continue
                cur, hops = a, 0
                while cur != b:
                    port = topo.dor_port(cur, b)
                    assert port in topo.minimal_ports(cur, b)
                    cur = topo.neighbor(cur, port)
                    hops += 1
                assert hops == topo.distance(a, b)

    def test_diameter_is_max_pairwise_distance(self, topo):
        assert topo.diameter() == max(
            d
            for src in range(topo.num_nodes)
            for d in bfs_distances(topo, src).values()
        )
