"""Dynamic fault schedules: events, campaigns, and the connectivity guard."""

import pytest

from repro.errors import TopologyError
from repro.sim.rng import SimRandom
from repro.topology import FaultSchedule, FaultSet, Mesh
from repro.topology.faults import (
    HEAL,
    KILL,
    FaultEvent,
    _still_connected,
    derive_fault_rng,
)


def port_toward(topo, node, nbr):
    return next(
        p for p in topo.connected_ports(node) if topo.neighbor(node, p) == nbr
    )


class TestFaultEvent:
    def test_ordered_by_cycle_first(self):
        assert FaultEvent(5, KILL, 9, 9) < FaultEvent(6, HEAL, 0, 0)

    def test_heal_sorts_before_kill_same_cycle(self):
        kill = FaultEvent(10, KILL, 0, 0)
        heal = FaultEvent(10, HEAL, 0, 0)
        assert sorted([kill, heal]) == [heal, kill]


class TestFaultSchedule:
    def test_schedule_pop_apply_flow(self):
        sched = FaultSchedule(Mesh((4, 4)))
        sched.schedule_kill(100, 0, 0)
        sched.schedule_kill(50, 1, 0)
        assert sched.next_event_cycle() == 50
        assert not sched.has_due(49)
        assert sched.has_due(50)
        due = sched.pop_due(50)
        assert [ev.cycle for ev in due] == [50]
        # pop_due advances the cursor but does NOT change membership.
        assert not sched.is_faulty(1, 0)
        sched.apply(due[0])
        assert sched.is_faulty(1, 0)
        assert sched.last_kill_cycle == 50
        assert sched.pending == 1
        assert sched.applied == due

    def test_heal_restores_link(self):
        sched = FaultSchedule(Mesh((4, 4)))
        sched.schedule_kill(10, 0, 0)
        sched.schedule_heal(20, 0, 0)
        for ev in sched.pop_due(20):
            sched.apply(ev)
        assert not sched.is_faulty(0, 0)
        assert len(sched) == 0
        assert sched.last_kill_cycle == 10

    def test_cannot_schedule_into_past(self):
        sched = FaultSchedule(Mesh((4, 4)))
        sched.schedule_kill(10, 0, 0)
        sched.pop_due(10)
        with pytest.raises(TopologyError, match="already applied"):
            sched.schedule_kill(5, 1, 0)

    def test_rejects_unconnected_link(self):
        sched = FaultSchedule(Mesh((4, 4)))
        with pytest.raises(TopologyError):
            sched.schedule_kill(10, 0, 1)  # x-minus at the corner

    def test_rejects_negative_cycle(self):
        sched = FaultSchedule(Mesh((4, 4)))
        with pytest.raises(TopologyError):
            sched.schedule_kill(-1, 0, 0)

    def test_constructor_sorts_events(self):
        topo = Mesh((4, 4))
        events = [FaultEvent(30, KILL, 1, 0), FaultEvent(10, KILL, 0, 0)]
        sched = FaultSchedule(topo, events)
        assert [ev.cycle for ev in sched.events] == [10, 30]


class TestRandomCampaign:
    def test_deterministic_for_fixed_seed(self):
        topo = Mesh((4, 4))
        a = FaultSchedule.random_campaign(
            topo, mtbf=200, rng=derive_fault_rng(7), horizon=4000, mttr=100
        )
        b = FaultSchedule.random_campaign(
            topo, mtbf=200, rng=derive_fault_rng(7), horizon=4000, mttr=100
        )
        assert a.events == b.events
        assert a.events, "mtbf=200 over 4000 cycles must produce kills"

    def test_kills_within_horizon_and_paired_heals(self):
        topo = Mesh((4, 4))
        sched = FaultSchedule.random_campaign(
            topo, mtbf=300, rng=derive_fault_rng(1), horizon=3000, mttr=150
        )
        kills = [ev for ev in sched.events if ev.kind == KILL]
        heals = [ev for ev in sched.events if ev.kind == HEAL]
        assert all(ev.cycle < 3000 for ev in kills)
        assert len(heals) == len(kills)
        healed = {(ev.cycle, ev.node, ev.port) for ev in heals}
        for ev in kills:
            assert (ev.cycle + 150, ev.node, ev.port) in healed

    def test_no_heals_when_mttr_zero(self):
        topo = Mesh((4, 4))
        sched = FaultSchedule.random_campaign(
            topo, mtbf=200, rng=derive_fault_rng(2), horizon=4000
        )
        assert all(ev.kind == KILL for ev in sched.events)

    def test_keep_connected_throughout_replay(self):
        topo = Mesh((4, 4))
        sched = FaultSchedule.random_campaign(
            topo, mtbf=100, rng=derive_fault_rng(3), horizon=5000, mttr=400
        )
        for ev in sched.events:
            sched.apply(ev)
            assert _still_connected(topo, sched._faulty)

    def test_mtbf_validation(self):
        with pytest.raises(TopologyError):
            FaultSchedule.random_campaign(
                Mesh((4, 4)), mtbf=0, rng=derive_fault_rng(0), horizon=100
            )
        with pytest.raises(TopologyError):
            FaultSchedule.random_campaign(
                Mesh((4, 4)), mtbf=10, rng=derive_fault_rng(0), horizon=100,
                mttr=-1,
            )


class TestConnectivityGuard:
    """Regression: the guard must be a real BFS, not a degree check."""

    def test_degree_guard_alone_is_insufficient(self):
        # Cut 3 of the 4 links crossing the middle of a 4x4 mesh.  Every
        # node still has degree >= 2, but killing the 4th would split the
        # mesh in half -- only the BFS sees that.
        topo = Mesh((4, 4))
        faults = FaultSet(topo)
        crossing = [(4 + x, port_toward(topo, 4 + x, 8 + x)) for x in range(4)]
        for node, port in crossing[:3]:
            faults.fail_link(node, port)
        node, port = crossing[3]
        nbr = topo.neighbor(node, port)
        assert len(faults.healthy_ports(node, topo.connected_ports(node))) >= 2
        assert len(faults.healthy_ports(nbr, topo.connected_ports(nbr))) >= 2
        assert faults.would_disconnect(node, port)

    def test_fail_random_links_never_partitions(self):
        for seed in range(6):
            topo = Mesh((4, 4))
            faults = FaultSet(topo)
            faults.fail_random_links(0.4, SimRandom(seed))
            assert _still_connected(topo, faults._faulty), f"seed {seed}"

    def test_random_links_refuse_final_cut(self):
        # With the middle almost severed, random failing must leave the
        # last crossing link alone no matter how high the target.
        topo = Mesh((4, 4))
        faults = FaultSet(topo)
        crossing = [(4 + x, port_toward(topo, 4 + x, 8 + x)) for x in range(4)]
        for node, port in crossing[:3]:
            faults.fail_link(node, port)
        faults.fail_random_links(0.5, SimRandom(9))
        assert _still_connected(topo, faults._faulty)


class TestHealLink:
    def test_heal_unconnected_raises(self):
        faults = FaultSet(Mesh((4, 4)))
        with pytest.raises(TopologyError):
            faults.heal_link(0, 1)

    def test_heal_is_bidirectional_by_default(self):
        topo = Mesh((4, 4))
        faults = FaultSet(topo)
        faults.fail_link(5, 0)
        faults.heal_link(5, 0)
        assert len(faults) == 0


class TestDeriveFaultRng:
    def test_matches_legacy_derivation(self):
        a, b = FaultSet(Mesh((4, 4))), FaultSet(Mesh((4, 4)))
        a.fail_random_links(0.25, derive_fault_rng(3))
        b.fail_random_links(0.25, SimRandom(3).fork("faults"))
        assert a._faulty == b._faulty
