"""Tests for static fault injection."""

import pytest

from repro.errors import TopologyError
from repro.sim.rng import SimRandom
from repro.topology import FaultSet, Mesh, Torus


class TestFaultSet:
    def test_fail_link_bidirectional(self):
        topo = Mesh((4, 4))
        faults = FaultSet(topo)
        faults.fail_link(0, 0)
        nbr = topo.neighbor(0, 0)
        assert faults.is_faulty(0, 0)
        assert faults.is_faulty(nbr, topo.reverse_port(0, 0))
        assert len(faults) == 2

    def test_fail_link_unidirectional(self):
        topo = Mesh((4, 4))
        faults = FaultSet(topo)
        faults.fail_link(0, 0, bidirectional=False)
        nbr = topo.neighbor(0, 0)
        assert faults.is_faulty(0, 0)
        assert not faults.is_faulty(nbr, topo.reverse_port(0, 0))

    def test_fail_unconnected_link_raises(self):
        topo = Mesh((4, 4))
        faults = FaultSet(topo)
        with pytest.raises(TopologyError):
            faults.fail_link(0, 1)  # x-minus at the corner

    def test_healthy_ports_filters(self):
        topo = Mesh((4, 4))
        faults = FaultSet(topo)
        faults.fail_link(5, 0)
        healthy = faults.healthy_ports(5, topo.connected_ports(5))
        assert 0 not in healthy
        assert healthy

    def test_fail_random_links_hits_target(self):
        topo = Torus((4, 4))
        faults = FaultSet(topo)
        n = faults.fail_random_links(0.2, SimRandom(1))
        physical_links = len(topo.links()) // 2
        assert n == int(physical_links * 0.2)
        assert len(faults) == 2 * n

    def test_fail_random_links_keeps_nodes_reachable(self):
        topo = Mesh((4, 4))
        faults = FaultSet(topo)
        faults.fail_random_links(0.3, SimRandom(2), keep_connected=True)
        for node in range(topo.num_nodes):
            healthy = faults.healthy_ports(node, topo.connected_ports(node))
            assert healthy, f"node {node} fully isolated"

    def test_fail_random_links_deterministic(self):
        topo = Torus((4, 4))
        a, b = FaultSet(topo), FaultSet(topo)
        a.fail_random_links(0.25, SimRandom(3))
        b.fail_random_links(0.25, SimRandom(3))
        assert a._faulty == b._faulty

    def test_fraction_bounds(self):
        faults = FaultSet(Mesh((4, 4)))
        with pytest.raises(TopologyError):
            faults.fail_random_links(1.0, SimRandom(0))
        with pytest.raises(TopologyError):
            faults.fail_random_links(-0.1, SimRandom(0))

    def test_contains_protocol(self):
        topo = Mesh((4, 4))
        faults = FaultSet(topo)
        faults.fail_link(0, 0)
        assert (0, 0) in faults
        assert (1, 0) not in faults
