"""Smoke tests for the example scripts.

The fast examples run end to end in a subprocess; the slower ones are at
least compiled and import-checked, so they cannot silently rot.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
FAST = ["quickstart.py", "trace_circuit_lifecycle.py"]
ALL = sorted(p.name for p in EXAMPLES.glob("*.py"))


class TestExamplesCompile:
    @pytest.mark.parametrize("name", ALL)
    def test_compiles(self, name):
        py_compile.compile(str(EXAMPLES / name), doraise=True)

    def test_expected_examples_present(self):
        assert "quickstart.py" in ALL
        assert len(ALL) >= 6  # quickstart + >= 5 scenario examples


class TestFastExamplesRun:
    @pytest.mark.parametrize("name", FAST)
    def test_runs_clean(self, name):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / name)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert proc.stdout.strip()

    def test_quickstart_reports_delivery(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert "all messages delivered" in proc.stdout
