"""Tests for the network interface: injection pacing, delivery accounting."""

import pytest

from repro.errors import ProtocolError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, SwitchingMode, WormholeConfig


def make_net(vcs=2, buffer_depth=2):
    config = NetworkConfig(
        dims=(4,),
        protocol="wormhole",
        wave=None,
        wormhole=WormholeConfig(vcs=vcs, buffer_depth=buffer_depth),
    )
    return Network(config), MessageFactory()


class TestInjectionPacing:
    def test_long_worm_streams_over_multiple_cycles(self):
        net, factory = make_net(buffer_depth=2)
        net.inject(factory.make(0, 3, 20, 0))
        ni = net.interfaces[0]
        assert ni.pending_wormhole_flits() == 20
        net.step()
        # Only buffer_depth flits fit initially.
        assert ni.pending_wormhole_flits() == 18
        for _ in range(100):
            net.step()
            if net.is_idle():
                break
        assert ni.pending_wormhole_flits() == 0
        assert net.stats.messages[0].delivered > 0

    def test_injected_time_is_header_entry(self):
        net, factory = make_net()
        net.inject(factory.make(0, 3, 4, 0))
        net.step()
        assert net.stats.messages[0].injected == 0

    def test_worms_balance_across_injection_vcs(self):
        net, factory = make_net(vcs=2)
        net.inject(factory.make(0, 3, 50, 0))
        net.inject(factory.make(0, 2, 50, 0))
        ni = net.interfaces[0]
        lens = [
            sum(p.remaining for p in q) for q in ni._queues
        ]
        assert all(l > 0 for l in lens)  # spread, not piled on VC 0

    def test_two_worms_same_vc_serialize(self):
        net, factory = make_net(vcs=1)
        net.inject(factory.make(0, 3, 10, 0))
        net.inject(factory.make(0, 3, 10, 0))
        for _ in range(200):
            net.step()
            if net.is_idle():
                break
        a, b = net.stats.messages[0], net.stats.messages[1]
        assert a.delivered < b.delivered


class TestDeliveryAccounting:
    def test_hops_recorded_as_distance(self):
        net, factory = make_net()
        net.inject(factory.make(0, 3, 4, 0))
        for _ in range(100):
            net.step()
            if net.is_idle():
                break
        assert net.stats.messages[0].hops == 3

    def test_mode_counter_bumped(self):
        net, factory = make_net()
        net.inject(factory.make(0, 3, 4, 0))
        assert net.stats.count("mode.wormhole") == 1

    def test_wrong_destination_delivery_rejected(self):
        from repro.wormhole.flit import Flit

        net, factory = make_net()
        net.inject(factory.make(0, 3, 4, 0))
        flit = Flit(msg_id=0, index=3, is_head=False, is_tail=True, dst=3)
        with pytest.raises(ProtocolError):
            net.interfaces[1].on_flit_delivered(flit, 5)

    def test_double_delivery_rejected(self):
        from repro.wormhole.flit import Flit

        net, factory = make_net()
        net.inject(factory.make(0, 1, 1, 0))
        for _ in range(50):
            net.step()
            if net.is_idle():
                break
        tail = Flit(msg_id=0, index=0, is_head=True, is_tail=True, dst=1)
        with pytest.raises(ProtocolError):
            net.interfaces[1].on_flit_delivered(tail, net.cycle)

    def test_circuit_delivery_wrong_node_rejected(self):
        from repro.network.message import Message

        net, factory = make_net()
        msg = factory.make(0, 3, 4, 0)
        net.inject(msg)
        with pytest.raises(ProtocolError):
            net.interfaces[2].on_circuit_delivery(msg, 1)


class TestIdleness:
    def test_engineless_queries_safe(self):
        net, _ = make_net()
        ni = net.interfaces[0]
        assert ni.is_idle()
        assert ni.pending_engine_messages() == 0

    def test_no_engine_rejects_messages(self):
        net, factory = make_net()
        ni = net.interfaces[0]
        ni.engine = None
        with pytest.raises(ProtocolError):
            ni.on_message(factory.make(0, 1, 1, 0), 0)
        with pytest.raises(ProtocolError):
            ni.on_directive(None, 0)
