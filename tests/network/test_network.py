"""End-to-end tests for the Network assembly and the Simulator."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig, WormholeConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, uniform_workload
from repro.verify import check_all_invariants


def small_workload(config, load=0.05, length=16, duration=500, seed=3):
    factory = MessageFactory()
    return uniform_workload(
        factory,
        UniformPattern(config.num_nodes),
        num_nodes=config.num_nodes,
        offered_load=load,
        length=length,
        duration=duration,
        rng=SimRandom(seed),
    )


ALL_CONFIGS = [
    NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None),
    NetworkConfig(dims=(4, 4), protocol="clrp"),
    NetworkConfig(dims=(4, 4), protocol="carp"),
    NetworkConfig(topology="torus", dims=(4, 4), protocol="clrp"),
    NetworkConfig(topology="hypercube", dims=(2, 2, 2, 2), protocol="clrp"),
    NetworkConfig(
        dims=(4, 4),
        protocol="clrp",
        wormhole=WormholeConfig(vcs=3, routing="adaptive"),
    ),
    NetworkConfig(
        topology="torus",
        dims=(4, 4),
        protocol="clrp",
        wormhole=WormholeConfig(vcs=4, routing="adaptive"),
    ),
]


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.describe())
class TestEndToEnd:
    def test_all_messages_delivered(self, config):
        net = Network(config)
        workload = small_workload(config)
        result = Simulator(net, workload, progress_timeout=10_000).run(100_000)
        assert result.completed
        assert result.delivered == result.injected
        check_all_invariants(net)

    def test_deadlock_checks_clean(self, config):
        net = Network(config)
        workload = small_workload(config, load=0.15)
        result = Simulator(
            net, workload, deadlock_check_interval=50, progress_timeout=10_000
        ).run(100_000)
        assert result.completed


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        def run():
            config = NetworkConfig(dims=(4, 4), protocol="clrp", seed=11)
            net = Network(config)
            workload = small_workload(config, load=0.2, seed=11)
            Simulator(net, workload).run(50_000)
            return [
                (m.msg_id, m.delivered, m.mode)
                for m in net.stats.messages.values()
            ]

        assert run() == run()

    def test_different_seed_differs(self):
        def run(seed):
            config = NetworkConfig(dims=(4, 4), protocol="clrp", seed=seed)
            net = Network(config)
            workload = small_workload(config, load=0.2, seed=seed)
            Simulator(net, workload).run(50_000)
            return [(m.msg_id, m.delivered) for m in net.stats.messages.values()]

        assert run(1) != run(2)


class TestSimulatorDriver:
    def test_run_in_slices_continues(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        workload = small_workload(config)
        sim = Simulator(net, workload)
        r1 = sim.run(10)
        assert r1.cycles == 10
        r2 = sim.run(100_000)
        assert r2.completed

    def test_negative_cycles_rejected(self):
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        sim = Simulator(Network(config))
        with pytest.raises(SimulationError):
            sim.run(-1)

    def test_run_after_drain_rejected(self):
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        net = Network(config)
        sim = Simulator(net, [])
        sim.run(10)
        with pytest.raises(SimulationError):
            sim.run(10)

    def test_messages_respect_creation_time(self):
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        net = Network(config)
        factory = MessageFactory()
        msgs = [factory.make(0, 5, 4, 100)]
        Simulator(net, msgs).run(50_000)
        assert net.stats.messages[0].injected >= 100

    def test_inject_rejects_unknown_type(self):
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        net = Network(config)
        with pytest.raises(ConfigError):
            net.inject("not a message")


class TestWorkCounter:
    def test_work_counter_advances_with_traffic(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        factory = MessageFactory()
        net.inject(factory.make(0, 5, 16, 0))
        before = net.work_counter
        net.run(50)
        assert net.work_counter > before

    def test_idle_network_does_no_work(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        net.run(50)
        assert net.work_counter == 0
        assert net.is_idle()
