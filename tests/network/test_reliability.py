"""End-to-end delivery guarantee: acks, retransmission, failure reporting."""

import pytest

from repro.errors import ConfigError, ProtocolError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, ReliabilityConfig, WaveConfig
from repro.topology import FaultSchedule, build_topology
from repro.verify import check_all_invariants

REL = ReliabilityConfig(timeout=64, backoff=2, max_timeout=256, max_retries=4)


def wormhole_net(reliability=REL, faults=None, **kwargs):
    config = NetworkConfig(
        dims=(4, 4), protocol="wormhole", wave=None,
        reliability=reliability, **kwargs
    )
    return Network(config, faults=faults)


def drain(net, limit=30_000):
    for _ in range(limit):
        net.step()
        if net.is_idle():
            return
    raise AssertionError(f"network not idle after {limit} cycles")


def x_port(topo, node):
    return next(
        p for p in topo.connected_ports(node)
        if topo.neighbor(node, p) == node + 1
    )


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            ReliabilityConfig(timeout=0)
        with pytest.raises(ConfigError):
            ReliabilityConfig(backoff=0)
        with pytest.raises(ConfigError):
            ReliabilityConfig(timeout=100, max_timeout=50)
        with pytest.raises(ConfigError):
            ReliabilityConfig(max_retries=-1)


class TestAckFlow:
    def test_delivery_acks_and_clears_tracking(self):
        net = wormhole_net()
        net.inject(MessageFactory().make(0, 5, 8, 0))
        drain(net)
        ni = net.interfaces[0]
        assert not ni._unacked and not ni._ack_heap
        assert net.stats.counters.get("reliability.acked") == 1
        assert not net.recovery_pending()
        assert len(net.stats.delivered_records()) == 1

    def test_recovery_pending_until_ack_returns(self):
        net = wormhole_net()
        net.inject(MessageFactory().make(0, 15, 8, 0))
        while not net.stats.delivered_records():
            net.step()
        # Delivered at the destination, but the source's tracking entry
        # survives until the modeled ack makes it back: not idle yet.
        assert net.recovery_pending()
        assert not net.is_idle()
        drain(net)
        assert not net.recovery_pending()

    def test_disabled_reliability_has_no_tracking(self):
        net = wormhole_net(reliability=None)
        net.inject(MessageFactory().make(0, 5, 8, 0))
        drain(net)
        assert not net.interfaces[0]._unacked
        assert "reliability.acked" not in net.stats.counters
        assert not net.recovery_pending()


class TestRetransmission:
    def _kill_heal_net(self, heal_cycle):
        topo = build_topology("mesh", (4, 4))
        sched = FaultSchedule(topo)
        port = x_port(topo, 1)
        sched.schedule_kill(6, 1, port)
        if heal_cycle is not None:
            sched.schedule_heal(heal_cycle, 1, port)
        return wormhole_net(faults=sched)

    def test_lost_worm_retransmitted_after_heal(self):
        # DOR 0->3 must cross link 1-2; the kill drops the worm, retries
        # poison (no alternative route) until the heal lets one through.
        net = self._kill_heal_net(heal_cycle=200)
        net.inject(MessageFactory().make(0, 3, 32, 0))
        drain(net)
        assert len(net.stats.delivered_records()) == 1
        assert net.stats.counters["reliability.retransmits"] >= 1
        assert any(r.reason == "link_down" for r in net.stats.losses)
        assert not net.stats.delivery_failures
        check_all_invariants(net)

    def test_budget_exhaustion_reports_delivery_failure(self):
        net = self._kill_heal_net(heal_cycle=None)  # permanent cut
        net.inject(MessageFactory().make(0, 3, 32, 0))
        drain(net)
        assert not net.stats.delivered_records()
        [failure] = net.stats.delivery_failures
        assert failure.src == 0 and failure.dst == 3
        assert failure.attempts == REL.max_retries + 1
        assert net.stats.counters["reliability.delivery_failures"] == 1
        # Every attempt's loss was recorded -- nothing vanished silently.
        assert net.stats.losses
        check_all_invariants(net)

    def test_backoff_caps_at_max_timeout(self):
        net = self._kill_heal_net(heal_cycle=None)
        net.inject(MessageFactory().make(0, 3, 8, 0))
        drain(net)
        # Deadlines: 64, then +128, +256 (cap), +256, +256; the budget
        # check fires exactly at the last one.
        [failure] = net.stats.delivery_failures
        assert failure.cycle == 64 + 128 + 256 + 256 + 256


class TestDuplicateSuppression:
    def _delivered_clrp_net(self, reliability):
        config = NetworkConfig(
            dims=(4, 4), protocol="clrp", wave=WaveConfig(),
            reliability=reliability,
        )
        net = Network(config)
        msg = MessageFactory().make(0, 5, 16, 0)
        net.inject(msg)
        drain(net)
        assert len(net.stats.delivered_records()) == 1
        return net, msg

    def test_duplicate_suppressed_with_reliability(self):
        net, msg = self._delivered_clrp_net(REL)
        net.interfaces[5].on_circuit_delivery(msg, net.cycle)
        assert net.stats.counters["reliability.duplicates_suppressed"] == 1
        assert len(net.stats.delivered_records()) == 1

    def test_duplicate_raises_without_reliability(self):
        net, msg = self._delivered_clrp_net(None)
        with pytest.raises(ProtocolError):
            net.interfaces[5].on_circuit_delivery(msg, net.cycle)
