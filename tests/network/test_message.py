"""Tests for messages and the id factory."""

import pytest

from repro.network.message import Message, MessageFactory


class TestMessage:
    def test_valid(self):
        m = Message(msg_id=0, src=0, dst=5, length=16, created=10)
        assert m.length == 16
        assert m.circuit_hint is None

    def test_self_message_rejected(self):
        with pytest.raises(ValueError):
            Message(msg_id=0, src=3, dst=3, length=16, created=0)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            Message(msg_id=0, src=0, dst=1, length=0, created=0)

    def test_negative_created_rejected(self):
        with pytest.raises(ValueError):
            Message(msg_id=0, src=0, dst=1, length=1, created=-5)


class TestMessageFactory:
    def test_ids_are_sequential_and_unique(self):
        f = MessageFactory()
        ids = [f.make(0, 1, 8, 0).msg_id for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_hint_passthrough(self):
        f = MessageFactory()
        assert f.make(0, 1, 8, 0, circuit_hint=True).circuit_hint is True
        assert f.make(0, 1, 8, 0).circuit_hint is None
