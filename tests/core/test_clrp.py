"""Tests for the CLRP engine: phases, cache behaviour, victim releases."""

import pytest

from repro.circuits.circuit import CircuitState
from repro.errors import ProtocolError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, SwitchingMode, WaveConfig, WormholeConfig
from repro.verify import check_all_invariants


def make_net(dims=(4, 4), **wave_kwargs):
    wave = WaveConfig(**wave_kwargs)
    config = NetworkConfig(dims=dims, protocol="clrp", wave=wave)
    return Network(config), MessageFactory()


def drain(net, limit=20_000):
    for _ in range(limit):
        net.step()
        if net.is_idle():
            return
    raise AssertionError("network did not drain")


class TestPhase1:
    def test_miss_establishes_circuit(self):
        net, factory = make_net()
        net.inject(factory.make(0, 5, 32, 0))
        drain(net)
        rec = net.stats.messages[0]
        assert rec.delivered > 0
        assert rec.mode is SwitchingMode.CIRCUIT_NEW
        assert net.stats.count("clrp.lookup_miss") == 1
        check_all_invariants(net)

    def test_second_message_hits(self):
        net, factory = make_net()
        net.inject(factory.make(0, 5, 32, 0))
        drain(net)
        net.inject(factory.make(0, 5, 32, net.cycle))
        drain(net)
        assert net.stats.messages[1].mode is SwitchingMode.CIRCUIT_HIT
        assert net.stats.count("clrp.lookup_hit") == 1

    def test_hit_is_faster_than_miss(self):
        net, factory = make_net()
        net.inject(factory.make(0, 15, 64, 0))
        drain(net)
        t0 = net.cycle
        net.inject(factory.make(0, 15, 64, t0))
        drain(net)
        miss, hit = net.stats.messages[0], net.stats.messages[1]
        assert hit.latency < miss.latency  # no setup cost on the hit

    def test_setup_cycles_recorded(self):
        net, factory = make_net()
        net.inject(factory.make(0, 5, 32, 0))
        drain(net)
        assert net.stats.messages[0].setup_cycles > 0

    def test_queued_messages_ride_same_circuit_in_order(self):
        net, factory = make_net()
        for i in range(4):
            net.inject(factory.make(0, 9, 32, 0))
        drain(net)
        recs = [net.stats.messages[i] for i in range(4)]
        assert all(r.delivered > 0 for r in recs)
        deliveries = [r.delivered for r in recs]
        assert deliveries == sorted(deliveries)  # in-order on the circuit
        assert recs[0].mode is SwitchingMode.CIRCUIT_NEW
        assert all(r.mode is SwitchingMode.CIRCUIT_HIT for r in recs[1:])
        # One circuit, four uses.
        assert net.stats.count("circuit.established") == 1

    def test_initial_switch_spreads_across_neighbors(self):
        net, factory = make_net(num_switches=2)
        e0 = net.interfaces[0].engine
        e1 = net.interfaces[1].engine
        assert e0.initial_switch() != e1.initial_switch()


class TestCacheManagement:
    def test_eviction_on_capacity(self):
        net, factory = make_net(circuit_cache_size=1)
        net.inject(factory.make(0, 5, 32, 0))
        drain(net)
        net.inject(factory.make(0, 9, 32, net.cycle))
        drain(net)
        assert net.stats.count("clrp.cache_evictions") == 1
        assert net.stats.messages[1].mode is SwitchingMode.CIRCUIT_NEW
        # The old circuit is gone, the new one lives.
        engine = net.interfaces[0].engine
        assert engine.cache.lookup(5) is None
        assert engine.cache.lookup(9) is not None
        check_all_invariants(net)

    def test_lru_victim_selection(self):
        net, factory = make_net(circuit_cache_size=2, replacement="lru")
        net.inject(factory.make(0, 5, 16, 0))
        drain(net)
        net.inject(factory.make(0, 9, 16, net.cycle))
        drain(net)
        # Touch dest 5 again so dest 9 becomes the LRU victim.
        net.inject(factory.make(0, 5, 16, net.cycle))
        drain(net)
        net.inject(factory.make(0, 13, 16, net.cycle))
        drain(net)
        engine = net.interfaces[0].engine
        assert engine.cache.lookup(5) is not None
        assert engine.cache.lookup(9) is None
        assert engine.cache.lookup(13) is not None

    def test_cache_full_of_busy_entries_falls_back(self):
        """No evictable entry -> the message takes S0 immediately."""
        net, factory = make_net(circuit_cache_size=1)
        # Keep the single entry busy with a long queue, then miss.
        for _ in range(3):
            net.inject(factory.make(0, 5, 256, 0))
        net.inject(factory.make(0, 9, 16, 0))  # miss while entry 5 busy
        drain(net)
        assert net.stats.count("clrp.cache_full_fallback") >= 1
        assert net.stats.messages[3].mode is SwitchingMode.WORMHOLE_FALLBACK


class TestPhase2And3:
    def test_phase2_forces_victim_teardown(self):
        """k=1, m=0 line: the second source must steal the channel."""
        wave = dict(num_switches=1, misroute_budget=0)
        net, factory = make_net(dims=(3,), **wave)
        # Circuit 0->2 occupies (0,+) and (1,+).
        net.inject(factory.make(0, 2, 32, 0))
        drain(net)
        # Now node 1 wants 1->2; its only channel (1,+) is taken by an
        # established circuit -> phase 1 fails, phase 2 forces a release.
        net.inject(factory.make(1, 2, 32, net.cycle))
        drain(net)
        rec = net.stats.messages[1]
        assert rec.mode is SwitchingMode.CIRCUIT_FORCED
        assert net.stats.count("clrp.phase2_entered") == 1
        assert net.stats.count("clrp.victim_releases_requested") >= 1
        # Victim's cache entry cleaned up at node 0.
        assert net.interfaces[0].engine.cache.lookup(2) is None
        check_all_invariants(net)

    def test_phase3_wormhole_fallback_on_setting_up_channels(self):
        """Force probes may not wait on circuits being established."""
        wave = dict(num_switches=1, misroute_budget=0, setup_hop_delay=40)
        net, factory = make_net(dims=(3,), **wave)
        # Slow probe from node 0 grabs (0,+) then (1,+), un-acked for a
        # long time because of the huge hop delay.
        net.inject(factory.make(0, 2, 8, 0))
        net.run(45)  # probe has reserved (0,+) and is crawling onward
        net.inject(factory.make(1, 2, 8, net.cycle))
        drain(net, limit=40_000)
        rec = net.stats.messages[1]
        assert rec.delivered > 0
        assert rec.mode in (
            SwitchingMode.WORMHOLE_FALLBACK,  # phase 3 while still un-acked
            SwitchingMode.CIRCUIT_FORCED,  # or the ack won the race
        )
        if rec.mode is SwitchingMode.WORMHOLE_FALLBACK:
            assert net.stats.count("clrp.phase3_fallbacks") >= 1
        check_all_invariants(net)

    def test_reopen_after_victimization_with_queue(self):
        """Messages queued when their circuit is stolen get a new one."""
        wave = dict(num_switches=1, misroute_budget=0)
        net, factory = make_net(dims=(3,), **wave)
        # Long-running stream 0->2 keeps its circuit busy.
        for _ in range(6):
            net.inject(factory.make(0, 2, 200, 0))
        net.run(80)
        # Node 1 steals the shared channel mid-stream.
        net.inject(factory.make(1, 2, 8, net.cycle))
        drain(net, limit=60_000)
        assert all(m.delivered > 0 for m in net.stats.messages.values())
        check_all_invariants(net)


class TestDirectives:
    def test_clrp_rejects_directives(self):
        from repro.core.carp import CircuitOpen

        net, factory = make_net()
        with pytest.raises(ProtocolError):
            net.inject(CircuitOpen(node=0, dst=5, created=0))


class TestSlotStarvationRegression:
    """Regression: a message waiting for a cache slot must not starve when
    the victim entry is re-opened by new traffic mid-teardown.

    Found by the property-based system test: with a 1-entry cache, message
    A (new dest) evicts the entry for dest D; while the teardown is in
    flight another message to D queues on the RELEASING entry; on release
    the entry re-opens for D and the slot never frees -- message A must be
    re-dispatched (new victim or wormhole fallback), not wait forever.
    """

    def test_waiting_message_redispatched_on_reopen(self):
        net, factory = make_net(circuit_cache_size=1)
        # Establish the victim circuit 0 -> 5.
        net.inject(factory.make(0, 5, 16, 0))
        drain(net)
        # Miss to dest 9: evicts the (idle) entry for dest 5.
        net.inject(factory.make(0, 9, 16, net.cycle))
        net.step()  # teardown of 0->5 now in flight
        # New message to dest 5 queues on the RELEASING entry.
        net.inject(factory.make(0, 5, 16, net.cycle))
        drain(net)
        recs = net.stats.messages
        assert all(r.delivered > 0 for r in recs.values()), (
            "slot-waiting message starved"
        )
        assert net.interfaces[0].engine.pending_count() == 0


class TestRedispatchWaiting:
    """`_redispatch_waiting` re-enters the admission path for every message
    parked on an eviction in flight.  Each outcome -- lookup hit on a fresh
    entry, open into the freed slot, a second miss picking another victim,
    and the wormhole fallback -- must neither double-count `_note_pending`
    nor strand a message.  `ActivityTracker.validate` cross-checks the
    incremental pending ledger against ground truth after every cycle."""

    @staticmethod
    def drain_validated(net, limit=20_000):
        for _ in range(limit):
            net.step()
            net.activity.validate(net)
            if net.is_idle():
                return
        raise AssertionError("network did not drain")

    def test_open_then_hit_for_two_waiters_same_dest(self):
        """Two messages waiting on the same dest: the first redispatch
        opens an entry in the freed slot, the second hits that entry."""
        net, factory = make_net(circuit_cache_size=2, replacement="lru")
        net.inject(factory.make(0, 5, 16, 0))
        drain(net)
        net.inject(factory.make(0, 9, 16, net.cycle))
        drain(net)
        # Both miss to dest 13; each evicts one idle entry and parks.
        net.inject(factory.make(0, 13, 16, net.cycle))
        net.inject(factory.make(0, 13, 16, net.cycle))
        engine = net.interfaces[0].engine
        net.step()
        assert len(engine._waiting_for_slot) == 2
        assert engine.pending_count() >= 2
        self.drain_validated(net)
        recs = net.stats.messages
        assert all(r.delivered > 0 for r in recs.values())
        # One circuit to 13 serves both: the second waiter hit the entry
        # the first waiter opened.
        modes = [recs[2].mode, recs[3].mode]
        assert SwitchingMode.CIRCUIT_NEW in modes
        assert SwitchingMode.CIRCUIT_HIT in modes
        assert engine.pending_count() == 0
        check_all_invariants(net)

    def test_re_miss_picks_second_victim(self):
        """The reopened entry steals the slot back; the waiter's second
        trip through `_miss` must evict the *other* entry, not strand."""
        net, factory = make_net(circuit_cache_size=2, replacement="lru")
        net.inject(factory.make(0, 5, 16, 0))
        drain(net)
        net.inject(factory.make(0, 9, 16, net.cycle))
        drain(net)
        # Touch 9 so dest 5 is the LRU victim for the next miss.
        net.inject(factory.make(0, 9, 16, net.cycle))
        drain(net)
        # Miss to 13 evicts entry 5 and parks.
        net.inject(factory.make(0, 13, 16, net.cycle))
        net.step()  # teardown of 0->5 in flight
        # New message to 5 queues on the RELEASING entry: on release the
        # entry re-opens for 5 and the waiter re-misses against a full
        # cache, evicting entry 9 this time.
        net.inject(factory.make(0, 5, 16, net.cycle))
        self.drain_validated(net)
        recs = net.stats.messages
        assert all(r.delivered > 0 for r in recs.values())
        engine = net.interfaces[0].engine
        assert engine.pending_count() == 0
        assert engine.cache.lookup(13) is not None, "waiter stranded"
        assert net.stats.count("clrp.cache_evictions") >= 2
        check_all_invariants(net)

    def test_re_miss_with_no_evictable_entry_falls_back(self):
        """Slot stolen back and every entry busy: the waiter must leave on
        S0 rather than wait for a slot that will never free."""
        net, factory = make_net(circuit_cache_size=1)
        net.inject(factory.make(0, 5, 16, 0))
        drain(net)
        # Miss to 9 evicts the single entry and parks.
        net.inject(factory.make(0, 9, 16, net.cycle))
        net.step()
        # A burst to 5 re-opens the entry on release and keeps it busy
        # (SETTING_UP, long queue) when the waiter re-misses.
        for _ in range(3):
            net.inject(factory.make(0, 5, 128, net.cycle))
        self.drain_validated(net)
        recs = net.stats.messages
        assert all(r.delivered > 0 for r in recs.values())
        assert recs[1].mode is SwitchingMode.WORMHOLE_FALLBACK
        assert net.stats.count("clrp.cache_full_fallback") >= 1
        engine = net.interfaces[0].engine
        assert engine.pending_count() == 0
        check_all_invariants(net)
