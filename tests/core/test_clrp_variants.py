"""Tests for section 3.1's CLRP simplification variants.

"First, when a circuit cannot be established by using Initial Switch, the
Force bit can be set without trying the remaining switches.  Similarly,
the second phase may try a single switch.  Second, the Force bit can be
set when the probe is first sent to establish the circuit, therefore
skipping phase one."
"""

import pytest

from repro.errors import ConfigError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, SwitchingMode, WaveConfig


def make_net(variant, dims=(4,), num_switches=2, **wave_kwargs):
    config = NetworkConfig(
        dims=dims,
        protocol="clrp",
        wave=WaveConfig(
            clrp_variant=variant,
            num_switches=num_switches,
            misroute_budget=0,
            **wave_kwargs,
        ),
    )
    return Network(config), MessageFactory()


def drain(net, limit=30_000):
    for _ in range(limit):
        net.step()
        if net.is_idle():
            return
    raise AssertionError("network did not drain")


def occupy_both_switches(net, factory):
    """Circuits 0->2 and 1->3 cross link 1->2 on different switches
    (their sources' Initial Switches differ by construction), so node 1
    finds every (1,+) channel taken."""
    net.inject(factory.make(0, 2, 16, net.cycle))
    drain(net)
    net.inject(factory.make(1, 3, 16, net.cycle))
    drain(net)
    switches = {c.switch for c in net.plane.table.established()}
    assert switches == {0, 1}, "setup assumption broken"


class TestConfig:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigError):
            WaveConfig(clrp_variant="fastest")  # type: ignore[arg-type]

    @pytest.mark.parametrize(
        "variant", ["standard", "eager_force", "single_switch", "immediate_force"]
    )
    def test_variants_accepted(self, variant):
        assert WaveConfig(clrp_variant=variant).clrp_variant == variant


class TestImmediateForce:
    def test_first_probe_carries_force(self):
        net, factory = make_net("immediate_force")
        net.inject(factory.make(0, 2, 16, 0))
        drain(net)
        assert net.stats.count("probe.launched_forced") >= 1
        # On an empty network the forced probe just succeeds normally.
        rec = net.stats.messages[0]
        assert rec.mode is SwitchingMode.CIRCUIT_FORCED

    def test_standard_never_forces_on_empty_network(self):
        net, factory = make_net("standard")
        net.inject(factory.make(0, 2, 16, 0))
        drain(net)
        assert net.stats.count("probe.launched_forced") == 0
        assert net.stats.messages[0].mode is SwitchingMode.CIRCUIT_NEW


class TestEagerForce:
    def test_forces_after_single_switch_attempt(self):
        """With both switches occupied, eager_force probes once clear,
        then forces; standard probes twice clear first."""
        eager_net, eager_factory = make_net("eager_force")
        occupy_both_switches(eager_net, eager_factory)
        eager_net.inject(eager_factory.make(1, 2, 16, eager_net.cycle))
        drain(eager_net)
        std_net, std_factory = make_net("standard")
        occupy_both_switches(std_net, std_factory)
        std_net.inject(std_factory.make(1, 2, 16, std_net.cycle))
        drain(std_net)
        # Both deliver via a forced circuit...
        assert eager_net.stats.count("clrp.phase2_entered") == 1
        assert std_net.stats.count("clrp.phase2_entered") == 1
        # ...but eager_force launched fewer force-clear probes for it.
        eager_clear = (
            eager_net.stats.count("probe.launched")
            - eager_net.stats.count("probe.launched_forced")
        )
        std_clear = (
            std_net.stats.count("probe.launched")
            - std_net.stats.count("probe.launched_forced")
        )
        assert eager_clear < std_clear


class TestSingleSwitch:
    def test_gives_up_after_initial_switch_both_phases(self):
        """Both phases limited to one switch: with that switch's channel
        held by a circuit still being established, fall straight through
        to wormhole."""
        net, factory = make_net("single_switch", num_switches=2,
                                setup_hop_delay=50)
        # Slow probe holds (0,+) and (1,+) un-acked on the initial switch
        # of node 1... the initial switch of node 1 is (coords sum) % 2 = 1.
        switch = net.interfaces[1].engine.initial_switch()
        net.plane.launch_probe(0, 2, switch, force=False, cycle=0)
        net.run(55)  # first hop reserved, ack far away
        net.inject(factory.make(1, 2, 16, net.cycle))
        drain(net, limit=60_000)
        rec = net.stats.messages[0]
        assert rec.delivered > 0
        if rec.mode is SwitchingMode.WORMHOLE_FALLBACK:
            # Only two probes ever launched for this dest: one clear, one
            # forced, both on the single initial switch.
            assert net.stats.count("clrp.phase3_fallbacks") == 1


class TestPhaseBudgets:
    """Each phase sweeps *exactly* its switch budget (section 3.1).

    `_open_entry` and the phase-2 restart both count their first probe as
    switch number 1, so with every channel towards the destination held by
    circuits still being established (forced probes backtrack off those
    too), the per-phase probe counts equal the budgets -- not budget+1.
    """

    BUDGETS = {
        # variant: (phase-1 clear probes, phase-2 forced probes) at k=2
        "standard": (2, 2),
        "eager_force": (1, 2),
        "single_switch": (1, 1),
        "immediate_force": (0, 2),
    }

    @pytest.mark.parametrize("variant", sorted(BUDGETS))
    def test_exact_probe_counts_when_all_switches_blocked(self, variant):
        clear_budget, forced_budget = self.BUDGETS[variant]
        net, factory = make_net(variant, num_switches=2, setup_hop_delay=50)
        # Hold the (1,+) channel on BOTH switches with slow un-acked
        # probes, so every attempt from node 1 towards node 2 fails in
        # both phases and the message walks the full phase ladder.
        for switch in (0, 1):
            net.plane.launch_probe(0, 2, switch, force=False, cycle=0)
        net.run(55)  # first hops reserved, acks still far away

        launches = []
        real = net.plane.launch_probe

        def spy(src, dst, switch, *, force, cycle):
            if src == 1:
                launches.append((switch, force))
            return real(src, dst, switch, force=force, cycle=cycle)

        net.plane.launch_probe = spy
        net.inject(factory.make(1, 2, 16, net.cycle))
        drain(net, limit=60_000)
        net.plane.launch_probe = real

        clear = [sw for sw, force in launches if not force]
        forced = [sw for sw, force in launches if force]
        assert len(clear) == clear_budget, launches
        assert len(forced) == forced_budget, launches
        # Exhausting phase 2 must end in the wormhole fallback.
        assert net.stats.count("clrp.phase3_fallbacks") == 1
        assert net.stats.messages[0].mode is SwitchingMode.WORMHOLE_FALLBACK


class TestAllVariantsDeliver:
    @pytest.mark.parametrize(
        "variant", ["standard", "eager_force", "single_switch", "immediate_force"]
    )
    def test_contended_traffic_fully_delivered(self, variant):
        from repro.sim.rng import SimRandom
        from repro.traffic import UniformPattern, uniform_workload
        from repro.verify import check_all_invariants

        config = NetworkConfig(
            dims=(4, 4),
            protocol="clrp",
            wave=WaveConfig(clrp_variant=variant, num_switches=1,
                            circuit_cache_size=2),
        )
        net = Network(config)
        workload = uniform_workload(
            MessageFactory(),
            UniformPattern(16),
            num_nodes=16,
            offered_load=0.3,
            length=24,
            duration=800,
            rng=SimRandom(6),
        )
        from repro.sim.engine import Simulator

        result = Simulator(net, workload, deadlock_check_interval=100,
                           progress_timeout=20_000).run(80_000)
        assert result.delivered == result.injected
        check_all_invariants(net)
