"""Tests for the end-point message-buffer model (section 2).

"For message passing, software overhead associated with message
transmission can be considerably reduced if message buffers are allocated
at both ends when the circuit is established. ... If the circuit is
explicitly established by the programmer and/or the compiler for a set of
messages, buffer size is determined by the longest message of the set. On
the other hand, if the circuit is automatically established ... A
reasonably large buffer can be allocated. In this case, buffers may have
to be re-allocated for longer messages."
"""

import pytest

from repro.core.carp import CircuitClose, CircuitOpen
from repro.errors import ConfigError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig
from repro.traffic.compiler import compile_directives
from repro.traffic.workloads import pair_stream_workload


def make_net(protocol="clrp", **wave_kwargs):
    wave_kwargs.setdefault("model_buffers", True)
    wave_kwargs.setdefault("default_buffer_flits", 64)
    wave_kwargs.setdefault("buffer_realloc_penalty", 200)
    config = NetworkConfig(
        dims=(4, 4), protocol=protocol, wave=WaveConfig(**wave_kwargs)
    )
    return Network(config), MessageFactory()


def drain(net, limit=60_000):
    for _ in range(limit):
        net.step()
        if net.is_idle():
            return
    raise AssertionError("network did not drain")


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            WaveConfig(default_buffer_flits=0)
        with pytest.raises(ConfigError):
            WaveConfig(buffer_realloc_penalty=-1)

    def test_buffers_off_by_default(self):
        assert WaveConfig().model_buffers is False


class TestCLRPBuffers:
    def test_default_allocation_at_establishment(self):
        net, factory = make_net()
        net.inject(factory.make(0, 5, 16, 0))
        drain(net)
        entry = net.interfaces[0].engine.cache.lookup(5)
        assert entry.buffer_flits == 64

    def test_short_messages_never_realloc(self):
        net, factory = make_net()
        for _ in range(4):
            net.inject(factory.make(0, 5, 32, 0))
        drain(net)
        assert net.stats.count("circuit.buffer_reallocs") == 0

    def test_long_message_triggers_realloc_penalty(self):
        net, factory = make_net()
        net.inject(factory.make(0, 5, 16, 0))  # establish with default 64
        drain(net)
        t0 = net.cycle
        net.inject(factory.make(0, 5, 256, t0))  # exceeds the allocation
        drain(net)
        assert net.stats.count("circuit.buffer_reallocs") == 1
        rec = net.stats.messages[1]
        # The re-allocation delay shows in the injection time.
        assert rec.injected >= t0 + 200
        entry = net.interfaces[0].engine.cache.lookup(5)
        assert entry.buffer_flits == 256

    def test_realloc_happens_once_per_growth(self):
        net, factory = make_net()
        net.inject(factory.make(0, 5, 16, 0))
        drain(net)
        for _ in range(3):
            net.inject(factory.make(0, 5, 256, net.cycle))
            drain(net)
        assert net.stats.count("circuit.buffer_reallocs") == 1

    def test_zero_penalty_realloc_is_free(self):
        net, factory = make_net(buffer_realloc_penalty=0)
        net.inject(factory.make(0, 5, 16, 0))
        drain(net)
        t0 = net.cycle
        net.inject(factory.make(0, 5, 256, t0))
        drain(net)
        assert net.stats.count("circuit.buffer_reallocs") == 1
        assert net.stats.messages[1].injected == t0

    def test_messages_flow_during_and_after_wait(self):
        """Nothing wedges while a re-allocation is pending."""
        net, factory = make_net()
        net.inject(factory.make(0, 5, 16, 0))
        drain(net)
        for length in (256, 16, 512, 16):
            net.inject(factory.make(0, 5, length, net.cycle))
        drain(net)
        assert all(m.delivered > 0 for m in net.stats.messages.values())


class TestCARPBuffers:
    def test_directive_sizes_buffers_exactly(self):
        net, factory = make_net(protocol="carp")
        net.inject(CircuitOpen(node=0, dst=5, created=0, buffer_flits=512))
        drain(net)
        entry = net.interfaces[0].engine.cache.lookup(5)
        assert entry.buffer_flits == 512

    def test_compiled_workload_never_reallocs(self):
        net, factory = make_net(protocol="carp")
        msgs = pair_stream_workload(
            factory, [(0, 5)], messages_per_pair=6, length=300, gap=50
        )
        items, report = compile_directives(msgs, min_messages=3, min_flits=48)
        opens = [d for d in items if isinstance(d, CircuitOpen)]
        assert opens and opens[0].buffer_flits == 300
        from repro.sim.engine import Simulator

        Simulator(net, items).run(100_000)
        assert net.stats.count("circuit.buffer_reallocs") == 0
        assert all(m.delivered > 0 for m in net.stats.messages.values())

    def test_clrp_same_workload_does_realloc(self):
        """The CARP-vs-CLRP buffer contrast the paper draws."""
        net, factory = make_net(protocol="clrp")
        msgs = pair_stream_workload(
            factory, [(0, 5)], messages_per_pair=6, length=300, gap=50
        )
        from repro.sim.engine import Simulator

        Simulator(net, msgs).run(100_000)
        assert net.stats.count("circuit.buffer_reallocs") == 1
