"""Tests for the Circuit Cache replacement policies."""

import pytest

from repro.core.circuit_cache import CircuitCacheEntry
from repro.core.replacement import (
    FIFOReplacement,
    LFUReplacement,
    LRUReplacement,
    RandomReplacement,
    make_replacement,
)
from repro.errors import ConfigError
from repro.sim.rng import SimRandom


def entry(dest, created=0, last_used=0, use_count=0):
    e = CircuitCacheEntry(dest=dest, initial_switch=0, switch=0)
    e.created_at = created
    e.last_used = last_used
    e.use_count = use_count
    return e


class TestLRU:
    def test_evicts_least_recently_used(self):
        entries = [entry(1, last_used=50), entry(2, last_used=10),
                   entry(3, last_used=90)]
        assert LRUReplacement().select_victim(entries, 100).dest == 2

    def test_tie_breaks_on_dest(self):
        entries = [entry(5, last_used=10), entry(2, last_used=10)]
        assert LRUReplacement().select_victim(entries, 100).dest == 2


class TestLFU:
    def test_evicts_least_frequently_used(self):
        entries = [entry(1, use_count=9), entry(2, use_count=2),
                   entry(3, use_count=5)]
        assert LFUReplacement().select_victim(entries, 100).dest == 2

    def test_count_tie_breaks_on_recency(self):
        entries = [entry(1, use_count=2, last_used=80),
                   entry(2, use_count=2, last_used=10)]
        assert LFUReplacement().select_victim(entries, 100).dest == 2


class TestFIFO:
    def test_evicts_oldest(self):
        entries = [entry(1, created=30), entry(2, created=5), entry(3, created=60)]
        assert FIFOReplacement().select_victim(entries, 100).dest == 2


class TestRandom:
    def test_deterministic_under_seed(self):
        entries = [entry(i) for i in range(10)]
        a = RandomReplacement(SimRandom(3)).select_victim(entries, 0)
        b = RandomReplacement(SimRandom(3)).select_victim(entries, 0)
        assert a.dest == b.dest

    def test_covers_multiple_victims(self):
        entries = [entry(i) for i in range(5)]
        policy = RandomReplacement(SimRandom(1))
        seen = {policy.select_victim(entries, 0).dest for _ in range(50)}
        assert len(seen) > 1

    def test_victim_independent_of_list_order(self):
        """Regression: the evictable list inherits cache-dict iteration
        order, which depends on the cache's mutation history.  The draw
        must be over the canonical (created_at, dest) ordering, so that
        the same seed evicts the same victim however the caller happened
        to order the candidates."""
        entries = [entry(i, created=100 - i) for i in range(8)]
        shuffled = list(reversed(entries))
        rotated = entries[3:] + entries[:3]
        a = RandomReplacement(SimRandom(7)).select_victim(entries, 0)
        b = RandomReplacement(SimRandom(7)).select_victim(shuffled, 0)
        c = RandomReplacement(SimRandom(7)).select_victim(rotated, 0)
        assert a.dest == b.dest == c.dest

    def test_cross_run_eviction_sequence_deterministic(self):
        """Two identically-seeded full simulations with random replacement
        must evict identical victims in identical order."""
        from repro.network.message import MessageFactory
        from repro.network.network import Network
        from repro.sim.config import NetworkConfig, WaveConfig
        from repro.sim.engine import Simulator
        from repro.traffic import UniformPattern, uniform_workload

        def evictions():
            config = NetworkConfig(
                dims=(4,),
                protocol="clrp",
                seed=11,
                wave=WaveConfig(circuit_cache_size=2, replacement="random"),
            )
            net = Network(config)
            workload = uniform_workload(
                MessageFactory(),
                UniformPattern(4),
                num_nodes=4,
                offered_load=0.4,
                length=8,
                duration=400,
                rng=SimRandom(9),
            )
            Simulator(net, workload).run(20_000)
            trail = []
            for ni in net.interfaces:
                cache = ni.engine.cache
                trail.append((ni.node, sorted(cache.entries)))
            return net.stats.count("clrp.cache_evictions"), trail

        first = evictions()
        second = evictions()
        assert first[0] > 0, "scenario produced no evictions"
        assert first == second


class TestOnUse:
    def test_updates_replace_accounting(self):
        e = entry(1)
        policy = LRUReplacement()
        policy.on_use(e, 42)
        policy.on_use(e, 77)
        assert e.last_used == 77
        assert e.use_count == 2


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUReplacement),
        ("lfu", LFUReplacement),
        ("fifo", FIFOReplacement),
        ("random", RandomReplacement),
    ])
    def test_make(self, name, cls):
        assert isinstance(make_replacement(name, SimRandom(0)), cls)

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_replacement("mru", SimRandom(0))
