"""Tests for the Circuit Cache replacement policies."""

import pytest

from repro.core.circuit_cache import CircuitCacheEntry
from repro.core.replacement import (
    FIFOReplacement,
    LFUReplacement,
    LRUReplacement,
    RandomReplacement,
    make_replacement,
)
from repro.errors import ConfigError
from repro.sim.rng import SimRandom


def entry(dest, created=0, last_used=0, use_count=0):
    e = CircuitCacheEntry(dest=dest, initial_switch=0, switch=0)
    e.created_at = created
    e.last_used = last_used
    e.use_count = use_count
    return e


class TestLRU:
    def test_evicts_least_recently_used(self):
        entries = [entry(1, last_used=50), entry(2, last_used=10),
                   entry(3, last_used=90)]
        assert LRUReplacement().select_victim(entries, 100).dest == 2

    def test_tie_breaks_on_dest(self):
        entries = [entry(5, last_used=10), entry(2, last_used=10)]
        assert LRUReplacement().select_victim(entries, 100).dest == 2


class TestLFU:
    def test_evicts_least_frequently_used(self):
        entries = [entry(1, use_count=9), entry(2, use_count=2),
                   entry(3, use_count=5)]
        assert LFUReplacement().select_victim(entries, 100).dest == 2

    def test_count_tie_breaks_on_recency(self):
        entries = [entry(1, use_count=2, last_used=80),
                   entry(2, use_count=2, last_used=10)]
        assert LFUReplacement().select_victim(entries, 100).dest == 2


class TestFIFO:
    def test_evicts_oldest(self):
        entries = [entry(1, created=30), entry(2, created=5), entry(3, created=60)]
        assert FIFOReplacement().select_victim(entries, 100).dest == 2


class TestRandom:
    def test_deterministic_under_seed(self):
        entries = [entry(i) for i in range(10)]
        a = RandomReplacement(SimRandom(3)).select_victim(entries, 0)
        b = RandomReplacement(SimRandom(3)).select_victim(entries, 0)
        assert a.dest == b.dest

    def test_covers_multiple_victims(self):
        entries = [entry(i) for i in range(5)]
        policy = RandomReplacement(SimRandom(1))
        seen = {policy.select_victim(entries, 0).dest for _ in range(50)}
        assert len(seen) > 1


class TestOnUse:
    def test_updates_replace_accounting(self):
        e = entry(1)
        policy = LRUReplacement()
        policy.on_use(e, 42)
        policy.on_use(e, 77)
        assert e.last_used == 77
        assert e.use_count == 2


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUReplacement),
        ("lfu", LFUReplacement),
        ("fifo", FIFOReplacement),
        ("random", RandomReplacement),
    ])
    def test_make(self, name, cls):
        assert isinstance(make_replacement(name, SimRandom(0)), cls)

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_replacement("mru", SimRandom(0))
