"""Edge-case unit tests for the engine base class.

These exercise the defensive branches the integration tests rarely hit:
orphan circuits, stale callbacks, and illegal state transitions.
"""

import pytest

from repro.circuits.circuit import CircuitState
from repro.core.circuit_cache import CacheEntryState
from repro.errors import ProtocolError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig


def make_net(**wave_kwargs):
    config = NetworkConfig(
        dims=(4, 4), protocol="clrp", wave=WaveConfig(**wave_kwargs)
    )
    return Network(config), MessageFactory()


def drain(net, limit=20_000):
    for _ in range(limit):
        net.step()
        if net.is_idle():
            return
    raise AssertionError("network did not drain")


def established_circuit(net, factory, src=0, dst=5):
    net.inject(factory.make(src, dst, 16, net.cycle))
    drain(net)
    entry = net.interfaces[src].engine.cache.lookup(dst)
    assert entry is not None and entry.circuit is not None
    return entry.circuit


class TestOrphanCircuits:
    def test_established_without_entry_torn_down(self):
        """A circuit whose cache entry vanished is released on arrival."""
        net, factory = make_net()
        engine = net.interfaces[0].engine
        # Launch a bare probe (no cache entry) owned by node 0's engine.
        circuit, _ = net.plane.launch_probe(0, 5, 0, force=False, cycle=0)
        drain(net)
        assert circuit.state is CircuitState.DEAD
        assert net.stats.count("circuit.orphan_teardowns") == 1

    def test_transfer_completed_for_stale_entry(self):
        """If the entry was replaced mid-transfer, the idle circuit is
        torn down rather than leaked."""
        net, factory = make_net()
        circuit = established_circuit(net, factory)
        entry = net.interfaces[0].engine.cache.remove(5)  # simulate loss
        # Start a transfer directly, then let it complete.
        from repro.sim.stats import MessageRecord

        msg = factory.make(0, 5, 8, net.cycle)
        net.stats.new_message(
            MessageRecord(msg_id=msg.msg_id, src=0, dst=5, length=8,
                          created=net.cycle)
        )
        net.plane.start_transfer(circuit, msg, net.cycle)
        drain(net)
        assert circuit.state is CircuitState.DEAD


class TestReleaseEdgeCases:
    def test_release_requested_for_dead_circuit_ignored(self):
        net, factory = make_net()
        circuit = established_circuit(net, factory)
        engine = net.interfaces[0].engine
        engine.release_requested(circuit, net.cycle)  # legit: tears down
        drain(net)
        assert circuit.state is CircuitState.DEAD
        # A second (stale) request must be a no-op, not a crash.
        engine.release_requested(circuit, net.cycle)
        drain(net)

    def test_release_entry_in_wrong_state_raises(self):
        net, factory = make_net()
        established_circuit(net, factory)
        engine = net.interfaces[0].engine
        entry = engine.cache.lookup(5)
        entry.state = CacheEntryState.SETTING_UP  # corrupt
        with pytest.raises(ProtocolError):
            engine._release_entry(entry, net.cycle)

    def test_double_release_request_deduped(self):
        """Two requests while in use produce exactly one teardown."""
        net, factory = make_net()
        circuit = established_circuit(net, factory, dst=15)
        engine = net.interfaces[0].engine
        net.inject(factory.make(0, 15, 2048, net.cycle))
        net.run(5)  # transfer in flight
        assert circuit.in_use
        engine.release_requested(circuit, net.cycle)
        engine.release_requested(circuit, net.cycle)
        drain(net)
        assert net.stats.count("circuit.teardowns") == 1
        assert circuit.state is CircuitState.DEAD


class TestCallbackGuards:
    def test_probe_failed_without_entry_raises(self):
        net, factory = make_net()
        engine = net.interfaces[0].engine
        circuit = net.plane.table.create(0, 5, 0)
        from repro.circuits.probe import Probe

        probe = Probe(probe_id=99, circuit_id=circuit.circuit_id, src=0,
                      dst=5, switch=0, force=False, max_misroutes=0)
        with pytest.raises(ProtocolError):
            engine.probe_failed(probe, circuit, 0)

    def test_initial_switch_stable(self):
        net, factory = make_net(num_switches=3)
        engine = net.interfaces[5].engine
        assert engine.initial_switch() == engine.initial_switch()
        assert 0 <= engine.initial_switch() < 3
