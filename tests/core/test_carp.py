"""Tests for the CARP engine: directives, prefetching, fallbacks."""

import pytest

from repro.core.carp import CircuitClose, CircuitOpen
from repro.errors import ProtocolError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, SwitchingMode, WaveConfig
from repro.verify import check_all_invariants


def make_net(dims=(4, 4), **wave_kwargs):
    config = NetworkConfig(dims=dims, protocol="carp", wave=WaveConfig(**wave_kwargs))
    return Network(config), MessageFactory()


def drain(net, limit=20_000):
    for _ in range(limit):
        net.step()
        if net.is_idle():
            return
    raise AssertionError("network did not drain")


class TestOpenClose:
    def test_open_establishes_circuit(self):
        net, factory = make_net()
        net.inject(CircuitOpen(node=0, dst=5, created=0))
        drain(net)
        entry = net.interfaces[0].engine.cache.lookup(5)
        assert entry is not None
        assert entry.ack_returned
        assert net.stats.count("carp.opens") == 1
        check_all_invariants(net)

    def test_hinted_message_rides_prefetched_circuit(self):
        net, factory = make_net()
        net.inject(CircuitOpen(node=0, dst=5, created=0))
        drain(net)
        net.inject(factory.make(0, 5, 64, net.cycle, circuit_hint=True))
        drain(net)
        rec = net.stats.messages[0]
        assert rec.mode is SwitchingMode.CIRCUIT_HIT
        assert rec.setup_cycles == 0  # prefetched: no setup charged

    def test_close_tears_down(self):
        net, factory = make_net()
        net.inject(CircuitOpen(node=0, dst=5, created=0))
        drain(net)
        net.inject(CircuitClose(node=0, dst=5, created=net.cycle))
        drain(net)
        assert net.interfaces[0].engine.cache.lookup(5) is None
        assert net.stats.count("circuit.released") == 1
        check_all_invariants(net)

    def test_close_waits_for_in_flight_message(self):
        net, factory = make_net()
        net.inject(CircuitOpen(node=0, dst=15, created=0))
        drain(net)
        net.inject(factory.make(0, 15, 512, net.cycle, circuit_hint=True))
        net.run(5)  # transfer started, still streaming
        net.inject(CircuitClose(node=0, dst=15, created=net.cycle))
        drain(net)
        rec = net.stats.messages[0]
        assert rec.delivered > 0  # message completed before teardown
        assert net.interfaces[0].engine.cache.lookup(15) is None

    def test_close_without_open_ignored(self):
        net, factory = make_net()
        net.inject(CircuitClose(node=0, dst=5, created=0))
        drain(net)
        assert net.stats.count("carp.close_no_entry") == 1

    def test_duplicate_open_ignored(self):
        net, factory = make_net()
        net.inject(CircuitOpen(node=0, dst=5, created=0))
        drain(net)
        net.inject(CircuitOpen(node=0, dst=5, created=net.cycle))
        drain(net)
        assert net.stats.count("carp.open_already_present") == 1
        assert net.stats.count("carp.opens") == 1

    def test_close_overtaking_setup_releases_after_establish(self):
        net, factory = make_net()
        net.inject(CircuitOpen(node=0, dst=15, created=0))
        net.step()  # probe in flight
        net.inject(CircuitClose(node=0, dst=15, created=net.cycle))
        drain(net)
        assert net.interfaces[0].engine.cache.lookup(15) is None
        check_all_invariants(net)


class TestMessages:
    def test_unhinted_message_uses_wormhole(self):
        net, factory = make_net()
        net.inject(factory.make(0, 5, 32, 0, circuit_hint=False))
        drain(net)
        assert net.stats.messages[0].mode is SwitchingMode.WORMHOLE

    def test_hinted_message_without_circuit_falls_back(self):
        net, factory = make_net()
        net.inject(factory.make(0, 5, 32, 0, circuit_hint=True))
        drain(net)
        rec = net.stats.messages[0]
        assert rec.mode is SwitchingMode.WORMHOLE_FALLBACK
        assert net.stats.count("carp.hinted_fallback") == 1

    def test_message_queued_during_setup_flows_after(self):
        net, factory = make_net()
        net.inject(CircuitOpen(node=0, dst=15, created=0))
        net.inject(factory.make(0, 15, 32, 0, circuit_hint=True))
        drain(net)
        assert net.stats.messages[0].mode is SwitchingMode.CIRCUIT_HIT

    def test_carp_never_forces(self):
        """CARP probes carry Force clear: no victim releases ever."""
        net, factory = make_net(dims=(3,), num_switches=1, misroute_budget=0)
        net.inject(CircuitOpen(node=0, dst=2, created=0))
        drain(net)
        net.inject(CircuitOpen(node=1, dst=2, created=net.cycle))
        net.inject(factory.make(1, 2, 32, net.cycle + 1, circuit_hint=True))
        drain(net)
        assert net.stats.count("probe.launched_forced") == 0
        assert net.stats.count("clrp.victim_releases_requested") == 0
        # The second open failed; its message fell back to wormhole.
        assert net.stats.count("carp.setup_failed") == 1
        assert net.stats.messages[0].mode is SwitchingMode.WORMHOLE_FALLBACK


class TestCachePressure:
    def test_open_evicts_idle_entry_when_full(self):
        net, factory = make_net(circuit_cache_size=1)
        net.inject(CircuitOpen(node=0, dst=5, created=0))
        drain(net)
        net.inject(CircuitOpen(node=0, dst=9, created=net.cycle))
        drain(net)
        engine = net.interfaces[0].engine
        assert engine.cache.lookup(5) is None
        assert engine.cache.lookup(9) is not None
        assert net.stats.count("carp.open_evictions") == 1

    def test_open_dropped_when_nothing_evictable(self):
        net, factory = make_net(circuit_cache_size=1)
        net.inject(CircuitOpen(node=0, dst=5, created=0))
        drain(net)
        # Keep entry 5 busy with a huge message, then open another.
        net.inject(factory.make(0, 5, 2048, net.cycle, circuit_hint=True))
        net.run(3)
        net.inject(CircuitOpen(node=0, dst=9, created=net.cycle))
        drain(net)
        assert net.stats.count("carp.open_dropped_cache_full") == 1


class TestDirectiveValidation:
    def test_wrong_node_rejected(self):
        net, factory = make_net()
        with pytest.raises(ProtocolError):
            net.interfaces[0].on_directive(
                CircuitOpen(node=3, dst=5, created=0), 0
            )

    def test_retry_sweeps(self):
        net, factory = make_net(dims=(3,), num_switches=1, misroute_budget=0,
                                max_setup_retries=3)
        net.inject(CircuitOpen(node=0, dst=2, created=0))
        drain(net)
        net.inject(CircuitOpen(node=1, dst=2, created=net.cycle))
        drain(net)
        # 1 initial sweep + 2 retries = 3 probes for the failing open.
        assert net.stats.count("carp.setup_retries") == 2
