"""Tests for the wormhole-only baseline engine."""

import pytest

from repro.errors import ProtocolError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, SwitchingMode


def make_net():
    return Network(NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None))


def drain(net, limit=20_000):
    for _ in range(limit):
        net.step()
        if net.is_idle():
            return
    raise AssertionError("network did not drain")


class TestBaseline:
    def test_everything_goes_wormhole(self):
        net = make_net()
        factory = MessageFactory()
        for i in range(8):
            net.inject(factory.make(i, 15 - i, 16, 0))
        drain(net)
        assert all(
            m.mode is SwitchingMode.WORMHOLE for m in net.stats.messages.values()
        )
        assert all(m.delivered > 0 for m in net.stats.messages.values())

    def test_no_circuit_machinery(self):
        net = make_net()
        factory = MessageFactory()
        net.inject(factory.make(0, 5, 16, 0))
        drain(net)
        assert net.stats.count("probe.launched") == 0
        assert net.stats.count("circuit.established") == 0

    def test_baseline_rejects_plane_callbacks(self):
        net = make_net()
        engine = net.interfaces[0].engine
        with pytest.raises(ProtocolError):
            engine.circuit_established(None, 0)
        with pytest.raises(ProtocolError):
            engine.on_directive(None, 0)

    def test_latency_is_distance_plus_length(self):
        """Zero-load wormhole latency ~ D + L cycles."""
        net = make_net()
        factory = MessageFactory()
        net.inject(factory.make(0, 15, 32, 0))
        drain(net)
        rec = net.stats.messages[0]
        d = net.topology.distance(0, 15)
        assert rec.latency == pytest.approx(d + 32, abs=4)
