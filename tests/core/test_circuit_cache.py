"""F5: tests for the Circuit Cache registers (Fig. 5)."""

import pytest

from repro.circuits.circuit import Circuit, CircuitState
from repro.core.circuit_cache import (
    CacheEntryState,
    CircuitCache,
    CircuitCacheEntry,
)
from repro.core.replacement import LRUReplacement
from repro.errors import ProtocolError
from repro.network.message import Message


def cache(capacity=4):
    return CircuitCache(capacity, LRUReplacement())


def entry(dest, state=CacheEntryState.SETTING_UP, with_circuit=False):
    e = CircuitCacheEntry(dest=dest, initial_switch=1, switch=1)
    e.state = state
    if with_circuit:
        c = Circuit(circuit_id=dest + 100, src=0, dst=dest, switch=1,
                    state=CircuitState.ESTABLISHED)
        c.path = [(0, 2)]
        e.circuit = c
    return e


class TestFig5Registers:
    """Every register the figure lists is present and behaves."""

    def test_initial_switch_and_switch(self):
        e = entry(5)
        assert e.initial_switch == 1
        assert e.switch == 1

    def test_dest_field(self):
        assert entry(7).dest == 7

    def test_ack_returned_mirrors_state(self):
        e = entry(5)
        assert not e.ack_returned
        e.state = CacheEntryState.ESTABLISHED
        assert e.ack_returned

    def test_in_use_mirrors_circuit(self):
        e = entry(5, CacheEntryState.ESTABLISHED, with_circuit=True)
        assert not e.in_use
        e.circuit.in_use = True
        assert e.in_use

    def test_channel_field_from_path(self):
        e = entry(5, with_circuit=True)
        assert e.channel == 2
        assert entry(5).channel is None

    def test_replace_accounting_fields(self):
        e = entry(5)
        assert e.use_count == 0
        assert e.last_used == 0
        assert e.created_at == 0


class TestEvictable:
    def test_established_idle_is_evictable(self):
        e = entry(5, CacheEntryState.ESTABLISHED, with_circuit=True)
        assert e.evictable()

    def test_setting_up_not_evictable(self):
        assert not entry(5).evictable()

    def test_in_use_not_evictable(self):
        e = entry(5, CacheEntryState.ESTABLISHED, with_circuit=True)
        e.circuit.in_use = True
        assert not e.evictable()

    def test_queued_not_evictable(self):
        e = entry(5, CacheEntryState.ESTABLISHED, with_circuit=True)
        e.queue.append(Message(msg_id=1, src=0, dst=5, length=8, created=0))
        assert not e.evictable()

    def test_pending_release_not_evictable(self):
        e = entry(5, CacheEntryState.ESTABLISHED, with_circuit=True)
        e.pending_release = True
        assert not e.evictable()


class TestCircuitCache:
    def test_insert_lookup_remove(self):
        c = cache()
        e = entry(5)
        c.insert(e)
        assert c.lookup(5) is e
        assert c.remove(5) is e
        assert c.lookup(5) is None

    def test_duplicate_dest_rejected(self):
        c = cache()
        c.insert(entry(5))
        with pytest.raises(ProtocolError):
            c.insert(entry(5))

    def test_capacity_enforced(self):
        c = cache(capacity=2)
        c.insert(entry(1))
        c.insert(entry(2))
        assert c.full
        with pytest.raises(ProtocolError):
            c.insert(entry(3))

    def test_remove_missing_raises(self):
        with pytest.raises(ProtocolError):
            cache().remove(9)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ProtocolError):
            CircuitCache(0, LRUReplacement())

    def test_pick_victim_respects_evictability(self):
        c = cache(capacity=3)
        c.insert(entry(1))  # setting up: not evictable
        established = entry(2, CacheEntryState.ESTABLISHED, with_circuit=True)
        c.insert(established)
        assert c.pick_victim(0) is established

    def test_pick_victim_none_when_all_busy(self):
        c = cache(capacity=2)
        c.insert(entry(1))
        c.insert(entry(2))
        assert c.pick_victim(0) is None

    def test_pick_victim_uses_policy(self):
        c = cache(capacity=3)
        cold = entry(1, CacheEntryState.ESTABLISHED, with_circuit=True)
        cold.last_used = 5
        hot = entry(2, CacheEntryState.ESTABLISHED, with_circuit=True)
        hot.last_used = 500
        c.insert(cold)
        c.insert(hot)
        assert c.pick_victim(1000) is cold

    def test_pending_messages_counts_queues(self):
        c = cache()
        e1, e2 = entry(1), entry(2)
        e1.queue.append(Message(msg_id=1, src=0, dst=1, length=8, created=0))
        e1.queue.append(Message(msg_id=2, src=0, dst=1, length=8, created=0))
        e2.queue.append(Message(msg_id=3, src=0, dst=2, length=8, created=0))
        c.insert(e1)
        c.insert(e2)
        assert c.pending_messages() == 3

    def test_find_by_circuit(self):
        c = cache()
        e = entry(5, with_circuit=True)
        c.insert(e)
        assert c.find_by_circuit(e.circuit.circuit_id) is e
        assert c.find_by_circuit(999) is None

    def test_note_use_delegates_to_policy(self):
        c = cache()
        e = entry(5)
        c.insert(e)
        c.note_use(e, 77)
        assert e.last_used == 77
        assert e.use_count == 1


class TestCircuitIndex:
    """The circuit_id -> entry index behind O(1) find_by_circuit must stay
    consistent through the whole bind/unbind/remove lifecycle."""

    def _circuit(self, cid, dst):
        c = Circuit(circuit_id=cid, src=0, dst=dst, switch=1,
                    state=CircuitState.ESTABLISHED)
        c.path = [(0, 2)]
        return c

    def test_bind_indexes_and_unbind_unindexes(self):
        c = cache()
        e = entry(3)
        c.insert(e)
        circuit = self._circuit(42, 3)
        c.bind_circuit(e, circuit)
        assert c.find_by_circuit(42) is e
        c.unbind_circuit(e)
        assert e.circuit is None
        assert c.find_by_circuit(42) is None

    def test_rebind_drops_old_id(self):
        # A re-opened entry gets a fresh circuit attempt with a new id;
        # the stale id must not resolve any more.
        c = cache()
        e = entry(3)
        c.insert(e)
        c.bind_circuit(e, self._circuit(42, 3))
        c.bind_circuit(e, self._circuit(43, 3))
        assert c.find_by_circuit(42) is None
        assert c.find_by_circuit(43) is e

    def test_remove_drops_index(self):
        c = cache()
        e = entry(5, with_circuit=True)
        c.insert(e)
        cid = e.circuit.circuit_id
        c.remove(5)
        assert c.find_by_circuit(cid) is None

    def test_unbind_without_circuit_is_noop(self):
        c = cache()
        e = entry(3)
        c.insert(e)
        c.unbind_circuit(e)
        assert e.circuit is None


def test_index_survives_teardown_heavy_clrp_traffic():
    """Regression: a tiny cache under CLRP phase-2 pressure churns through
    evictions, forced teardowns and re-opens; after draining, the index
    must exactly mirror the entries' circuits at every node."""
    from repro.network.message import MessageFactory
    from repro.network.network import Network
    from repro.sim.config import NetworkConfig, WaveConfig, WormholeConfig
    from repro.sim.engine import Simulator
    from repro.sim.rng import SimRandom
    from repro.traffic import UniformPattern, uniform_workload

    config = NetworkConfig(
        topology="mesh",
        dims=(3, 3),
        protocol="clrp",
        wormhole=WormholeConfig(vcs=1, routing="dor", buffer_depth=2),
        wave=WaveConfig(num_switches=1, circuit_cache_size=1,
                        replacement="lru"),
        seed=5,
    )
    net = Network(config)
    msgs = uniform_workload(
        MessageFactory(),
        UniformPattern(config.num_nodes),
        num_nodes=config.num_nodes,
        offered_load=0.3,
        length=16,
        duration=400,
        rng=SimRandom(17),
    )
    result = Simulator(net, msgs, progress_timeout=20_000).run(100_000)
    assert result.completed
    assert net.stats.count("clrp.phase2_entered") > 0
    assert net.stats.count("circuit.teardowns") > 0
    for ni in net.interfaces:
        engine = ni.engine
        expected = {
            e.circuit.circuit_id: e
            for e in engine.cache.entries.values()
            if e.circuit is not None
        }
        assert engine.cache._by_circuit == expected
