"""F5: tests for the Circuit Cache registers (Fig. 5)."""

import pytest

from repro.circuits.circuit import Circuit, CircuitState
from repro.core.circuit_cache import (
    CacheEntryState,
    CircuitCache,
    CircuitCacheEntry,
)
from repro.core.replacement import LRUReplacement
from repro.errors import ProtocolError
from repro.network.message import Message


def cache(capacity=4):
    return CircuitCache(capacity, LRUReplacement())


def entry(dest, state=CacheEntryState.SETTING_UP, with_circuit=False):
    e = CircuitCacheEntry(dest=dest, initial_switch=1, switch=1)
    e.state = state
    if with_circuit:
        c = Circuit(circuit_id=dest + 100, src=0, dst=dest, switch=1,
                    state=CircuitState.ESTABLISHED)
        c.path = [(0, 2)]
        e.circuit = c
    return e


class TestFig5Registers:
    """Every register the figure lists is present and behaves."""

    def test_initial_switch_and_switch(self):
        e = entry(5)
        assert e.initial_switch == 1
        assert e.switch == 1

    def test_dest_field(self):
        assert entry(7).dest == 7

    def test_ack_returned_mirrors_state(self):
        e = entry(5)
        assert not e.ack_returned
        e.state = CacheEntryState.ESTABLISHED
        assert e.ack_returned

    def test_in_use_mirrors_circuit(self):
        e = entry(5, CacheEntryState.ESTABLISHED, with_circuit=True)
        assert not e.in_use
        e.circuit.in_use = True
        assert e.in_use

    def test_channel_field_from_path(self):
        e = entry(5, with_circuit=True)
        assert e.channel == 2
        assert entry(5).channel is None

    def test_replace_accounting_fields(self):
        e = entry(5)
        assert e.use_count == 0
        assert e.last_used == 0
        assert e.created_at == 0


class TestEvictable:
    def test_established_idle_is_evictable(self):
        e = entry(5, CacheEntryState.ESTABLISHED, with_circuit=True)
        assert e.evictable()

    def test_setting_up_not_evictable(self):
        assert not entry(5).evictable()

    def test_in_use_not_evictable(self):
        e = entry(5, CacheEntryState.ESTABLISHED, with_circuit=True)
        e.circuit.in_use = True
        assert not e.evictable()

    def test_queued_not_evictable(self):
        e = entry(5, CacheEntryState.ESTABLISHED, with_circuit=True)
        e.queue.append(Message(msg_id=1, src=0, dst=5, length=8, created=0))
        assert not e.evictable()

    def test_pending_release_not_evictable(self):
        e = entry(5, CacheEntryState.ESTABLISHED, with_circuit=True)
        e.pending_release = True
        assert not e.evictable()


class TestCircuitCache:
    def test_insert_lookup_remove(self):
        c = cache()
        e = entry(5)
        c.insert(e)
        assert c.lookup(5) is e
        assert c.remove(5) is e
        assert c.lookup(5) is None

    def test_duplicate_dest_rejected(self):
        c = cache()
        c.insert(entry(5))
        with pytest.raises(ProtocolError):
            c.insert(entry(5))

    def test_capacity_enforced(self):
        c = cache(capacity=2)
        c.insert(entry(1))
        c.insert(entry(2))
        assert c.full
        with pytest.raises(ProtocolError):
            c.insert(entry(3))

    def test_remove_missing_raises(self):
        with pytest.raises(ProtocolError):
            cache().remove(9)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ProtocolError):
            CircuitCache(0, LRUReplacement())

    def test_pick_victim_respects_evictability(self):
        c = cache(capacity=3)
        c.insert(entry(1))  # setting up: not evictable
        established = entry(2, CacheEntryState.ESTABLISHED, with_circuit=True)
        c.insert(established)
        assert c.pick_victim(0) is established

    def test_pick_victim_none_when_all_busy(self):
        c = cache(capacity=2)
        c.insert(entry(1))
        c.insert(entry(2))
        assert c.pick_victim(0) is None

    def test_pick_victim_uses_policy(self):
        c = cache(capacity=3)
        cold = entry(1, CacheEntryState.ESTABLISHED, with_circuit=True)
        cold.last_used = 5
        hot = entry(2, CacheEntryState.ESTABLISHED, with_circuit=True)
        hot.last_used = 500
        c.insert(cold)
        c.insert(hot)
        assert c.pick_victim(1000) is cold

    def test_pending_messages_counts_queues(self):
        c = cache()
        e1, e2 = entry(1), entry(2)
        e1.queue.append(Message(msg_id=1, src=0, dst=1, length=8, created=0))
        e1.queue.append(Message(msg_id=2, src=0, dst=1, length=8, created=0))
        e2.queue.append(Message(msg_id=3, src=0, dst=2, length=8, created=0))
        c.insert(e1)
        c.insert(e2)
        assert c.pending_messages() == 3

    def test_find_by_circuit(self):
        c = cache()
        e = entry(5, with_circuit=True)
        c.insert(e)
        assert c.find_by_circuit(e.circuit.circuit_id) is e
        assert c.find_by_circuit(999) is None

    def test_note_use_delegates_to_policy(self):
        c = cache()
        e = entry(5)
        c.insert(e)
        c.note_use(e, 77)
        assert e.last_used == 77
        assert e.use_count == 1
