"""F2: tests for the hybrid wave router composition (Fig. 2)."""

import pytest

from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig, WormholeConfig


def make_net(k=2, w=3):
    config = NetworkConfig(
        dims=(4, 4),
        protocol="clrp",
        wormhole=WormholeConfig(vcs=w),
        wave=WaveConfig(num_switches=k),
    )
    return Network(config)


class TestComposition:
    def test_one_wave_router_per_node(self):
        net = make_net()
        assert len(net.wave_routers) == 16
        for wr in net.wave_routers:
            assert wr.wormhole is net.routers[wr.node]
            assert wr.pcs is net.plane.units[wr.node]

    def test_fig2_channel_accounting(self):
        """Each S0 physical channel splits into k + w virtual channels."""
        wr = make_net(k=3, w=2).wave_routers[0]
        assert wr.num_wave_switches == 3
        assert wr.num_wormhole_vcs == 2
        assert wr.virtual_channels_per_physical_channel == 5

    def test_mismatched_nodes_rejected(self):
        from repro.core.wave_router import WaveRouter

        net = make_net()
        with pytest.raises(ValueError):
            WaveRouter(net.routers[0], net.plane.units[1])

    def test_simplest_wave_router_k1(self):
        """The paper's 'simplest version': k=1 (w=0 is not simulable for
        the fallback path, so w stays >= 1)."""
        net = make_net(k=1, w=1)
        assert net.wave_routers[0].num_wave_switches == 1

    def test_circuit_switch_state_reflects_mappings(self):
        net = make_net(k=2)
        factory = MessageFactory()
        net.inject(factory.make(0, 10, 32, 0))
        for _ in range(5000):
            net.step()
            if net.is_idle():
                break
        # The circuit crossed some node: that node's wave switch must show
        # a configured input->output connection on the circuit's switch.
        circuit = net.plane.table.established()[0]
        if circuit.length > 1:
            mid_node = circuit.path[1][0]
            state = net.wave_routers[mid_node].circuit_switch_state(circuit.switch)
            assert state  # at least one configured connection
            for in_key, out_key in state.items():
                assert in_key[1] == circuit.switch
                assert out_key[1] == circuit.switch

    def test_wormhole_baseline_has_no_wave_routers(self):
        net = Network(NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None))
        assert net.wave_routers == []
        assert net.plane is None
