"""Tests for the timeline tracker and seed sweep."""

import math

import pytest

from repro.analysis.experiments import run_seed_sweep
from repro.analysis.timeline import TimelineTracker
from repro.errors import ConfigError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, uniform_workload


def tracked_run(load=0.2, duration=4000, window=400):
    config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
    net = Network(config)
    workload = uniform_workload(
        MessageFactory(),
        UniformPattern(16),
        num_nodes=16,
        offered_load=load,
        length=16,
        duration=duration,
        rng=SimRandom(5),
    )
    tracker = TimelineTracker(window=window)
    Simulator(net, workload, on_cycle=tracker.on_cycle).run(duration + 5000)
    return net, tracker


class TestTimelineTracker:
    def test_windows_tile_the_run(self):
        net, tracker = tracked_run()
        assert tracker.windows
        for a, b in zip(tracker.windows, tracker.windows[1:]):
            assert a.end == b.start

    def test_delivered_totals_match(self):
        net, tracker = tracked_run()
        total = sum(w.delivered for w in tracker.windows)
        # Some deliveries may land after the final full window.
        assert total <= len(net.stats.delivered_records())
        assert total >= 0.9 * len(net.stats.delivered_records())

    def test_throughput_reasonable(self):
        net, tracker = tracked_run(load=0.2)
        peak = tracker.peak_throughput()
        assert 0 < peak  # flits per cycle over the whole machine window
        # Peak per-window flits/cycle should be near offered 0.2 * 16.
        assert peak < 16 * 0.5

    def test_steady_state_detected_for_constant_load(self):
        net, tracker = tracked_run(load=0.15, duration=6000, window=500)
        start = tracker.steady_state_start(rel_tolerance=0.5)
        assert start is not None
        assert start < 3000

    def test_drain_shows_in_outstanding(self):
        net, tracker = tracked_run()
        assert net.is_idle()
        tracker.finalize(net)  # capture the trailing partial window
        assert tracker.windows[-1].outstanding == 0
        total = sum(w.delivered for w in tracker.windows)
        assert total == len(net.stats.delivered_records())

    def test_window_validation(self):
        with pytest.raises(ConfigError):
            TimelineTracker(window=0)

    def test_too_few_windows_no_steady_state(self):
        tracker = TimelineTracker(window=100)
        assert tracker.steady_state_start() is None


class TestSeedSweep:
    def test_mean_and_std_reported(self):
        def make_config(seed):
            return NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None,
                                 seed=seed)

        def make_workload(seed):
            return uniform_workload(
                MessageFactory(),
                UniformPattern(16),
                num_nodes=16,
                offered_load=0.1,
                length=16,
                duration=600,
                rng=SimRandom(seed),
            )

        sweep = run_seed_sweep(make_config, make_workload, [1, 2, 3],
                               max_cycles=30_000)
        assert len(sweep["results"]) == 3
        assert sweep["latency_mean"] > 0
        assert sweep["latency_std"] >= 0
        assert not math.isnan(sweep["throughput_mean"])

    def test_single_seed_zero_std(self):
        def make_config(seed):
            return NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)

        def make_workload(seed):
            return uniform_workload(
                MessageFactory(),
                UniformPattern(16),
                num_nodes=16,
                offered_load=0.1,
                length=16,
                duration=300,
                rng=SimRandom(seed),
            )

        sweep = run_seed_sweep(make_config, make_workload, [7],
                               max_cycles=30_000)
        assert sweep["latency_std"] == 0.0
