"""Tests for the report table formatter."""

import math

from repro.analysis.report import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_float_formatting(self):
        out = format_table(["x"], [[3.14159], [12345.6]])
        assert "3.14" in out
        assert "12346" in out

    def test_nan_rendered_as_dash(self):
        out = format_table(["x"], [[math.nan]])
        assert "-" in out.splitlines()[-1]

    def test_header_separator(self):
        out = format_table(["a", "b"], [[1, 2]])
        assert set(out.splitlines()[1]) <= {"-", " "}


class TestFormatSeries:
    def test_two_columns(self):
        out = format_series("load", [0.1, 0.2], [5.0, 9.0])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "load" in lines[0]
