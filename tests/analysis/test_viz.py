"""Tests for the terminal visualisations."""

import pytest

from repro.analysis.viz import RAMP, link_loadmap, node_heatmap
from repro.errors import ConfigError
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, uniform_workload


def loaded_net():
    config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
    net = Network(config)
    workload = uniform_workload(
        MessageFactory(),
        UniformPattern(16),
        num_nodes=16,
        offered_load=0.2,
        length=16,
        duration=800,
        rng=SimRandom(6),
    )
    Simulator(net, workload).run(30_000)
    return net


class TestNodeHeatmap:
    def test_shape_matches_mesh(self):
        net = loaded_net()
        out = node_heatmap(net, lambda n: float(n), title="ids")
        lines = out.splitlines()
        assert len(lines) == 1 + 4 + 1  # title + rows + ramp legend
        for row in lines[1:5]:
            # 4 glyph cells joined by single spaces (a glyph may itself
            # be a space for cold cells), so width is fixed.
            assert len(row) == 2 * 4 - 1

    def test_max_cell_is_hottest_glyph(self):
        net = loaded_net()
        out = node_heatmap(net, lambda n: 1.0 if n == 5 else 0.0)
        body = "".join(out.splitlines()[0:4])
        assert RAMP[-1] in body

    def test_all_zero_renders_cold(self):
        net = loaded_net()
        out = node_heatmap(net, lambda n: 0.0)
        rows = out.splitlines()[0:4]
        assert set("".join(rows)) <= {RAMP[0], " "}

    def test_rejects_non_2d(self):
        config = NetworkConfig(dims=(8,), protocol="wormhole", wave=None)
        net = Network(config)
        with pytest.raises(ConfigError):
            node_heatmap(net, lambda n: 0.0)


class TestLinkLoadmap:
    def test_renders_nodes_and_links(self):
        net = loaded_net()
        out = link_loadmap(net, title="load")
        lines = out.splitlines()
        assert lines[0].startswith("load")
        # 4 node rows + 3 vertical-link rows + title + legend.
        assert len(lines) == 1 + 4 + 3 + 1
        assert lines[1].count("o") == 4

    def test_busy_network_shows_heat(self):
        net = loaded_net()
        out = link_loadmap(net)
        hot_glyphs = set(RAMP[1:])
        assert any(ch in hot_glyphs for ch in out)

    def test_rejects_non_2d(self):
        config = NetworkConfig(dims=(8,), protocol="wormhole", wave=None)
        net = Network(config)
        with pytest.raises(ConfigError):
            link_loadmap(net)
