"""Tests for channel-utilization analysis."""

import pytest

from repro.analysis.utilization import (
    UtilizationReport,
    measure_utilization,
    snapshot_utilization,
)
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, uniform_workload


def run_network(protocol="wormhole", load=0.2, length=32):
    config = NetworkConfig(
        dims=(4, 4),
        protocol=protocol,
        wave=None if protocol == "wormhole" else WaveConfig(),
    )
    net = Network(config)
    workload = uniform_workload(
        MessageFactory(),
        UniformPattern(16),
        num_nodes=16,
        offered_load=load,
        length=length,
        duration=1500,
        rng=SimRandom(3),
    )
    Simulator(net, workload).run(60_000)
    return net


class TestGini:
    def test_even_distribution_zero(self):
        assert UtilizationReport._gini([1.0, 1.0, 1.0]) == pytest.approx(0.0)

    def test_single_hot_link_near_one(self):
        g = UtilizationReport._gini([0.0] * 99 + [1.0])
        assert g > 0.9

    def test_empty_and_zero(self):
        assert UtilizationReport._gini([]) == 0.0
        assert UtilizationReport._gini([0.0, 0.0]) == 0.0

    def test_monotone_in_skew(self):
        even = UtilizationReport._gini([0.5, 0.5, 0.5, 0.5])
        skewed = UtilizationReport._gini([0.1, 0.1, 0.1, 1.7])
        assert skewed > even


class TestWormholeUtilization:
    def test_values_in_unit_range(self):
        net = run_network()
        report = measure_utilization(net)
        assert report.wormhole
        for value in report.wormhole.values():
            assert 0.0 <= value <= 1.0

    def test_total_matches_counter(self):
        net = run_network()
        report = measure_utilization(net)
        total_flits = sum(
            u * report.cycles for u in report.wormhole.values()
        )
        assert total_flits == pytest.approx(
            net.stats.count("wormhole.flits_moved")
        )

    def test_only_connected_links_reported(self):
        net = run_network()
        report = measure_utilization(net)
        for node, port in report.wormhole:
            assert net.topology.neighbor(node, port) is not None

    def test_idle_network_all_zero(self):
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        net = Network(config)
        net.run(100)
        report = measure_utilization(net)
        assert all(v == 0.0 for v in report.wormhole.values())

    def test_summary_fields(self):
        net = run_network()
        summary = measure_utilization(net).summary("wormhole")
        assert set(summary) == {"mean", "max", "gini"}
        assert summary["max"] >= summary["mean"]

    def test_summary_rejects_unknown_kind(self):
        report = UtilizationReport(cycles=100)
        report.summary("wormhole")
        report.summary("circuit")
        with pytest.raises(ValueError, match="unknown utilization kind"):
            report.summary("circuits")  # typo must not silently mean circuit
        with pytest.raises(ValueError, match="unknown utilization kind"):
            report.summary("")


class TestWarmupWindow:
    """Regression: warmup exclusion must shrink numerators too."""

    def test_nonzero_warmup_stays_in_unit_range(self):
        # A saturated run: under the old since_cycle-only API the
        # whole-run numerator over the shortened denominator pushed hot
        # links past 1.0.
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        net = Network(config)
        workload = uniform_workload(
            MessageFactory(),
            UniformPattern(16),
            num_nodes=16,
            offered_load=0.9,
            length=32,
            duration=4000,
            rng=SimRandom(7),
        )
        sim = Simulator(net, workload)
        warmup = 1000
        sim.run(warmup)
        base = snapshot_utilization(net)
        sim.run(60_000)
        assert net.cycle > base.cycle
        report = measure_utilization(net, baseline=base)
        assert report.cycles == net.cycle - base.cycle
        assert report.wormhole
        for value in report.wormhole.values():
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_since_cycle_without_baseline_rejected(self):
        net = run_network()
        with pytest.raises(ValueError, match="baseline"):
            measure_utilization(net, since_cycle=500)

    def test_conflicting_since_cycle_and_baseline_rejected(self):
        net = run_network()
        base = snapshot_utilization(net)
        with pytest.raises(ValueError, match="conflicts"):
            measure_utilization(net, since_cycle=base.cycle + 1, baseline=base)

    def test_matching_since_cycle_accepted(self):
        net = run_network()
        base = snapshot_utilization(net)
        report = measure_utilization(net, since_cycle=base.cycle, baseline=base)
        assert report.cycles == max(1, net.cycle - base.cycle)

    def test_warmup_window_counts_only_window_flits(self):
        net = run_network()
        base = snapshot_utilization(net)
        # Nothing moves after the run finished: windowed utilization is 0.
        net.run(net.cycle + 50)
        report = measure_utilization(net, baseline=base)
        assert all(v == 0.0 for v in report.wormhole.values())


class TestCircuitUtilization:
    def test_circuit_channels_attributed(self):
        net = run_network(protocol="clrp")
        report = measure_utilization(net)
        assert report.circuit  # some circuits streamed
        for (node, port, switch), value in report.circuit.items():
            assert 0 <= switch < net.plane.config.num_switches
            assert value >= 0.0

    def test_flits_streamed_tracked_per_circuit(self):
        net = run_network(protocol="clrp")
        streamed = sum(
            c.flits_streamed for c in net.plane.table.circuits.values()
        )
        # Every circuit-delivered message's flits were streamed exactly once.
        from repro.sim.config import SwitchingMode

        circuit_flits = sum(
            m.length
            for m in net.stats.messages.values()
            if m.mode in (SwitchingMode.CIRCUIT_HIT, SwitchingMode.CIRCUIT_NEW,
                          SwitchingMode.CIRCUIT_FORCED)
        )
        assert streamed == circuit_flits

    def test_wormhole_baseline_has_no_circuit_report(self):
        net = run_network(protocol="wormhole")
        assert measure_utilization(net).circuit == {}

    def test_tally_matches_per_circuit_attribution(self):
        net = run_network(protocol="clrp")
        expected: dict[tuple[int, int, int], int] = {}
        for c in net.plane.table.circuits.values():
            for key in c.hop_channels():
                expected[key] = expected.get(key, 0) + c.flits_streamed
        expected = {k: v for k, v in expected.items() if v}
        tallied = {
            k: v for k, v in net.plane.streamed_by_channel.items() if v
        }
        assert tallied == expected

    def test_torn_down_circuit_flits_still_counted(self):
        """Regression: utilization must survive circuit-table pruning.

        CLRP replacement and fault recovery tear circuits down; dropping
        such a circuit from the table (as a future prune would) used to
        erase its streamed flits from the utilization numerator.
        """
        net = run_network(protocol="clrp")
        before = measure_utilization(net).circuit
        assert before
        victim_id = next(
            cid for cid, c in net.plane.table.circuits.items()
            if c.flits_streamed > 0
        )
        del net.plane.table.circuits[victim_id]
        after = measure_utilization(net).circuit
        assert after == before
