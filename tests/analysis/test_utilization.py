"""Tests for channel-utilization analysis."""

import pytest

from repro.analysis.utilization import UtilizationReport, measure_utilization
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, WaveConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, uniform_workload


def run_network(protocol="wormhole", load=0.2, length=32):
    config = NetworkConfig(
        dims=(4, 4),
        protocol=protocol,
        wave=None if protocol == "wormhole" else WaveConfig(),
    )
    net = Network(config)
    workload = uniform_workload(
        MessageFactory(),
        UniformPattern(16),
        num_nodes=16,
        offered_load=load,
        length=length,
        duration=1500,
        rng=SimRandom(3),
    )
    Simulator(net, workload).run(60_000)
    return net


class TestGini:
    def test_even_distribution_zero(self):
        assert UtilizationReport._gini([1.0, 1.0, 1.0]) == pytest.approx(0.0)

    def test_single_hot_link_near_one(self):
        g = UtilizationReport._gini([0.0] * 99 + [1.0])
        assert g > 0.9

    def test_empty_and_zero(self):
        assert UtilizationReport._gini([]) == 0.0
        assert UtilizationReport._gini([0.0, 0.0]) == 0.0

    def test_monotone_in_skew(self):
        even = UtilizationReport._gini([0.5, 0.5, 0.5, 0.5])
        skewed = UtilizationReport._gini([0.1, 0.1, 0.1, 1.7])
        assert skewed > even


class TestWormholeUtilization:
    def test_values_in_unit_range(self):
        net = run_network()
        report = measure_utilization(net)
        assert report.wormhole
        for value in report.wormhole.values():
            assert 0.0 <= value <= 1.0

    def test_total_matches_counter(self):
        net = run_network()
        report = measure_utilization(net)
        total_flits = sum(
            u * report.cycles for u in report.wormhole.values()
        )
        assert total_flits == pytest.approx(
            net.stats.count("wormhole.flits_moved")
        )

    def test_only_connected_links_reported(self):
        net = run_network()
        report = measure_utilization(net)
        for node, port in report.wormhole:
            assert net.topology.neighbor(node, port) is not None

    def test_idle_network_all_zero(self):
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        net = Network(config)
        net.run(100)
        report = measure_utilization(net)
        assert all(v == 0.0 for v in report.wormhole.values())

    def test_summary_fields(self):
        net = run_network()
        summary = measure_utilization(net).summary("wormhole")
        assert set(summary) == {"mean", "max", "gini"}
        assert summary["max"] >= summary["mean"]


class TestCircuitUtilization:
    def test_circuit_channels_attributed(self):
        net = run_network(protocol="clrp")
        report = measure_utilization(net)
        assert report.circuit  # some circuits streamed
        for (node, port, switch), value in report.circuit.items():
            assert 0 <= switch < net.plane.config.num_switches
            assert value >= 0.0

    def test_flits_streamed_tracked_per_circuit(self):
        net = run_network(protocol="clrp")
        streamed = sum(
            c.flits_streamed for c in net.plane.table.circuits.values()
        )
        # Every circuit-delivered message's flits were streamed exactly once.
        from repro.sim.config import SwitchingMode

        circuit_flits = sum(
            m.length
            for m in net.stats.messages.values()
            if m.mode in (SwitchingMode.CIRCUIT_HIT, SwitchingMode.CIRCUIT_NEW,
                          SwitchingMode.CIRCUIT_FORCED)
        )
        assert streamed == circuit_flits

    def test_wormhole_baseline_has_no_circuit_report(self):
        net = run_network(protocol="wormhole")
        assert measure_utilization(net).circuit == {}
