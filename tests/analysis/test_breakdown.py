"""Tests for the latency decomposition."""

import pytest

from repro.analysis.breakdown import format_breakdown, latency_breakdown
from repro.network.message import MessageFactory
from repro.network.network import Network
from repro.sim.config import NetworkConfig, SwitchingMode, WaveConfig
from repro.sim.engine import Simulator
from repro.sim.stats import MessageRecord, StatsCollector


def record(msg_id, mode, created, injected, delivered, setup=0):
    rec = MessageRecord(
        msg_id=msg_id, src=0, dst=1, length=8, created=created,
        injected=injected, delivered=delivered,
    )
    rec.mode = mode
    rec.setup_cycles = setup
    return rec


class TestDecomposition:
    def test_parts_sum_to_total(self):
        stats = StatsCollector()
        stats.new_message(record(0, SwitchingMode.CIRCUIT_NEW,
                                 created=0, injected=30, delivered=50,
                                 setup=20))
        [b] = latency_breakdown(stats)
        assert b.mean_total == 50
        assert b.mean_queueing + b.mean_setup + b.mean_transport == b.mean_total
        assert b.mean_setup == 20
        assert b.mean_queueing == 10
        assert b.mean_transport == 20

    def test_setup_clamped_to_queueing_window(self):
        stats = StatsCollector()
        stats.new_message(record(0, SwitchingMode.CIRCUIT_NEW,
                                 created=0, injected=10, delivered=30,
                                 setup=99))
        [b] = latency_breakdown(stats)
        assert b.mean_setup == 10
        assert b.mean_queueing == 0

    def test_grouped_by_mode(self):
        stats = StatsCollector()
        stats.new_message(record(0, SwitchingMode.WORMHOLE, 0, 0, 20))
        stats.new_message(record(1, SwitchingMode.CIRCUIT_HIT, 0, 5, 15))
        modes = {b.mode for b in latency_breakdown(stats)}
        assert modes == {"wormhole", "circuit_hit"}

    def test_undelivered_excluded(self):
        stats = StatsCollector()
        stats.new_message(record(0, SwitchingMode.WORMHOLE, 0, 0, -1))
        assert latency_breakdown(stats) == []

    def test_format_contains_columns(self):
        stats = StatsCollector()
        stats.new_message(record(0, SwitchingMode.WORMHOLE, 0, 2, 20))
        text = format_breakdown(stats)
        assert "queueing" in text
        assert "wormhole" in text


class TestOnRealRun:
    def test_hits_are_mostly_transport(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        net = Network(config)
        factory = MessageFactory()
        for i in range(5):
            net.inject(factory.make(0, 9, 64, 0))
        Simulator(net, []).run(20_000)
        by_mode = {b.mode: b for b in latency_breakdown(net.stats)}
        hit = by_mode["circuit_hit"]
        new = by_mode["circuit_new"]
        # The trigger message paid setup; hits paid none.
        assert new.mean_setup > 0
        assert hit.mean_setup == 0
        # Hits queue behind each other on the In-use bit, but transport
        # dominates nothing else.
        assert hit.mean_transport > 0
