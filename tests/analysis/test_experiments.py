"""Tests for the experiment runner and load sweeps."""

import pytest

from repro.analysis.experiments import run_experiment, run_load_sweep
from repro.network.message import MessageFactory
from repro.sim.config import NetworkConfig
from repro.sim.rng import SimRandom
from repro.traffic import UniformPattern, uniform_workload


def workload(load, seed=2, length=16, duration=600):
    return uniform_workload(
        MessageFactory(),
        UniformPattern(16),
        num_nodes=16,
        offered_load=load,
        length=length,
        duration=duration,
        rng=SimRandom(seed),
    )


class TestRunExperiment:
    def test_basic_metrics(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        result = run_experiment(config, workload(0.1), label="t")
        assert result.label == "t"
        assert result.delivered == result.injected > 0
        assert result.mean_latency > 0
        assert result.p95_latency >= result.mean_latency * 0.3
        assert result.throughput > 0
        assert result.delivery_ratio == 1.0
        assert "circuit_new" in result.mode_breakdown

    def test_default_label_is_config(self):
        config = NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None)
        result = run_experiment(config, workload(0.05))
        assert "4x4 mesh" in result.label

    def test_counters_captured(self):
        config = NetworkConfig(dims=(4, 4), protocol="clrp")
        result = run_experiment(config, workload(0.1))
        assert result.counters.get("probe.launched", 0) > 0


class TestLoadSweep:
    def test_sweep_returns_point_per_load(self):
        loads = [0.02, 0.05]
        results = run_load_sweep(
            lambda: NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None),
            lambda load: workload(load),
            loads,
            max_cycles=50_000,
        )
        assert [load for load, _ in results] == loads
        for _load, r in results:
            assert r.delivery_ratio == 1.0

    def test_sweep_stops_past_saturation(self):
        loads = [0.05, 0.95, 0.99]  # 0.95 cannot drain in the tiny budget
        results = run_load_sweep(
            lambda: NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None),
            lambda load: workload(load, duration=3000, length=32),
            loads,
            max_cycles=3200,
        )
        assert len(results) <= 2  # stopped after the first saturated point

    def test_throughput_monotone_below_saturation(self):
        results = run_load_sweep(
            lambda: NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None),
            lambda load: workload(load, duration=2000),
            [0.02, 0.1],
            max_cycles=60_000,
        )
        (l1, r1), (l2, r2) = results
        assert r2.throughput > r1.throughput


class TestFindSaturationEdgeCases:
    """Binary-search edge cases against a stubbed ``run_experiment``.

    The stub derives the probed load from the workload itself (encoded
    in the message length), so it works through the orchestrator path
    ``find_saturation_load`` executes probes on.
    """

    def _stub_search(self, monkeypatch, saturation_point, **kwargs):
        import math

        from repro.analysis import experiments
        from repro.network.message import Message
        from repro.sim.config import NetworkConfig
        from repro.sim.engine import SimulationResult
        from repro.sim.stats import StatsCollector

        calls = []

        def fake_run_experiment(config, items, **kw):
            load = (items[0].length - 1) / 1000
            calls.append(load)
            delivered = 100 if load <= saturation_point else 10
            sim = SimulationResult(
                cycles=100, stats=StatsCollector(), completed=True,
                injected=100, delivered=delivered,
            )
            return experiments.ExperimentResult(
                label="stub", sim=sim, mean_latency=1.0, p95_latency=1.0,
                throughput=load if not math.isnan(load) else 0.0,
                delivered=delivered, injected=100,
            )

        monkeypatch.setattr(experiments, "run_experiment", fake_run_experiment)

        def make_workload(load):
            return [Message(msg_id=0, src=0, dst=1,
                            length=int(round(load * 1000)) + 1, created=0)]

        result = experiments.find_saturation_load(
            lambda: NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None),
            make_workload,
            **kwargs,
        )
        return result, calls

    def test_lo_unsustainable_returns_zero(self, monkeypatch):
        result, calls = self._stub_search(
            monkeypatch, saturation_point=0.005, lo=0.02, hi=1.0
        )
        assert result == 0.0
        assert calls == [0.02]  # one probe suffices

    def test_hi_sustainable_returns_hi(self, monkeypatch):
        result, calls = self._stub_search(
            monkeypatch, saturation_point=2.0, lo=0.02, hi=0.8
        )
        assert result == 0.8
        assert calls == [0.02, 0.8]

    def test_converges_within_tolerance(self, monkeypatch):
        result, calls = self._stub_search(
            monkeypatch, saturation_point=0.43,
            lo=0.02, hi=1.0, tolerance=0.02,
        )
        assert result <= 0.43  # highest *sustainable* load found
        assert 0.43 - result <= 0.02
        # bisection: 2 endpoint probes + ceil(log2(0.98 / 0.02)) splits
        assert len(calls) <= 2 + 6

    def test_zero_injected_counts_as_sustainable(self, monkeypatch):
        import math

        from repro.analysis import experiments
        from repro.network.message import Message
        from repro.sim.config import NetworkConfig
        from repro.sim.engine import SimulationResult
        from repro.sim.stats import StatsCollector

        def fake_run_experiment(config, items, **kw):
            sim = SimulationResult(
                cycles=100, stats=StatsCollector(), completed=True,
                injected=0, delivered=0,
            )
            return experiments.ExperimentResult(
                label="stub", sim=sim, mean_latency=math.nan,
                p95_latency=math.nan, throughput=math.nan,
                delivered=0, injected=0,
            )

        monkeypatch.setattr(experiments, "run_experiment", fake_run_experiment)
        result = experiments.find_saturation_load(
            lambda: NetworkConfig(dims=(4, 4), protocol="wormhole", wave=None),
            lambda load: [Message(msg_id=0, src=0, dst=1, length=1, created=0)],
            lo=0.1, hi=0.5,
        )
        assert result == 0.5  # nothing injected anywhere -> hi sustainable

    def test_probe_cache_skips_repeat_searches(self, monkeypatch, tmp_path):
        from repro.orchestrate import ResultStore

        store = ResultStore(tmp_path / "probes.jsonl")
        _, first_calls = self._stub_search(
            monkeypatch, saturation_point=0.43,
            lo=0.02, hi=1.0, tolerance=0.05, store=store,
        )
        result, second_calls = self._stub_search(
            monkeypatch, saturation_point=0.43,
            lo=0.02, hi=1.0, tolerance=0.05, store=store,
        )
        assert first_calls  # the first search simulated its probes
        assert second_calls == []  # the repeat served every probe cached
        assert result <= 0.43


@pytest.mark.slow
class TestFindSaturationLoad:
    def _setup(self, protocol="wormhole"):
        from repro.sim.config import WaveConfig

        def make_config():
            return NetworkConfig(
                dims=(4, 4),
                protocol=protocol,
                wave=None if protocol == "wormhole" else WaveConfig(),
            )

        def make_workload(load):
            return workload(load, duration=2500, length=32)

        return make_config, make_workload

    def test_wormhole_saturation_in_plausible_range(self):
        from repro.analysis.experiments import find_saturation_load

        make_config, make_workload = self._setup()
        sat = find_saturation_load(
            make_config, make_workload, tolerance=0.05, max_cycles=3500
        )
        # 4x4 mesh DOR uniform saturates somewhere around 0.3-0.6
        # flits/node/cycle with this measurement window.
        assert 0.1 < sat < 0.9

    def test_wave_saturates_higher_than_wormhole(self):
        from repro.analysis.experiments import find_saturation_load

        cfg_wh, wl_wh = self._setup("wormhole")
        cfg_wv, wl_wv = self._setup("clrp")
        sat_wh = find_saturation_load(cfg_wh, wl_wh, tolerance=0.1,
                                      max_cycles=3500)
        sat_wv = find_saturation_load(cfg_wv, wl_wv, tolerance=0.1,
                                      max_cycles=3500)
        assert sat_wv >= sat_wh

    def test_bad_bounds_rejected(self):
        from repro.analysis.experiments import find_saturation_load

        with pytest.raises(ValueError):
            find_saturation_load(lambda: None, lambda load: [], lo=0.5, hi=0.2)
